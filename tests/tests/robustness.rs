//! Robustness: the front end must never panic on arbitrary input (errors
//! only), and the paper's exact Fig. 6 compound scenario must work end to
//! end.

use mantis::p4_ast::{Pipeline, Value};
use mantis::p4r_compiler::entry::LogicalKey;
use mantis::rmt_sim::PacketDesc;
use mantis::Testbed;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup: the P4R parser returns Ok or Err, never panics.
    #[test]
    fn p4r_parser_never_panics(src in "\\PC*") {
        let _ = mantis::p4r_lang::parse_program(&src);
    }

    /// Same for the C-like reaction body parser.
    #[test]
    fn creact_parser_never_panics(src in "\\PC*") {
        let _ = mantis::p4r_lang::creact::parse_body(&src);
    }

    /// Structured-ish soup: P4R keywords and punctuation in random order
    /// exercise deeper parser states than raw bytes do.
    #[test]
    fn p4r_parser_never_panics_on_keyword_soup(
        words in proptest::collection::vec(
            proptest::sample::select(vec![
                "header_type", "header", "metadata", "table", "malleable",
                "value", "field", "reaction", "control", "ingress", "reads",
                "actions", "{", "}", "(", ")", ";", ":", "exact", "ternary",
                "${", "x", "42", "init", "width", "alts", ",", "mask",
                "register", "apply", "if", "valid",
            ]),
            0..64,
        )
    ) {
        let src = words.join(" ");
        let _ = mantis::p4r_lang::parse_program(&src);
    }

    /// Reaction bodies from C-ish token soup.
    #[test]
    fn creact_never_panics_on_token_soup(
        words in proptest::collection::vec(
            proptest::sample::select(vec![
                "int", "uint64_t", "static", "for", "while", "if", "else",
                "return", "break", "continue", "{", "}", "(", ")", ";", "=",
                "+", "-", "*", "/", "%", "<", ">", "==", "&&", "||", "x",
                "y", "7", "${", "arr", "[", "]", "?", ":", "++", "+=",
            ]),
            0..64,
        )
    ) {
        let src = words.join(" ");
        let _ = mantis::p4r_lang::creact::parse_body(&src);
    }
}

/// The paper's Fig. 6 scenario verbatim: one malleable field used *both*
/// as a table match field and inside an action of the same table. A single
/// logical entry expands across alternatives with a consistent assignment
/// (the selector ties the match column and the action variant together).
#[test]
fn fig6_compound_read_use_end_to_end() {
    let src = r#"
header_type h_t { fields { foo : 32; bar : 32; baz : 32; qux : 32; } }
header h_t hdr;
malleable field read_var {
    width : 32; init : hdr.foo;
    alts { hdr.foo, hdr.bar }
}
action my_action() {
    add(hdr.qux, hdr.baz, ${read_var});
}
action miss() { modify_field(hdr.qux, 0); }
malleable table my_table {
    reads { ${read_var} : exact; }
    actions { my_action; miss; }
    default_action : miss();
    size : 16;
}
control ingress { apply(my_table); }
"#;
    let tb = Testbed::from_p4r(src).unwrap();
    // Add the paper's entry: ${read_var} = 0 (we use 5 to distinguish from
    // the miss default of 0).
    tb.agent
        .borrow_mut()
        .user_init(|ctx| {
            ctx.table_add(
                "my_table",
                vec![LogicalKey::Exact(Value::new(5, 32))],
                0,
                "my_action",
                vec![],
            )?;
            Ok(())
        })
        .unwrap();

    let probe = |tb: &Testbed, foo: u128, bar: u128, baz: u128| {
        let mut sw = tb.sim.switch().borrow_mut();
        let phv = PacketDesc::new(0)
            .field("hdr", "foo", foo)
            .field("hdr", "bar", bar)
            .field("hdr", "baz", baz)
            .build(sw.spec());
        let out = sw.run_pipeline(phv, Pipeline::Ingress);
        out.get(sw.spec().field_id("hdr", "qux").unwrap()).as_u64()
    };

    // read_var → hdr.foo: match on foo=5, and the action adds baz + foo.
    assert_eq!(probe(&tb, 5, 99, 1000), 1005);
    // foo≠5 misses even when bar=5 (consistent assignment: the bar column
    // only matches when the selector says so).
    assert_eq!(probe(&tb, 7, 5, 1000), 0);

    // Shift to hdr.bar: now bar=5 matches and the action adds baz + bar.
    tb.agent
        .borrow_mut()
        .user_init(|ctx| {
            ctx.shift_field("read_var", 1)?;
            Ok(())
        })
        .unwrap();
    assert_eq!(probe(&tb, 99, 5, 1000), 1005);
    assert_eq!(probe(&tb, 5, 7, 1000), 0);
}

/// Two Mantis agents on two independent pipelines (the §6 note: "if the
/// switch contains multiple disjoint linecards or pipelines, these can be
/// handled by spawning multiple Mantis agent threads, each handling its own
/// component"). Each agent commits to its own switch without interference.
#[test]
fn one_agent_per_pipeline_scales_out() {
    let src = r#"
header_type h_t { fields { a : 32; } }
header h_t h;
malleable value knob { width : 32; init : 0; }
action bump() { add_to_field(h.a, ${knob}); }
table t { actions { bump; } default_action : bump(); }
reaction r(ing h.a) { ${knob} = h_a + 1; }
control ingress { apply(t); }
"#;
    let mut pipes: Vec<Testbed> = (0..2).map(|_| Testbed::from_p4r(src).unwrap()).collect();
    for tb in &pipes {
        tb.agent.borrow_mut().register_all_interpreted().unwrap();
    }
    // Different traffic per pipeline.
    pipes[0]
        .sim
        .switch()
        .borrow_mut()
        .inject(&PacketDesc::new(0).field("h", "a", 10).payload(8));
    pipes[1]
        .sim
        .switch()
        .borrow_mut()
        .inject(&PacketDesc::new(0).field("h", "a", 500).payload(8));
    for tb in &mut pipes {
        tb.agent.borrow_mut().dialogue_iteration().unwrap();
    }
    // Each agent reacted to its own pipeline's measurement only.
    assert_eq!(pipes[0].agent.borrow().slot("knob"), Some(11));
    assert_eq!(pipes[1].agent.borrow().slot("knob"), Some(501));
}
