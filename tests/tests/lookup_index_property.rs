//! Property test: the indexed table lookup (exact hash / LPM buckets /
//! precedence-sorted scan with care-bits) is a pure accelerator — on random
//! tables over random match-kind mixes, with random add/delete histories,
//! `Table::lookup` must return exactly what the reference linear scan
//! `Table::lookup_linear` returns, for every probe PHV.
//!
//! Values are drawn from small domains so entries collide, overlap, and
//! tie on priority; prefix lengths span the whole 0..=32 range so the
//! longest-prefix-dominates ordering is exercised against wildcards.

use mantis::p4_ast::{MatchKind, Pipeline, Value};
use mantis::p4r_lang;
use mantis::rmt_sim::spec::{KeySpec, TableSpec};
use mantis::rmt_sim::table::Table;
use mantis::rmt_sim::{load, ActionId, DataPlaneSpec, KeyField, Phv};
use proptest::prelude::*;

const MAX_ARITY: usize = 3;

/// A PHV spec with `n` 32-bit metadata fields `m.f0 .. m.f{n-1}`.
fn phv_spec(n: usize) -> DataPlaneSpec {
    let fields: String = (0..n)
        .map(|i| format!("f{i} : 32;"))
        .collect::<Vec<_>>()
        .join(" ");
    let src = format!("header_type m_t {{ fields {{ {fields} }} }} metadata m_t m;");
    load(&p4r_lang::parse_program(&src).unwrap()).unwrap()
}

fn table_spec(dps: &DataPlaneSpec, kinds: &[MatchKind]) -> TableSpec {
    TableSpec {
        name: "prop".into(),
        key: kinds
            .iter()
            .enumerate()
            .map(|(i, k)| KeySpec {
                field: dps.field_id("m", &format!("f{i}")).unwrap(),
                kind: *k,
                width: 32,
                static_mask: None,
            })
            .collect(),
        actions: vec![ActionId(0), ActionId(1)],
        default_action: Some((ActionId(1), vec![])),
        size: 256,
        malleable: false,
        stage: 0,
        pipeline: Pipeline::Ingress,
    }
}

fn probe_phv(dps: &DataPlaneSpec, vals: &[u32]) -> Phv {
    let mut phv = Phv::new(dps);
    for (i, v) in vals.iter().enumerate() {
        let id = dps.field_id("m", &format!("f{i}")).unwrap();
        phv.set(id, Value::new(u128::from(*v), 32));
    }
    phv
}

fn kind_strategy() -> impl Strategy<Value = MatchKind> {
    prop_oneof![
        Just(MatchKind::Exact),
        Just(MatchKind::Ternary),
        Just(MatchKind::Lpm),
    ]
}

/// Small-domain field values so probes actually hit entries, plus a
/// high-bit pattern so long prefixes can discriminate.
fn value_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![0u32..16, Just(0x0a00_0000u32), 0u32..256]
}

/// Ternary masks biased toward overlap-heavy patterns.
fn mask_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![
        Just(0u32),
        Just(0x3),
        Just(0xc),
        Just(0xf),
        Just(0xff),
        Just(0xff00_0000),
        Just(u32::MAX),
    ]
}

/// One raw key field: interpreted per the table's match kind, so every
/// entry row carries enough material for any kind at any position.
fn raw_field() -> impl Strategy<Value = (u32, u32, u16)> {
    (value_strategy(), mask_strategy(), 0u16..=32)
}

fn materialize_key(kinds: &[MatchKind], raw: &[(u32, u32, u16)]) -> Vec<KeyField> {
    kinds
        .iter()
        .zip(raw.iter())
        .map(|(k, &(value, mask, prefix))| match k {
            MatchKind::Exact => KeyField::Exact(Value::new(u128::from(value), 32)),
            MatchKind::Ternary => KeyField::Ternary {
                value: Value::new(u128::from(value), 32),
                mask: Value::new(u128::from(mask), 32),
            },
            MatchKind::Lpm => KeyField::Lpm {
                value: Value::new(u128::from(value), 32),
                prefix_len: prefix,
            },
        })
        .collect()
}

fn check_parity(t: &mut Table, spec: &TableSpec, dps: &DataPlaneSpec, probes: &[Vec<u32>]) {
    for vals in probes {
        let phv = probe_phv(dps, &vals[..spec.key.len()]);
        let fast = t.lookup(spec, &phv);
        let slow = t.lookup_linear(spec, &phv);
        assert_eq!(fast, slow, "index diverged from linear scan on {vals:?}");
    }
}

proptest! {
    #[test]
    fn indexed_lookup_equals_linear_scan(
        kinds in prop::collection::vec(kind_strategy(), 1..=MAX_ARITY),
        raw_entries in prop::collection::vec(
            (prop::collection::vec(raw_field(), MAX_ARITY), 0u32..4),
            0..24,
        ),
        probes in prop::collection::vec(
            prop::collection::vec(value_strategy(), MAX_ARITY),
            1..16,
        ),
        dels in prop::collection::vec(0u16..512, 0..8),
    ) {
        let dps = phv_spec(kinds.len());
        let spec = table_spec(&dps, &kinds);
        let mut t = Table::new(&spec);
        let mut handles = Vec::new();
        let entries: Vec<(Vec<KeyField>, u32)> = raw_entries
            .iter()
            .map(|(raw, prio)| (materialize_key(&kinds, &raw[..kinds.len()]), *prio))
            .collect();
        for (key, prio) in &entries {
            handles.push(
                t.add_entry(&spec, key.clone(), *prio, ActionId(0), vec![], 0)
                    .unwrap(),
            );
        }
        check_parity(&mut t, &spec, &dps, &probes);

        // Random deletions must leave the incremental index fixup in
        // agreement with the reference scan.
        for del in &dels {
            if handles.is_empty() {
                break;
            }
            let h = handles.remove(usize::from(*del) % handles.len());
            t.del_entry(h).unwrap();
            check_parity(&mut t, &spec, &dps, &probes);
        }

        // Re-adding after deletions (index positions have shifted) must
        // also stay consistent.
        for (key, prio) in entries.iter().take(4) {
            t.add_entry(&spec, key.clone(), *prio, ActionId(0), vec![], 0)
                .unwrap();
        }
        check_parity(&mut t, &spec, &dps, &probes);
    }
}
