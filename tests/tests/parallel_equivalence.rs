//! Worker-count equivalence (DESIGN.md §12): the epoch-barrier parallel
//! drain must be observationally identical to the serial engine.
//!
//! * every use-case program runs on a multi-switch fabric under
//!   workers ∈ {1, 2, 4} with byte-identical telemetry (chrome trace and
//!   snapshot) and per-switch transmit fingerprints;
//! * the full leaf–spine failover workload — heartbeats, a measured
//!   flow, paced agents, a mid-run link failure — converges to the same
//!   detections, measurements, and exits at every worker count;
//! * a scrambled shard→worker assignment (seeded Fisher–Yates) changes
//!   nothing: the barrier merge alone fixes the output order;
//! * `MANTIS_WORKERS` (the CI sweep knob) is honored via
//!   [`mantis::workers_from_env`];
//! * a single-switch testbed never takes the parallel path, so the
//!   pre-parallel telemetry goldens stay byte-identical at any worker
//!   count (enforced byte-for-byte by `telemetry_determinism.rs`).

use mantis::apps::fabric::{build_failover_fabric, leaf_host, EXIT_PORT};
use mantis::apps::programs::{DOS_P4R, ECMP_P4R, FAILOVER_P4R, RL_P4R};
use mantis::netsim::{
    schedule_link_flaps, spawn_udp_on, Simulator, Topology, UdpConfig, HOST_PORTS,
};
use mantis::p4_ast::Value;
use mantis::p4r_compiler::entry::LogicalKey;
use mantis::rmt_sim::PacketDesc;
use mantis::{schedule_fabric_agents, Fabric, FaultPlan, Telemetry, Testbed};

const ALL_PROGRAMS: [(&str, &str); 4] = [
    ("dos", DOS_P4R),
    ("failover", FAILOVER_P4R),
    ("ecmp", ECMP_P4R),
    ("rl", RL_P4R),
];

/// Everything observable per switch after a run: aggregate tx accounting
/// plus the ordered `(port, time)` sequence of packets that left it.
fn per_switch_fingerprints(sim: &mut Simulator) -> Vec<String> {
    let n = sim.num_switches();
    let tagged = sim.take_tx_tagged();
    (0..n)
        .map(|i| {
            let log: Vec<String> = tagged
                .iter()
                .filter(|(s, _)| *s == i)
                .map(|(_, p)| format!("{}@{}", p.port, p.time))
                .collect();
            format!(
                "sw{i} tx={} bytes={} log=[{}]",
                sim.tx_count_on(i),
                sim.tx_bytes_on(i),
                log.join(",")
            )
        })
        .collect()
}

/// One use-case program on a 4-switch line fabric: paced agents plus
/// waves of IPv4 traffic into every switch (all four programs parse
/// ethernet + ipv4, so one packet shape drives them all). Returns the
/// complete observable output: telemetry trace + snapshot bytes and the
/// per-switch transmit fingerprints.
fn program_run(src: &str, workers: usize, scramble: Option<u64>) -> (String, String, Vec<String>) {
    let mut fab = Fabric::from_p4r(src, Topology::line(4)).expect("program builds on a fabric");
    fab.sim.set_workers(workers);
    if let Some(seed) = scramble {
        fab.sim.scramble_assignment(seed);
    }
    for agent in &fab.agents {
        let mut agent = agent.borrow_mut();
        // FAILOVER_P4R drops anything its (initially empty) route table
        // misses; give every switch a default route so the workload's
        // 10.0.0.0/8 traffic actually moves.
        if src == FAILOVER_P4R {
            agent
                .user_init(|ctx| {
                    ctx.table_add(
                        "route",
                        vec![LogicalKey::Lpm {
                            value: Value::new(0x0A00_0000, 32),
                            prefix_len: 8,
                        }],
                        0,
                        "route_to",
                        vec![Value::new(1, 9)],
                    )?;
                    Ok(())
                })
                .expect("default route installed");
        }
        agent
            .register_all_interpreted()
            .expect("reactions registered");
    }
    fab.start_agents(100_000);
    for round in 0u64..6 {
        let t = 1_000 + round * 50_000;
        for i in 0..fab.num_switches() {
            fab.sim.schedule(t, move |s| {
                s.switch_at(i).borrow_mut().inject(
                    &PacketDesc::new(0)
                        .field("ethernet", "ether_type", 0x0800)
                        .field("ipv4", "src_addr", u128::from(0xC0A8_0001 + round as u32))
                        .field("ipv4", "dst_addr", u128::from(0x0A00_0000 + i as u32))
                        .payload(64 + 8 * round as u32),
                );
            });
        }
    }
    fab.sim.run_until(700_000);
    if workers > 1 {
        assert!(
            fab.sim.par_stats().parallel_drains > 0,
            "workers={workers} never exercised the parallel drain"
        );
    }
    (
        fab.chrome_trace(),
        fab.telemetry_snapshot(),
        per_switch_fingerprints(&mut fab.sim),
    )
}

#[test]
fn every_use_case_program_is_worker_count_invariant() {
    for (name, src) in ALL_PROGRAMS {
        let baseline = program_run(src, 1, None);
        assert!(
            baseline.2.iter().any(|f| !f.contains("tx=0 ")),
            "{name}: workload moved no packets: {:?}",
            baseline.2
        );
        for workers in [2, 4] {
            let run = program_run(src, workers, None);
            assert_eq!(
                baseline.0, run.0,
                "{name} @ {workers} workers: chrome trace diverged"
            );
            assert_eq!(
                baseline.1, run.1,
                "{name} @ {workers} workers: telemetry snapshot diverged"
            );
            assert_eq!(
                baseline.2, run.2,
                "{name} @ {workers} workers: per-switch fingerprints diverged"
            );
        }
    }
}

/// The full cross-switch failover workload at a given worker count:
/// 2×2 leaf–spine, heartbeats, a measured leaf-0 → leaf-1 flow, paced
/// agents, and a mid-run link flap. Telemetry is attached to every
/// switch so the barrier merge's ring bytes are part of the comparison.
fn failover_run(
    workers: usize,
    scramble: Option<u64>,
) -> (Vec<String>, Vec<usize>, Vec<Option<i128>>, String, String) {
    let mut tb = build_failover_fabric(2, 2, 1_000, 0.2);
    let telemetry = Telemetry::shared();
    for i in 0..tb.sim.num_switches() {
        tb.sim
            .switch_at(i)
            .borrow_mut()
            .set_telemetry(telemetry.clone());
    }
    tb.sim.set_workers(workers);
    if let Some(seed) = scramble {
        tb.sim.scramble_assignment(seed);
    }
    schedule_fabric_agents(&mut tb.sim, &tb.agents, 50_000, 0);
    spawn_udp_on(
        &mut tb.sim,
        0,
        UdpConfig {
            ingress_port: EXIT_PORT,
            fields: vec![
                ("ethernet".into(), "ether_type".into(), 0x0800),
                ("ipv4".into(), "src_addr".into(), u128::from(leaf_host(0))),
                ("ipv4".into(), "dst_addr".into(), u128::from(leaf_host(1))),
            ],
            payload_bytes: 1_250,
            rate_bps: 1_000_000_000,
            start_ns: 0,
            stop_ns: None,
        },
    );
    let plan = FaultPlan::new().flap_on(0, u32::from(HOST_PORTS), 700_000, 1_900_000);
    schedule_link_flaps(&mut tb.sim, &plan);
    tb.sim.run_until(1_500_000);

    if workers > 1 {
        assert!(tb.sim.par_stats().parallel_drains > 0);
    }
    let detections: Vec<usize> = tb.events.iter().map(|e| e.borrow().len()).collect();
    let relay_totals: Vec<Option<i128>> = (2..4)
        .map(|s| tb.agents[s].borrow().slot("relay_total"))
        .collect();
    (
        per_switch_fingerprints(&mut tb.sim),
        detections,
        relay_totals,
        telemetry.chrome_trace_json(),
        telemetry.snapshot_json(),
    )
}

#[test]
fn failover_fabric_is_worker_count_invariant() {
    let baseline = failover_run(1, None);
    assert_eq!(baseline.1[0], 1, "leaf 0 must detect the downed wire");
    assert!(
        baseline.0.iter().all(|f| !f.contains("tx=0 ")),
        "{:?}",
        baseline.0
    );
    for workers in [2, 4] {
        let run = failover_run(workers, None);
        assert_eq!(baseline.0, run.0, "workers={workers}: exits diverged");
        assert_eq!(baseline.1, run.1, "workers={workers}: detections diverged");
        assert_eq!(
            baseline.2, run.2,
            "workers={workers}: spine measurements diverged"
        );
        assert_eq!(
            baseline.3, run.3,
            "workers={workers}: chrome trace diverged"
        );
        assert_eq!(baseline.4, run.4, "workers={workers}: snapshot diverged");
    }
}

#[test]
fn scrambled_shard_assignment_changes_nothing() {
    // The shard→worker map is a scheduling detail: any seeded permutation
    // must leave the output bytes untouched, because the barrier merge —
    // not the assignment — fixes the canonical order.
    let baseline = failover_run(2, None);
    for seed in [1u64, 7, 42, 123] {
        let run = failover_run(2, Some(seed));
        assert_eq!(baseline.0, run.0, "seed={seed}: exits diverged");
        assert_eq!(baseline.3, run.3, "seed={seed}: chrome trace diverged");
        assert_eq!(baseline.4, run.4, "seed={seed}: snapshot diverged");
    }
    // And the same under a scrambled 4-program run.
    let (trace, snap, fps) = program_run(DOS_P4R, 2, None);
    for seed in [3u64, 99] {
        let (t, s, f) = program_run(DOS_P4R, 2, Some(seed));
        assert_eq!(
            (trace.as_str(), snap.as_str(), &fps),
            (t.as_str(), s.as_str(), &f)
        );
    }
}

#[test]
fn worker_count_from_env_is_honored() {
    // The CI `MANTIS_WORKERS=4` leg drives this at 4 workers; locally it
    // defaults to the host's parallelism. The fabric constructor applies
    // the knob, clamped to the switch count.
    let requested = usize::from(mantis::workers_from_env());
    let fab = Fabric::from_p4r(DOS_P4R, Topology::line(3)).expect("fabric");
    assert_eq!(fab.sim.workers(), requested.clamp(1, 3));
}

#[test]
fn single_switch_never_takes_the_parallel_path() {
    // One switch means no shards to split: whatever MANTIS_WORKERS says,
    // the serial drain runs and single-switch goldens stay byte-stable.
    let mut tb = Testbed::from_p4r(DOS_P4R).expect("program");
    tb.sim.set_workers(4);
    assert_eq!(tb.sim.workers(), 1, "worker count must clamp to one switch");
    tb.sim.switch().borrow_mut().inject(
        &PacketDesc::new(0)
            .field("ethernet", "ether_type", 0x0800)
            .field("ipv4", "src_addr", 7)
            .field("ipv4", "dst_addr", 9)
            .payload(64),
    );
    tb.sim.run_until(100_000);
    assert_eq!(tb.sim.par_stats().parallel_drains, 0);
    assert!(tb.sim.par_stats().drains > 0);
}
