//! Stage-granularity validation of the three-phase update protocol
//! (§5.1.2, Figs. 7-8): we drive prepare / commit / mirror as individual
//! driver operations and interleave them *between pipeline stages* of
//! in-flight packets.
//!
//! The hardware guarantee the protocol builds on: a packet latches the
//! whole malleable configuration (values, selectors, and the `vv` version
//! bit) from the init table at the first stage. Therefore
//!
//! * a packet that passed the init stage before the commit sees the old
//!   world even if the commit (and any number of prepare operations) land
//!   mid-flight;
//! * a packet that enters after the commit sees the new world;
//! * the mirror pass only touches the old copy after old-vv packets have
//!   drained (pipeline latency ≪ PCIe latency — §5.1.2), which the test
//!   respects by mirroring after pre-commit packets complete.

use mantis::p4_ast::{Pipeline, Value};
use mantis::p4r_compiler::entry::{expand_entry, LogicalKey, PhysEntry, PhysKey};
use mantis::p4r_compiler::{compile_source, CompilerOptions};
use mantis::rmt_sim::{EntryHandle, KeyField, PacketDesc, Switch, SwitchConfig, TableId};
use mantis::Clock;

const PROG: &str = r#"
header_type h_t { fields { k : 32; out : 32; } }
header h_t h;
malleable value scale { width : 32; init : 1; }
action classify(tag) {
    modify_field(h.out, tag);
    add_to_field(h.out, ${scale});
}
action fallback() { modify_field(h.out, 0); }
malleable table cls {
    reads { h.k : exact; }
    actions { classify; fallback; }
    default_action : fallback();
    size : 64;
}
control ingress { apply(cls); }
"#;

struct Harness {
    sw: Switch,
    cls: TableId,
    info: mantis::p4r_compiler::iface::TableInfo,
    master: TableId,
    master_action: mantis::rmt_sim::ActionId,
    /// Physical handles per vv copy for the single logical entry.
    phys: [Vec<EntryHandle>; 2],
}

impl Harness {
    fn new() -> Self {
        let compiled = compile_source(PROG, &CompilerOptions::default()).unwrap();
        let spec = mantis::rmt_sim::load(&compiled.p4).unwrap();
        let sw = Switch::new(spec, SwitchConfig::default(), Clock::new());
        let cls = sw.table_id("cls").unwrap();
        let master = sw.table_id("p4r_init_").unwrap();
        let master_action = sw.action_id("p4r_init_action_").unwrap();
        let info = compiled.iface.table("cls").unwrap().clone();

        let mut h = Harness {
            sw,
            cls,
            info,
            master,
            master_action,
            phys: [Vec::new(), Vec::new()],
        };
        // Initial config: vv=1, mv=0, scale=1; one logical entry
        // {k=5 → classify(100)} in both copies.
        h.set_master(1, 0, 1);
        for vv in 0..2u8 {
            h.phys[vv as usize] = h.add_copy(vv, 100);
        }
        h
    }

    fn expand(&self, vv: u8, tag: u64) -> Vec<PhysEntry> {
        expand_entry(
            &self.info,
            &[LogicalKey::Exact(Value::new(5, 32))],
            "classify",
            &[Value::new(u128::from(tag), 32)],
            0,
            Some(vv),
        )
        .unwrap()
    }

    fn add_copy(&mut self, vv: u8, tag: u64) -> Vec<EntryHandle> {
        let entries = self.expand(vv, tag);
        entries
            .iter()
            .map(|pe| {
                let key = to_keyfields(&self.sw, self.cls, pe);
                let aid = self.sw.action_id(&pe.action).unwrap();
                self.sw
                    .table_add(self.cls, key, pe.priority, aid, pe.action_data.clone())
                    .unwrap()
            })
            .collect()
    }

    /// One *prepare* driver op: modify physical entry `i` of copy `vv` to
    /// the new tag.
    fn mod_copy_entry(&mut self, vv: u8, i: usize, tag: u64) {
        let entries = self.expand(vv, tag);
        let pe = &entries[i];
        let aid = self.sw.action_id(&pe.action).unwrap();
        self.sw
            .table_mod(
                self.cls,
                self.phys[vv as usize][i],
                aid,
                pe.action_data.clone(),
            )
            .unwrap();
    }

    /// The *commit* driver op: one atomic default-action update carrying
    /// vv, mv and all scalar slots.
    fn set_master(&mut self, vv: u8, mv: u8, scale: u64) {
        self.sw
            .table_set_default(
                self.master,
                self.master_action,
                vec![
                    Value::new(u128::from(vv), 1),
                    Value::new(u128::from(mv), 1),
                    Value::new(u128::from(scale), 32),
                ],
            )
            .unwrap();
    }

    fn start_probe(&self) -> mantis::rmt_sim::switch::Execution {
        let phv = PacketDesc::new(0).field("h", "k", 5).build(self.sw.spec());
        self.sw.exec_start(phv, Pipeline::Ingress)
    }

    fn out_of(&self, e: &mantis::rmt_sim::switch::Execution) -> u64 {
        e.phv
            .get(self.sw.spec().field_id("h", "out").unwrap())
            .as_u64()
    }
}

fn to_keyfields(sw: &Switch, table: TableId, pe: &PhysEntry) -> Vec<KeyField> {
    sw.spec()
        .table(table)
        .key
        .iter()
        .zip(pe.key.iter())
        .map(|(ks, pk)| match pk {
            PhysKey::Exact(v) => KeyField::Exact(*v),
            PhysKey::Ternary { value, mask } => KeyField::Ternary {
                value: *value,
                mask: *mask,
            },
            PhysKey::Lpm { value, prefix_len } => KeyField::Lpm {
                value: *value,
                prefix_len: *prefix_len,
            },
            PhysKey::Any => KeyField::Ternary {
                value: Value::zero(ks.width),
                mask: Value::zero(ks.width),
            },
        })
        .collect()
}

const OLD_WORLD: u64 = 101; // tag 100 + scale 1
const NEW_WORLD: u64 = 207; // tag 200 + scale 7

/// Run the full update with the commit placed at every possible stage
/// boundary of a probe packet: the packet sees the new world iff the
/// commit landed before its init stage executed.
#[test]
fn packet_latches_configuration_at_init_stage() {
    // The compiled ingress has: init stage, then the cls stage (plus any
    // generated stages). Try committing before each stage boundary.
    for commit_before_stage in 0..4usize {
        let mut h = Harness::new();
        let mut probe = h.start_probe();
        let mut committed = false;
        let mut stage = 0usize;
        while !probe.done() {
            if stage == commit_before_stage && !committed {
                // prepare (shadow copy vv=0) then commit, as two driver ops
                // landing between stages.
                h.mod_copy_entry(0, 0, 200);
                h.set_master(0, 0, 7);
                committed = true;
            }
            h.sw.exec_step(&mut probe);
            stage += 1;
        }
        if !committed {
            h.mod_copy_entry(0, 0, 200);
            h.set_master(0, 0, 7);
        }
        let expect = if commit_before_stage == 0 {
            NEW_WORLD // committed before the packet latched the init table
        } else {
            OLD_WORLD // packet latched vv/scale before the commit
        };
        assert_eq!(
            h.out_of(&probe),
            expect,
            "commit before stage {commit_before_stage}"
        );
        // Any packet entering now is firmly in the new world.
        let late = h.sw.run_pipeline(
            PacketDesc::new(0).field("h", "k", 5).build(h.sw.spec()),
            Pipeline::Ingress,
        );
        assert_eq!(
            late.get(h.sw.spec().field_id("h", "out").unwrap()).as_u64(),
            NEW_WORLD
        );
    }
}

/// Packets in flight across the commit keep the world they latched, even
/// with prepare ops interleaved around them and the mirror pass afterwards.
#[test]
fn concurrent_old_and_new_packets_each_see_one_world() {
    let mut h = Harness::new();

    // P1 latches the old configuration.
    let mut p1 = h.start_probe();
    h.sw.exec_step(&mut p1); // init stage: vv=1, scale=1

    // Prepare lands mid-flight for P1 (invisible: wrong vv).
    h.mod_copy_entry(0, 0, 200);
    // Commit lands mid-flight for P1.
    h.set_master(0, 0, 7);

    // P2 starts after the commit and latches the new configuration.
    let mut p2 = h.start_probe();
    h.sw.exec_step(&mut p2);

    // Finish both, interleaved.
    while !p1.done() || !p2.done() {
        if !p2.done() {
            h.sw.exec_step(&mut p2);
        }
        if !p1.done() {
            h.sw.exec_step(&mut p1);
        }
    }
    assert_eq!(h.out_of(&p1), OLD_WORLD, "pre-commit packet");
    assert_eq!(h.out_of(&p2), NEW_WORLD, "post-commit packet");

    // Mirror after the old-vv packet drained (the §5.1.2 PCIe-vs-pipeline
    // argument); the logical entry now survives a flip back.
    h.mod_copy_entry(1, 0, 200);
    h.set_master(1, 0, 7);
    let back = h.sw.run_pipeline(
        PacketDesc::new(0).field("h", "k", 5).build(h.sw.spec()),
        Pipeline::Ingress,
    );
    assert_eq!(
        back.get(h.sw.spec().field_id("h", "out").unwrap()).as_u64(),
        NEW_WORLD,
        "after flipping back to vv=1 the mirrored copy serves the new world"
    );
}

/// The scalar-slot half of the commit is atomic with the vv flip: a packet
/// never sees (new scale, old entries) or (old scale, new entries).
#[test]
fn scalar_and_table_updates_commit_together() {
    let mut h = Harness::new();
    // Deliberately interleave probes between the prepare and the commit.
    h.mod_copy_entry(0, 0, 200);
    let mid = h.sw.run_pipeline(
        PacketDesc::new(0).field("h", "k", 5).build(h.sw.spec()),
        Pipeline::Ingress,
    );
    let mid_out = mid.get(h.sw.spec().field_id("h", "out").unwrap()).as_u64();
    assert_eq!(mid_out, OLD_WORLD, "prepare must be invisible");

    h.set_master(0, 0, 7);
    let post = h.sw.run_pipeline(
        PacketDesc::new(0).field("h", "k", 5).build(h.sw.spec()),
        Pipeline::Ingress,
    );
    let post_out = post.get(h.sw.spec().field_id("h", "out").unwrap()).as_u64();
    assert_eq!(post_out, NEW_WORLD, "commit flips tag and scale together");
}
