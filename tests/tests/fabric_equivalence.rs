//! Fabric determinism (DESIGN.md §10): a multi-switch run is a pure
//! function of its inputs.
//!
//! * the full leaf–spine failover workload — heartbeats, a measured flow,
//!   N interleaved dialogue loops, and a mid-run link failure — produces
//!   byte-identical per-switch churn fingerprints when run twice;
//! * events inserted in shuffled order at *equal timestamps* on distinct
//!   switches leave every per-switch fingerprint unchanged (the
//!   `(time, switch, seq)` ordering makes same-time work on different
//!   switches commute), checked by proptest over random permutations;
//! * `MANTIS_SWITCHES` (the CI sweep knob) is honored via
//!   [`mantis::switches_from_env`];
//! * switch-scoped telemetry labels (`sw{i}.*`) appear only when the
//!   fabric has more than one switch, so single-switch traces stay
//!   byte-identical to the pre-fabric goldens (enforced byte-for-byte by
//!   `telemetry_determinism.rs`).

use mantis::apps::fabric::{build_failover_fabric, leaf_host, EXIT_PORT};
use mantis::netsim::{
    schedule_link_flaps, spawn_udp_on, Simulator, Topology, UdpConfig, HOST_PORTS,
};
use mantis::rmt_sim::PacketDesc;
use mantis::{schedule_fabric_agents, Fabric, FaultPlan, Testbed};
use proptest::prelude::*;

/// Everything observable per switch after a run: aggregate tx accounting
/// plus the ordered `(port, time)` sequence of packets that left it.
/// Cross-switch interleaving in the shared log may legitimately vary with
/// event insertion order; the per-switch projections may not.
fn per_switch_fingerprints(sim: &mut Simulator) -> Vec<String> {
    let n = sim.num_switches();
    let tagged = sim.take_tx_tagged();
    (0..n)
        .map(|i| {
            let log: Vec<String> = tagged
                .iter()
                .filter(|(s, _)| *s == i)
                .map(|(_, p)| format!("{}@{}", p.port, p.time))
                .collect();
            format!(
                "sw{i} tx={} bytes={} log=[{}]",
                sim.tx_count_on(i),
                sim.tx_bytes_on(i),
                log.join(",")
            )
        })
        .collect()
}

/// One full failover-fabric run: 2×2 leaf–spine, paced agents, a
/// leaf-0 → leaf-1 flow, and a link failure mid-run.
fn failover_churn_run() -> (Vec<String>, Vec<usize>, Vec<Option<i128>>) {
    let mut tb = build_failover_fabric(2, 2, 1_000, 0.2);
    schedule_fabric_agents(&mut tb.sim, &tb.agents, 50_000, 0);
    spawn_udp_on(
        &mut tb.sim,
        0,
        UdpConfig {
            ingress_port: EXIT_PORT,
            fields: vec![
                ("ethernet".into(), "ether_type".into(), 0x0800),
                ("ipv4".into(), "src_addr".into(), u128::from(leaf_host(0))),
                ("ipv4".into(), "dst_addr".into(), u128::from(leaf_host(1))),
            ],
            payload_bytes: 1_250,
            rate_bps: 1_000_000_000,
            start_ns: 0,
            stop_ns: None,
        },
    );
    let plan = FaultPlan::new().flap_on(0, u32::from(HOST_PORTS), 700_000, 1_900_000);
    schedule_link_flaps(&mut tb.sim, &plan);
    tb.sim.run_until(1_500_000);

    let detections: Vec<usize> = tb.events.iter().map(|e| e.borrow().len()).collect();
    let relay_totals: Vec<Option<i128>> = (2..4)
        .map(|s| tb.agents[s].borrow().slot("relay_total"))
        .collect();
    (
        per_switch_fingerprints(&mut tb.sim),
        detections,
        relay_totals,
    )
}

#[test]
fn the_same_fabric_workload_runs_byte_identically_twice() {
    let first = failover_churn_run();
    let second = failover_churn_run();
    assert_eq!(first.1, second.1, "detection counts diverged");
    assert_eq!(first.2, second.2, "spine measurements diverged");
    for (i, (a, b)) in first.0.iter().zip(second.0.iter()).enumerate() {
        assert_eq!(a, b, "switch {i} churn fingerprint diverged");
    }
    // The run did real work: the failure was detected and packets moved
    // on every switch.
    assert_eq!(first.1[0], 1, "leaf 0 must detect the downed wire");
    assert!(
        first.0.iter().all(|f| !f.contains("tx=0 ")),
        "{:?}",
        first.0
    );
}

/// A tiny relay program for the permutation property: count arrivals per
/// ingress port and forward everything east (port `HOST_PORTS + 1`).
const RELAY_P4R: &str = r#"
header_type h_t { fields { a : 32; } }
header h_t h;
register seen { width : 64; instance_count : 8; }
malleable value knob { width : 32; init : 0; }
action fwd() {
    count(seen, intr.ingress_port);
    modify_field(intr.egress_spec, 5);
}
table t { actions { fwd; } default_action : fwd(); }
reaction watch(reg seen[0:7]) { ${knob} = seen[0]; }
control ingress { apply(t); }
"#;

/// Run a line fabric where packet injections at *equal timestamps* on
/// distinct switches are inserted into the event queue in `order`.
fn permuted_run(order: &[usize], rounds: u64) -> Vec<String> {
    let n = 3;
    let mut fab = Fabric::from_p4r(RELAY_P4R, Topology::line(n)).expect("relay fabric");
    for agent in &fab.agents {
        agent
            .borrow_mut()
            .register_all_interpreted()
            .expect("watch registered");
    }
    fab.start_agents(100_000);
    // `rounds` waves: at each time t, one packet into every switch — the
    // insertion order of the same-time events is the permutation under
    // test. Switch `i`'s packet carries `h.a = t ^ i` so payloads are
    // position-dependent.
    for r in 0..rounds {
        let t = 1_000 + r * 10_000;
        for &i in order {
            fab.sim.schedule(t, move |s| {
                s.switch_at(i)
                    .borrow_mut()
                    .inject(&PacketDesc::new(0).field("h", "a", u128::from(t ^ i as u64)));
            });
        }
    }
    fab.sim.run_until(1_000 + rounds * 10_000 + 500_000);
    per_switch_fingerprints(&mut fab.sim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn same_time_insertions_on_distinct_switches_commute(
        seed in 0u64..1_000,
    ) {
        // Deterministic Fisher–Yates over the 3 switches from the seed.
        let mut order = [0usize, 1, 2];
        let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        for i in (1..order.len()).rev() {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let baseline = permuted_run(&[0, 1, 2], 6);
        let permuted = permuted_run(&order, 6);
        prop_assert_eq!(baseline, permuted, "insertion order {:?} changed a per-switch fingerprint", order);
    }
}

#[test]
fn switch_count_from_env_is_honored() {
    // The CI `MANTIS_SWITCHES=3` leg drives this at 3 switches; locally
    // it runs at the default of 1. Either way the fabric loop must work.
    let n = usize::from(mantis::switches_from_env());
    let mut fab = Fabric::from_p4r(RELAY_P4R, Topology::line(n)).expect("relay fabric");
    for agent in &fab.agents {
        agent
            .borrow_mut()
            .register_all_interpreted()
            .expect("watch registered");
    }
    fab.start_agents(50_000);
    for i in 0..n {
        fab.sim.schedule(1_000, move |s| {
            s.switch_at(i)
                .borrow_mut()
                .inject(&PacketDesc::new(0).field("h", "a", 7));
        });
    }
    fab.sim.run_until(300_000);
    assert_eq!(fab.num_switches(), n);
    // Every switch saw its packet and its agent measured it.
    for i in 0..n {
        assert_eq!(fab.agents[i].borrow().slot("knob"), Some(1), "switch {i}");
    }
}

#[test]
fn switch_labels_appear_only_when_multiple_switches_exist() {
    // A single-switch testbed must stay byte-identical to the pre-fabric
    // telemetry goldens, so no switch-scoped metric may be emitted.
    let single = Testbed::from_p4r(RELAY_P4R).expect("program");
    single
        .sim
        .switch()
        .borrow_mut()
        .inject(&PacketDesc::new(0).field("h", "a", 7).payload(64));
    let snap = single.telemetry_snapshot();
    assert!(snap.contains("switch.rx"), "{snap}");
    assert!(
        !snap.contains("sw0."),
        "single-switch run leaked switch labels: {snap}"
    );

    // A 2-switch fabric attributes the same traffic per switch.
    let fab = Fabric::from_p4r(RELAY_P4R, Topology::line(2)).expect("fabric");
    for i in 0..2 {
        fab.sim
            .switch_at(i)
            .borrow_mut()
            .inject(&PacketDesc::new(0).field("h", "a", 7).payload(64));
    }
    let snap = fab.telemetry_snapshot();
    assert!(snap.contains("sw0.switch.rx"), "{snap}");
    assert!(snap.contains("sw1.switch.rx"), "{snap}");
}
