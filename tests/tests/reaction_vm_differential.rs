//! Differential test for the reaction execution engines: the slot-resolved
//! bytecode VM and the reference AST tree-walker must be observationally
//! identical — same results, same malleable writes, same table ops, same
//! errors (including `StepLimitExceeded` mid-loop and integer wrap-around)
//! — on every reaction body shipped with the four use-case apps, plus
//! crafted edge-case bodies.
//!
//! Statics are exercised by running each body several times against the
//! same engine instances: any divergence in persistent `static` state shows
//! up as diverging writes or results in later runs.

use mantis::apps::programs::{DOS_P4R, ECMP_P4R, FAILOVER_P4R, RL_P4R};
use mantis::p4r_lang::creact::parse_body;
use mantis::reaction_interp::{CompiledReaction, InterpError, Interpreter, MockEnv};
use mantis::{compile_source, CompilerOptions};

/// Run `src` through both engines (fresh instance each) against
/// identically seeded envs, `runs` times on the *same* instances/envs so
/// statics and accumulated env state are covered, under the given step
/// limit. Asserts identical results/errors and identical env state after
/// every run.
fn assert_parity(label: &str, src: &str, mk_env: impl Fn() -> MockEnv, step_limit: u64, runs: u32) {
    let body = parse_body(src).unwrap_or_else(|e| panic!("{label}: body does not parse: {e}"));
    let mut vm = CompiledReaction::compile(&body)
        .unwrap_or_else(|e| panic!("{label}: body must compile to bytecode: {e}"));
    let mut walker = Interpreter::new(body);
    vm.step_limit = step_limit;
    walker.step_limit = step_limit;

    let mut env_vm = mk_env();
    let mut env_walker = mk_env();
    for run in 0..runs {
        let r_vm = vm.run(&mut env_vm);
        let r_walker = walker.run(&mut env_walker);
        assert_eq!(
            r_vm, r_walker,
            "{label}: result diverged (run {run}, step limit {step_limit})"
        );
        assert_eq!(
            env_vm.mbls, env_walker.mbls,
            "{label}: malleable writes diverged (run {run}, step limit {step_limit})"
        );
        assert_eq!(
            env_vm.table_ops, env_walker.table_ops,
            "{label}: table ops diverged (run {run}, step limit {step_limit})"
        );
        assert_eq!(
            env_vm.arrays, env_walker.arrays,
            "{label}: array state diverged (run {run}, step limit {step_limit})"
        );
    }
}

/// Build a plausible env for a compiled app's reaction binding: measured
/// fields become scalar args, measured registers become array args with
/// the binding's index range, and every malleable value slot is writable
/// at its declared init.
fn app_envs(src: &str) -> Vec<(String, String, MockEnv)> {
    let compiled = compile_source(src, &CompilerOptions::default()).expect("app compiles");
    let iface = &compiled.iface;
    iface
        .reactions
        .iter()
        .map(|binding| {
            let mut env = MockEnv::default();
            for (i, f) in binding.fields.iter().enumerate() {
                // Deterministic, width-respecting sample values.
                let max = 1i128 << u32::from(f.width).min(30);
                env.scalars
                    .insert(f.binding.clone(), (i as i128 * 37 + 13) % max);
            }
            for (i, r) in binding.registers.iter().enumerate() {
                let len = (r.hi - r.lo + 1) as usize;
                let max = 1i128 << u32::from(r.width).min(30);
                let vals: Vec<i128> = (0..len)
                    .map(|j| ((i as i128 + 1) * 101 + j as i128 * 17) % max)
                    .collect();
                env.arrays
                    .insert(r.binding.clone(), (i128::from(r.lo), vals));
            }
            for v in &iface.values {
                env.mbls.insert(v.name.clone(), v.init.bits() as i128);
            }
            (binding.name.clone(), binding.body_src.clone(), env)
        })
        .collect()
}

#[test]
fn app_reactions_match_walker() {
    for (app, src) in [
        ("dos", DOS_P4R),
        ("failover", FAILOVER_P4R),
        ("ecmp", ECMP_P4R),
        ("rl", RL_P4R),
    ] {
        let reactions = app_envs(src);
        assert!(!reactions.is_empty(), "{app}: no reactions compiled");
        for (name, body_src, env) in &reactions {
            let label = format!("{app}/{name}");
            assert_parity(&label, body_src, || clone_env(env), 50_000_000, 4);
        }
    }
}

/// App reactions under tight step budgets: both engines must stop at the
/// exact same point with the same `StepLimitExceeded` error and identical
/// partial malleable writes — this pins the VM's tick accounting to the
/// walker's, mid-loop included.
#[test]
fn app_reactions_match_walker_under_step_limits() {
    for (app, src) in [
        ("dos", DOS_P4R),
        ("failover", FAILOVER_P4R),
        ("ecmp", ECMP_P4R),
        ("rl", RL_P4R),
    ] {
        for (name, body_src, env) in &app_envs(src) {
            for limit in [1u64, 3, 9, 27, 81, 243, 729] {
                let label = format!("{app}/{name}@{limit}");
                assert_parity(&label, body_src, || clone_env(env), limit, 2);
            }
        }
    }
}

fn clone_env(env: &MockEnv) -> MockEnv {
    MockEnv {
        scalars: env.scalars.clone(),
        arrays: env.arrays.clone(),
        mbls: env.mbls.clone(),
        table_ops: env.table_ops.clone(),
        builtins: env.builtins.clone(),
    }
}

fn env_with_mbls(mbls: &[(&str, i128)]) -> MockEnv {
    let mut env = MockEnv::default();
    for (k, v) in mbls {
        env.mbls.insert((*k).to_string(), *v);
    }
    env
}

#[test]
fn step_limit_exceeded_is_identical() {
    let src = "while (1) { ${x} = ${x} + 1; }";
    let body = parse_body(src).unwrap();
    let mut vm = CompiledReaction::compile(&body).unwrap();
    let mut walker = Interpreter::new(body);
    for limit in [1u64, 2, 10, 101, 1000] {
        vm.step_limit = limit;
        walker.step_limit = limit;
        let mut env_vm = env_with_mbls(&[("x", 0)]);
        let mut env_walker = env_with_mbls(&[("x", 0)]);
        let r_vm = vm.run(&mut env_vm);
        let r_walker = walker.run(&mut env_walker);
        assert_eq!(r_vm, r_walker, "limit {limit}");
        assert_eq!(
            r_vm,
            Err(InterpError::StepLimitExceeded(limit)),
            "limit {limit}"
        );
        // Partial effects up to the abort point must agree too.
        assert_eq!(env_vm.mbls, env_walker.mbls, "limit {limit}");
    }
}

#[test]
fn integer_wrap_around_is_identical() {
    let src = r#"
uint8_t a = 250;
a += 10;
${wrapped_u8} = a;
int8_t b = 120;
b += 10;
${wrapped_i8} = b;
int8_t c = -128;
c--;
${wrapped_dec} = c;
uint16_t d = 65535;
++d;
${wrapped_u16} = d;
"#;
    assert_parity(
        "wrap-around",
        src,
        || {
            env_with_mbls(&[
                ("wrapped_u8", 0),
                ("wrapped_i8", 0),
                ("wrapped_dec", 0),
                ("wrapped_u16", 0),
            ])
        },
        50_000_000,
        2,
    );
}

#[test]
fn runtime_errors_are_identical() {
    // Division by zero, deep in an expression.
    let src_div = "${y} = 1 + 6 / (${z} - ${z});";
    let body = parse_body(src_div).unwrap();
    let mut vm = CompiledReaction::compile(&body).unwrap();
    let mut walker = Interpreter::new(body);
    let mut env_vm = env_with_mbls(&[("y", 0), ("z", 7)]);
    let mut env_walker = env_with_mbls(&[("y", 0), ("z", 7)]);
    let r_vm = vm.run(&mut env_vm);
    let r_walker = walker.run(&mut env_walker);
    assert_eq!(r_vm, r_walker);
    assert_eq!(r_vm, Err(InterpError::DivisionByZero));
    assert_eq!(env_vm.mbls, env_walker.mbls);

    // Array index out of bounds on an env argument.
    let src_oob = "${y} = qdepths[99];";
    let body = parse_body(src_oob).unwrap();
    let mut vm = CompiledReaction::compile(&body).unwrap();
    let mut walker = Interpreter::new(body);
    let mk = || {
        let mut env = env_with_mbls(&[("y", 0)]);
        env.arrays.insert("qdepths".into(), (0, vec![1, 2, 3, 4]));
        env
    };
    let (mut env_vm, mut env_walker) = (mk(), mk());
    let r_vm = vm.run(&mut env_vm);
    let r_walker = walker.run(&mut env_walker);
    assert_eq!(r_vm, r_walker);
    assert!(matches!(r_vm, Err(InterpError::IndexOutOfBounds { .. })));

    // Unknown variable.
    let src_unk = "${y} = nowhere;";
    let body = parse_body(src_unk).unwrap();
    let mut vm = CompiledReaction::compile(&body).unwrap();
    let mut walker = Interpreter::new(body);
    let (mut env_vm, mut env_walker) = (env_with_mbls(&[("y", 0)]), env_with_mbls(&[("y", 0)]));
    let r_vm = vm.run(&mut env_vm);
    let r_walker = walker.run(&mut env_walker);
    assert_eq!(r_vm, r_walker);
    assert!(matches!(r_vm, Err(InterpError::UnknownVariable(_))));
}

#[test]
fn statics_and_termination_are_identical() {
    // A persistent counter plus top-level break-style early termination.
    let src = r#"
static uint32_t calls = 0;
calls += 1;
${count} = calls;
if (calls > 2) {
    return calls;
}
${after} = calls * 10;
"#;
    assert_parity(
        "statics",
        src,
        || env_with_mbls(&[("count", 0), ("after", 0)]),
        50_000_000,
        5,
    );
}
