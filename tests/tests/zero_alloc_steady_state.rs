//! The scale engine's steady-state packet path performs zero heap
//! allocation (DESIGN.md §14).
//!
//! A counting global allocator wraps the system one; a small scale block
//! runs on a routed leaf–spine fabric, split into a warm-up half (pools
//! fill, wheel slots and scratch buffers reach their high-water marks)
//! and a measured half. The measured half must inject thousands of
//! packets without a single new allocation: templates write into pooled
//! PHVs, wire hops move buffers instead of copying, transmit batches
//! reuse scratch capacity, and the capped tx log recycles exit buffers
//! back to their emitting switch's freelist.

use mantis::netsim::{spawn_scale_flows, ScaleConfig, ScaleHost, Simulator, Topology, HOST_PORTS};
use mantis::p4_ast::Value;
use mantis::rmt_sim::{switch_from_source, KeyField, PortId};
use mantis::{Clock, SharedSwitch, SwitchConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

const ROUTE_P4: &str = r#"
header_type ip_t { fields { src : 32; dst : 32; } }
header ip_t ip;
action fwd(port) { modify_field(intr.egress_spec, port); }
action to_drop() { drop(); }
table route {
    reads { ip.dst : exact; }
    actions { fwd; to_drop; }
    default_action : to_drop();
    size : 64;
}
control ingress { apply(route); }
"#;

const LEAVES: usize = 2;
const SPINES: usize = 1;

fn host_addr(leaf: usize, h: usize) -> u64 {
    (leaf * HOST_PORTS as usize + h + 1) as u64
}

fn build_fabric() -> Simulator {
    let clock = Clock::new();
    let mut switches = Vec::new();
    for _ in 0..LEAVES + SPINES {
        let sw = switch_from_source(ROUTE_P4, SwitchConfig::default(), clock.clone())
            .expect("route program compiles");
        switches.push(SharedSwitch::new(sw));
    }
    for (i, handle) in switches.iter().enumerate() {
        let mut sw = handle.borrow_mut();
        let t = sw.table_id("route").expect("route table");
        let a = sw.action_id("fwd").expect("fwd action");
        for leaf in 0..LEAVES {
            for h in 0..HOST_PORTS as usize {
                let addr = host_addr(leaf, h);
                let port = if i < LEAVES {
                    if leaf == i {
                        h as u64
                    } else {
                        u64::from(Topology::leaf_uplink_port((addr % SPINES as u64) as usize))
                    }
                } else {
                    u64::from(Topology::spine_downlink_port(leaf))
                };
                sw.table_add(
                    t,
                    vec![KeyField::Exact(Value::new(u128::from(addr), 32))],
                    0,
                    a,
                    vec![Value::new(u128::from(port), 64)],
                )
                .expect("route installs");
            }
        }
    }
    let mut sim = Simulator::fabric(switches, Topology::leaf_spine(LEAVES, SPINES));
    // Small cap: exits hit it during warm-up and recycle from then on, so
    // the log itself stops growing before the measured window.
    sim.tx_log_cap = 64;
    sim
}

#[test]
fn steady_state_packet_path_does_not_allocate() {
    let hosts: Vec<ScaleHost> = (0..LEAVES)
        .flat_map(|leaf| {
            (0..HOST_PORTS as usize).map(move |h| ScaleHost {
                switch: leaf,
                port: h as PortId,
                addr: host_addr(leaf, h),
            })
        })
        .collect();
    let cfg = ScaleConfig {
        seed: 7,
        flows: 3_000,
        duration_ns: 2_000_000_000,
        ..Default::default()
    };

    let mut sim = build_fabric();
    let planned = spawn_scale_flows(&mut sim, &cfg, &hosts).expect("flows spawn");
    assert!(planned > 10_000, "block too small to exercise steady state");

    // Warm-up half: freelists, wheel buckets, queue deques, and batch
    // scratch all reach steady capacity.
    sim.run_until(cfg.duration_ns / 2);

    let before = ALLOCS.load(Ordering::Relaxed);
    sim.run_until(cfg.duration_ns + 100_000);
    let after = ALLOCS.load(Ordering::Relaxed);

    let exited = sim.tx_count;
    assert!(exited > 0, "no traffic crossed the fabric");
    assert_eq!(
        after - before,
        0,
        "steady-state half allocated {} times (planned {} packets)",
        after - before,
        planned
    );
}
