//! Pipe-count equivalence (DESIGN.md §9): the whole stack must behave
//! the same whether the switch has 1, 2, or 4 hardware pipes.
//!
//! * every use-case program runs end-to-end under each pipe count, and
//!   the agent's per-pipe version bits converge after every iteration;
//! * a deterministic churn workload reaches the same agent-visible state
//!   (slots, vv, logical table sizes) regardless of pipe count, and the
//!   physical tables stay symmetric across pipes;
//! * transient fault plans are absorbed identically at every pipe count;
//! * `MANTIS_PIPES` (the CI sweep knob) is honored via
//!   [`mantis::pipes_from_env`];
//! * pipe-scoped telemetry labels appear only when `num_pipes > 1`, so a
//!   single-pipe run's trace is byte-identical to the pre-multi-pipe
//!   goldens (enforced byte-for-byte by `telemetry_determinism.rs`).

use mantis::apps::programs::{DOS_P4R, ECMP_P4R, FAILOVER_P4R, RL_P4R};
use mantis::p4_ast::Value;
use mantis::p4r_compiler::entry::LogicalKey;
use mantis::rmt_sim::PacketDesc;
use mantis::{FaultPlan, ReactionCtx, RetryPolicy, Testbed};

const PIPE_COUNTS: [u16; 3] = [1, 2, 4];

const ALL_PROGRAMS: [(&str, &str); 4] = [
    ("dos", DOS_P4R),
    ("failover", FAILOVER_P4R),
    ("ecmp", ECMP_P4R),
    ("rl", RL_P4R),
];

const CHURN_P4R: &str = r#"
header_type h_t { fields { a : 32; b : 32; } }
header h_t h;
malleable value knob { width : 32; init : 0; }
malleable field pick { width : 32; init : h.a; alts { h.a, h.b } }
action fwd(port) { modify_field(intr.egress_spec, port); }
action nop() { no_op(); }
malleable table acl {
    reads { ${pick} : exact; }
    actions { fwd; nop; }
    size : 128;
}
table t { actions { nop; } default_action : nop(); }
reaction churn(ing h.a) { ${knob} = ${knob}; }
control ingress { apply(acl); apply(t); }
"#;

/// The same deterministic workload as `fault_tolerance.rs`: staged ops
/// depend only on the reaction's invocation count, never on the clock or
/// the pipe count.
fn register_churn(tb: &Testbed) {
    let mut i: u64 = 0;
    let mut handles: Vec<u64> = Vec::new();
    tb.agent
        .borrow_mut()
        .register_native(
            "churn",
            Box::new(move |ctx: &mut ReactionCtx<'_>| {
                i += 1;
                ctx.set_mbl("knob", i as i128)?;
                match i % 3 {
                    0 => {
                        let h = ctx.table_add(
                            "acl",
                            vec![LogicalKey::Exact(Value::new(u128::from(i), 32))],
                            0,
                            "fwd",
                            vec![Value::new(u128::from(i % 8), 9)],
                        )?;
                        handles.push(h);
                    }
                    1 => {
                        if let Some(h) = handles.first().copied() {
                            ctx.table_mod(
                                "acl",
                                h,
                                "fwd",
                                vec![Value::new(u128::from((i + 1) % 8), 9)],
                            )?;
                        }
                    }
                    _ => {
                        if i % 6 == 2 {
                            if let Some(h) = handles.pop() {
                                ctx.table_del("acl", h)?;
                            }
                        }
                    }
                }
                if i.is_multiple_of(5) {
                    ctx.shift_field("pick", (i % 2) as usize)?;
                }
                Ok(())
            }),
        )
        .expect("churn registered");
}

/// Agent-visible state that must not depend on the pipe count: committed
/// slots, the (converged) version bit, and logical bookkeeping. Driver
/// costs and timing legitimately scale with fan-out, so they are
/// deliberately excluded.
fn agent_fingerprint(tb: &Testbed) -> String {
    let agent = tb.agent.borrow();
    assert!(
        agent.vv_per_pipe().iter().all(|&v| v == agent.vv()),
        "per-pipe version bits must converge between iterations: {:?}",
        agent.vv_per_pipe()
    );
    format!(
        "vv={} knob={:?} pick={:?} logical={:?}",
        agent.vv(),
        agent.slot("knob"),
        agent.slot("pick"),
        agent.logical_len("acl"),
    )
}

fn churn_run(pipes: u16, plan: Option<FaultPlan>, iters: usize) -> String {
    let tb = Testbed::from_p4r_with_pipes(CHURN_P4R, pipes).expect("churn program");
    register_churn(&tb);
    if let Some(plan) = plan {
        let mut agent = tb.agent.borrow_mut();
        agent.set_retry_policy(RetryPolicy {
            max_retries: 8,
            ..RetryPolicy::default()
        });
        agent.set_fault_plan(plan);
    }
    for k in 0..iters {
        tb.agent
            .borrow_mut()
            .dialogue_iteration()
            .unwrap_or_else(|e| panic!("pipes={pipes} iteration {k}: {e}"));
    }
    // The write fan-out must have kept every pipe's copy of every table
    // identical (same handles, keys, actions).
    {
        let sw = tb.sim.switch().borrow();
        let t = sw.table_id("acl").expect("acl exists");
        let dump = |p: u16| {
            let mut rows: Vec<String> = sw
                .table_ref_on(p, t)
                .entries()
                .map(|e| {
                    format!(
                        "{:?}|{:?}|{:?}|{:?}",
                        e.handle, e.key, e.action, e.action_data
                    )
                })
                .collect();
            rows.sort();
            rows.join(";")
        };
        for p in 1..pipes {
            assert_eq!(
                dump(0),
                dump(p),
                "pipes={pipes}: pipe {p} diverged from pipe 0"
            );
        }
    }
    agent_fingerprint(&tb)
}

#[test]
fn every_use_case_program_runs_under_every_pipe_count() {
    for pipes in PIPE_COUNTS {
        for (name, src) in ALL_PROGRAMS {
            let tb = Testbed::from_p4r_with_pipes(src, pipes)
                .unwrap_or_else(|e| panic!("{name} @ {pipes} pipes: {e}"));
            tb.agent
                .borrow_mut()
                .register_all_interpreted()
                .unwrap_or_else(|e| panic!("{name} @ {pipes} pipes: {e}"));
            for k in 0..3 {
                tb.agent
                    .borrow_mut()
                    .dialogue_iteration()
                    .unwrap_or_else(|e| panic!("{name} @ {pipes} pipes, iter {k}: {e}"));
            }
            let agent = tb.agent.borrow();
            assert_eq!(agent.vv_per_pipe().len(), usize::from(pipes), "{name}");
            assert!(
                agent.vv_per_pipe().iter().all(|&v| v == agent.vv()),
                "{name} @ {pipes} pipes: vv diverged {:?}",
                agent.vv_per_pipe()
            );
        }
    }
}

#[test]
fn churn_reaches_the_same_state_at_every_pipe_count() {
    let baseline = churn_run(1, None, 12);
    assert!(baseline.contains("knob=Some(12)"), "{baseline}");
    for pipes in [2, 4] {
        assert_eq!(
            churn_run(pipes, None, 12),
            baseline,
            "pipes={pipes} diverged from the single-pipe run"
        );
    }
}

#[test]
fn transient_faults_are_absorbed_identically_at_every_pipe_count() {
    for pipes in PIPE_COUNTS {
        let baseline = churn_run(pipes, None, 10);
        for seed in 0..8u64 {
            let faulted = churn_run(pipes, Some(FaultPlan::random_transient(seed, 300)), 10);
            assert_eq!(
                faulted, baseline,
                "pipes={pipes} seed={seed}: faulted run diverged from fault-free state"
            );
        }
    }
}

#[test]
fn pipe_count_from_env_is_honored() {
    // The CI `MANTIS_PIPES=4` leg drives this test at 4 pipes; locally it
    // runs at the default of 1. Either way the full loop must work.
    let pipes = mantis::pipes_from_env();
    let tb = Testbed::from_p4r_with_pipes(CHURN_P4R, pipes).expect("churn program");
    register_churn(&tb);
    for _ in 0..5 {
        tb.agent
            .borrow_mut()
            .dialogue_iteration()
            .expect("iteration");
    }
    let agent = tb.agent.borrow();
    assert_eq!(agent.vv_per_pipe().len(), usize::from(pipes));
    assert_eq!(agent.slot("knob"), Some(5));
}

#[test]
fn pipe_labels_appear_only_when_multiple_pipes_exist() {
    // pipes=1 must stay byte-identical to the pre-multi-pipe telemetry
    // goldens, so no pipe-scoped metric may be emitted at all.
    let single = Testbed::from_p4r_with_pipes(CHURN_P4R, 1).expect("program");
    single
        .sim
        .switch()
        .borrow_mut()
        .inject(&PacketDesc::new(0).field("h", "a", 7).payload(64));
    let snap = single.telemetry_snapshot();
    assert!(snap.contains("switch.rx"), "{snap}");
    assert!(
        !snap.contains("pipe0."),
        "single-pipe run leaked pipe labels: {snap}"
    );

    // pipes=4: the same traffic is attributed to its pipe. Port 0 lands in
    // pipe 0; with 32 ports and 4 pipes, port 16 lands in pipe 2.
    let quad = Testbed::from_p4r_with_pipes(CHURN_P4R, 4).expect("program");
    {
        let mut sw = quad.sim.switch().borrow_mut();
        assert_eq!(sw.pipe_of_port(16), 2);
        sw.inject(&PacketDesc::new(0).field("h", "a", 7).payload(64));
        sw.inject(&PacketDesc::new(16).field("h", "a", 7).payload(64));
    }
    let snap = quad.telemetry_snapshot();
    assert!(snap.contains("pipe0.switch.rx"), "{snap}");
    assert!(snap.contains("pipe2.switch.rx"), "{snap}");
}
