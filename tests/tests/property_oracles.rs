//! Property tests checking core components against independent reference
//! models ("oracles"):
//!
//! * the RMT table's match semantics vs a brute-force reference matcher,
//! * the reaction interpreter's arithmetic vs direct Rust evaluation,
//! * the P4R pretty-printer/parser round trip on generated programs.

use mantis::p4_ast::{self, Value};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Table oracle
// ---------------------------------------------------------------------------

mod table_oracle {
    use super::*;
    use mantis::rmt_sim::{switch_from_source, Clock, KeyField, SwitchConfig};

    /// Reference matcher mirroring the documented table semantics.
    #[derive(Clone, Debug)]
    struct RefEntry {
        value: u64,
        mask: u64,
        priority: u32,
        seq: u64,
        tag: u64,
    }

    fn ref_lookup(entries: &[RefEntry], field: u64) -> Option<u64> {
        entries
            .iter()
            .filter(|e| (field & e.mask) == (e.value & e.mask))
            .max_by_key(|e| (e.priority, std::cmp::Reverse(e.seq)))
            .map(|e| e.tag)
    }

    const PROG: &str = r#"
header_type h_t { fields { k : 32; out : 32; } }
header h_t h;
action tag(v) { modify_field(h.out, v); }
action miss() { modify_field(h.out, 0); }
table t {
    reads { h.k : ternary; }
    actions { tag; miss; }
    default_action : miss();
    size : 64;
}
control ingress { apply(t); }
"#;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn ternary_table_matches_reference_model(
            entries in proptest::collection::vec(
                (any::<u32>(), any::<u32>(), 0u32..16), 0..24),
            probes in proptest::collection::vec(any::<u32>(), 1..24),
        ) {
            let clock = Clock::new();
            let mut sw =
                switch_from_source(PROG, SwitchConfig::default(), clock).unwrap();
            let t = sw.table_id("t").unwrap();
            let tag = sw.action_id("tag").unwrap();

            let mut reference = Vec::new();
            for (i, (value, mask, priority)) in entries.iter().enumerate() {
                let tag_val = i as u64 + 1;
                sw.table_add(
                    t,
                    vec![KeyField::Ternary {
                        value: Value::new(u128::from(*value), 32),
                        mask: Value::new(u128::from(*mask), 32),
                    }],
                    *priority,
                    tag,
                    vec![Value::new(u128::from(tag_val), 32)],
                )
                .unwrap();
                reference.push(RefEntry {
                    value: u64::from(*value),
                    mask: u64::from(*mask),
                    priority: *priority,
                    seq: i as u64,
                    tag: tag_val,
                });
            }

            for probe in probes {
                let phv = mantis::rmt_sim::PacketDesc::new(0)
                    .field("h", "k", u128::from(probe))
                    .build(sw.spec());
                let out = sw.run_pipeline(phv, p4_ast::Pipeline::Ingress);
                let got = out.get(sw.spec().field_id("h", "out").unwrap()).as_u64();
                let expect = ref_lookup(&reference, u64::from(probe)).unwrap_or(0);
                prop_assert_eq!(got, expect, "probe {:#x}", probe);
            }
        }

        #[test]
        fn lpm_table_matches_longest_prefix_oracle(
            entries in proptest::collection::vec((any::<u32>(), 0u16..=32), 0..16),
            probes in proptest::collection::vec(any::<u32>(), 1..16),
        ) {
            let prog = PROG.replace("h.k : ternary;", "h.k : lpm;");
            let clock = Clock::new();
            let mut sw =
                switch_from_source(&prog, SwitchConfig::default(), clock).unwrap();
            let t = sw.table_id("t").unwrap();
            let tag = sw.action_id("tag").unwrap();

            let mut reference: Vec<(u32, u16, u64)> = Vec::new();
            for (i, (value, plen)) in entries.iter().enumerate() {
                let tag_val = i as u64 + 1;
                sw.table_add(
                    t,
                    vec![KeyField::Lpm {
                        value: Value::new(u128::from(*value), 32),
                        prefix_len: *plen,
                    }],
                    0,
                    tag,
                    vec![Value::new(u128::from(tag_val), 32)],
                )
                .unwrap();
                reference.push((*value, *plen, tag_val));
            }

            let prefix_match = |v: u32, pat: u32, plen: u16| -> bool {
                if plen == 0 {
                    true
                } else {
                    (v >> (32 - plen)) == (pat >> (32 - plen))
                }
            };
            for probe in probes {
                let phv = mantis::rmt_sim::PacketDesc::new(0)
                    .field("h", "k", u128::from(probe))
                    .build(sw.spec());
                let out = sw.run_pipeline(phv, p4_ast::Pipeline::Ingress);
                let got = out.get(sw.spec().field_id("h", "out").unwrap()).as_u64();
                // Longest matching prefix wins; insertion order breaks ties.
                let expect = reference
                    .iter()
                    .enumerate()
                    .filter(|(_, (pat, plen, _))| prefix_match(probe, *pat, *plen))
                    .max_by_key(|(i, (_, plen, _))| (*plen, std::cmp::Reverse(*i)))
                    .map(|(_, (_, _, tag))| *tag)
                    .unwrap_or(0);
                prop_assert_eq!(got, expect, "probe {:#x}", probe);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Interpreter arithmetic oracle
// ---------------------------------------------------------------------------

mod interp_oracle {
    use super::*;
    use mantis::reaction_interp::{Interpreter, MockEnv};

    /// A little expression tree we can both render to C and evaluate in
    /// Rust.
    #[derive(Clone, Debug)]
    enum Expr {
        Num(i64),
        Var(usize),
        Add(Box<Expr>, Box<Expr>),
        Sub(Box<Expr>, Box<Expr>),
        Mul(Box<Expr>, Box<Expr>),
        And(Box<Expr>, Box<Expr>),
        Or(Box<Expr>, Box<Expr>),
        Xor(Box<Expr>, Box<Expr>),
        Lt(Box<Expr>, Box<Expr>),
        Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    }

    fn render(e: &Expr) -> String {
        match e {
            Expr::Num(n) => {
                if *n < 0 {
                    format!("(0 - {})", -(*n as i128))
                } else {
                    format!("{n}")
                }
            }
            Expr::Var(i) => format!("v{i}"),
            Expr::Add(a, b) => format!("({} + {})", render(a), render(b)),
            Expr::Sub(a, b) => format!("({} - {})", render(a), render(b)),
            Expr::Mul(a, b) => format!("({} * {})", render(a), render(b)),
            Expr::And(a, b) => format!("({} & {})", render(a), render(b)),
            Expr::Or(a, b) => format!("({} | {})", render(a), render(b)),
            Expr::Xor(a, b) => format!("({} ^ {})", render(a), render(b)),
            Expr::Lt(a, b) => format!("({} < {})", render(a), render(b)),
            Expr::Ternary(c, a, b) => {
                format!("({} ? {} : {})", render(c), render(a), render(b))
            }
        }
    }

    fn eval(e: &Expr, vars: &[i64]) -> i128 {
        match e {
            Expr::Num(n) => i128::from(*n),
            Expr::Var(i) => i128::from(vars[*i % vars.len()]),
            Expr::Add(a, b) => eval(a, vars).wrapping_add(eval(b, vars)),
            Expr::Sub(a, b) => eval(a, vars).wrapping_sub(eval(b, vars)),
            Expr::Mul(a, b) => eval(a, vars).wrapping_mul(eval(b, vars)),
            Expr::And(a, b) => eval(a, vars) & eval(b, vars),
            Expr::Or(a, b) => eval(a, vars) | eval(b, vars),
            Expr::Xor(a, b) => eval(a, vars) ^ eval(b, vars),
            Expr::Lt(a, b) => i128::from(eval(a, vars) < eval(b, vars)),
            Expr::Ternary(c, a, b) => {
                if eval(c, vars) != 0 {
                    eval(a, vars)
                } else {
                    eval(b, vars)
                }
            }
        }
    }

    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (-1000i64..1000).prop_map(Expr::Num),
            (0usize..4).prop_map(Expr::Var),
        ];
        leaf.prop_recursive(4, 32, 3, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::Lt(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Expr::Ternary(
                    Box::new(c),
                    Box::new(a),
                    Box::new(b)
                )),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn interpreter_matches_rust_arithmetic(
            expr in arb_expr(),
            vars in proptest::collection::vec(-10_000i64..10_000, 4),
        ) {
            let src = format!("return {};", render(&expr));
            let mut interp = Interpreter::from_source(&src).unwrap();
            let mut env = MockEnv::default();
            for (i, v) in vars.iter().enumerate() {
                env.scalars.insert(format!("v{i}"), i128::from(*v));
            }
            let got = interp.run(&mut env).unwrap();
            prop_assert_eq!(got, Some(eval(&expr, &vars)));
        }
    }
}

// ---------------------------------------------------------------------------
// Pretty-printer / parser round trip on generated programs
// ---------------------------------------------------------------------------

mod roundtrip {
    use super::*;
    use mantis::p4_ast::{
        ActionDecl, FieldOrMbl, HeaderTypeDecl, InstanceDecl, MatchKind, Operand, PrimitiveCall,
        Program, TableDecl, TableRead,
    };

    /// Generate a small but structurally valid program.
    fn arb_program() -> impl Strategy<Value = Program> {
        (
            proptest::collection::vec(1u16..64, 1..6),  // field widths
            proptest::collection::vec(0usize..3, 0..5), // table key choices
            any::<bool>(),
        )
            .prop_map(|(widths, table_kinds, metadata)| {
                let fields: Vec<(String, u16)> = widths
                    .iter()
                    .enumerate()
                    .map(|(i, w)| (format!("f{i}"), *w))
                    .collect();
                let mut p = Program {
                    header_types: vec![HeaderTypeDecl {
                        name: "h_t".into(),
                        fields: fields.clone(),
                    }],
                    instances: vec![InstanceDecl {
                        header_type: "h_t".into(),
                        name: "h".into(),
                        is_metadata: metadata,
                        initializers: vec![],
                    }],
                    actions: vec![ActionDecl {
                        name: "a0".into(),
                        params: vec!["p".into()],
                        body: vec![PrimitiveCall::ModifyField {
                            dst: FieldOrMbl::field("h", "f0"),
                            src: Operand::Param("p".into()),
                        }],
                    }],
                    ..Default::default()
                };
                for (ti, kind) in table_kinds.iter().enumerate() {
                    let kind = match kind {
                        0 => MatchKind::Exact,
                        1 => MatchKind::Ternary,
                        _ => MatchKind::Lpm,
                    };
                    let field = format!("f{}", ti % fields.len());
                    p.tables.push(TableDecl {
                        name: format!("t{ti}"),
                        reads: vec![TableRead {
                            target: FieldOrMbl::field("h", field),
                            kind,
                            mask: None,
                        }],
                        actions: vec!["a0".into()],
                        default_action: None,
                        size: Some(16),
                        malleable: false,
                    });
                    p.ingress.push(p4_ast::ControlStmt::Apply(format!("t{ti}")));
                }
                p
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn print_then_parse_is_identity_on_structure(p in arb_program()) {
            prop_assert!(p4_ast::validate::validate(&p).is_empty());
            let printed = p4_ast::pretty::print_program(&p);
            let reparsed = mantis::p4r_lang::parse_program(&printed)
                .map_err(|e| TestCaseError::fail(format!("{e}\n{printed}")))?;
            prop_assert_eq!(&p.header_types, &reparsed.header_types);
            prop_assert_eq!(&p.tables, &reparsed.tables);
            prop_assert_eq!(&p.actions, &reparsed.actions);
            prop_assert_eq!(&p.ingress, &reparsed.ingress);
            // And the reparsed program loads.
            mantis::rmt_sim::load(&reparsed)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
    }
}
