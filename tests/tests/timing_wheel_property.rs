//! Property tests for the hierarchical timing wheel against a
//! `BinaryHeap` oracle: `pop_due` must yield exactly the `(at, seq)`
//! order the old `BinaryHeap<Reverse<Scheduled>>` event queue produced —
//! same-time events FIFO by schedule order, cascades across levels
//! invisible, far-future (overflow-heap) events included.

use mantis::netsim::TimingWheel;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Clone, Debug)]
enum Op {
    /// Schedule an event `delta` ns after the latest popped time (events
    /// may land in the past relative to the wheel's boundary — the old
    /// heap accepted those, so the wheel must too).
    Schedule(u64),
    /// Drain everything due by `now + delta`, advancing `now`.
    Drain(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Mix of horizons: same-slot, level-0 neighbours, the flow
        // engine's real periods (25/100/280 µs), multi-level jumps, and
        // beyond-span overflow.
        prop_oneof![
            0u64..64,
            64u64..16_384,
            prop_oneof![Just(400u64), Just(25_000), Just(100_000), Just(280_000)],
            16_384u64..50_000_000,
            (1u64 << 61)..u64::MAX / 2,
        ]
        .prop_map(Op::Schedule),
        (0u64..2_000_000).prop_map(Op::Drain),
    ]
}

/// Apply one op list to both queues and compare every pop.
fn check(ops: &[Op]) {
    let mut wheel: TimingWheel<u64> = TimingWheel::new();
    let mut oracle: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut now = 0u64;
    for op in ops {
        match op {
            Op::Schedule(delta) => {
                let at = now.saturating_add(*delta);
                wheel.schedule(at, seq, seq);
                oracle.push(Reverse((at, seq)));
                seq += 1;
            }
            Op::Drain(delta) => {
                let until = now.saturating_add(*delta);
                loop {
                    let due = wheel.has_due(until);
                    let got = wheel.pop_due(until);
                    let want = match oracle.peek() {
                        Some(&Reverse((at, _))) if at <= until => {
                            oracle.pop().map(|Reverse(pair)| pair)
                        }
                        _ => None,
                    };
                    match (got, want) {
                        (None, None) => {
                            assert!(!due, "has_due said yes, pop_due said no (until {until})");
                            break;
                        }
                        (Some((ga, gs, item)), Some((wa, ws))) => {
                            assert!(due, "popped ({ga},{gs}) but has_due said no");
                            assert_eq!((ga, gs), (wa, ws), "order diverged at until {until}");
                            assert_eq!(item, gs, "payload follows its key");
                            now = now.max(ga);
                        }
                        (got, want) => {
                            panic!(
                                "presence diverged at until {until}: wheel {got:?} oracle {want:?}"
                            )
                        }
                    }
                }
                now = until;
            }
        }
    }
    // Leftovers agree in count and full drain order.
    assert_eq!(wheel.len(), oracle.len());
    while let Some(Reverse((wa, ws))) = oracle.pop() {
        let (ga, gs, _) = wheel.pop_due(u64::MAX).expect("wheel drains leftovers");
        assert_eq!((ga, gs), (wa, ws), "final drain diverged");
    }
    assert!(wheel.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wheel_matches_binary_heap_oracle(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        check(&ops);
    }
}

/// The regression that motivated `flush_boundary_slots`: a level-0 flush
/// carries the boundary across a level-1 window edge whose slot was
/// populated earlier. The parked event must still fire before anything
/// scheduled later in that window.
#[test]
fn boundary_crossing_does_not_mask_higher_level_slots() {
    let mut w: TimingWheel<u32> = TimingWheel::new();
    w.schedule(16_394, 0, 0); // level-1 slot (window [16384, 32768))
    w.schedule(16_380, 1, 0); // level-0: flushing it moves boundary to 16384
    assert_eq!(w.pop_due(16_380), Some((16_380, 1, 0)));
    // Boundary now sits inside 16394's window; a fresh near-term event
    // must not be served ahead of the parked one.
    w.schedule(16_484, 2, 0);
    assert_eq!(w.pop_due(u64::MAX), Some((16_394, 0, 0)));
    assert_eq!(w.pop_due(u64::MAX), Some((16_484, 2, 0)));
    assert!(w.is_empty());
}

/// The dos-scenario freeze shape: a short-period chain keeps level 0 busy
/// forever while longer-period events sit one level up. `has_due` must
/// keep seeing them.
#[test]
fn short_period_chain_does_not_starve_long_period_events() {
    let mut w: TimingWheel<u64> = TimingWheel::new();
    let mut seq = 0u64;
    w.schedule(25_000, seq, 25_000);
    seq += 1;
    let mut popped = Vec::new();
    let mut next_short = 0u64;
    for _ in 0..200 {
        w.schedule(next_short, seq, next_short);
        seq += 1;
        while let Some((at, _, item)) = w.pop_due(next_short) {
            assert_eq!(at, item);
            popped.push(at);
        }
        next_short += 400;
    }
    assert!(
        popped.contains(&25_000),
        "25 µs event starved by the 400 ns chain"
    );
    let sorted = {
        let mut s = popped.clone();
        s.sort_unstable();
        s
    };
    assert_eq!(popped, sorted, "pops left time order");
}

/// Same-time events fire in schedule order even when they arrive via
/// different routes (bucket, cascade, overflow migration).
#[test]
fn same_time_ties_break_by_schedule_order() {
    let mut w: TimingWheel<u64> = TimingWheel::new();
    w.schedule(1 << 40, 0, 0); // deep level, cascades down
    w.schedule(1 << 40, 1, 1);
    w.schedule(u64::MAX, 2, 2); // overflow
    w.schedule(u64::MAX, 3, 3);
    w.schedule(5, 4, 4);
    let mut got = Vec::new();
    while let Some((at, seq, _)) = w.pop_due(u64::MAX) {
        got.push((at, seq));
    }
    assert_eq!(
        got,
        vec![
            (5, 4),
            (1 << 40, 0),
            (1 << 40, 1),
            (u64::MAX, 2),
            (u64::MAX, 3)
        ]
    );
}
