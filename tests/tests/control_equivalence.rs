//! Remote-driver equivalence (DESIGN.md §11): driving a switch through
//! the control-plane wire protocol must not change what the reaction loop
//! computes.
//!
//! * At RTT = 0 the remote run is *exactly* the local run: byte-identical
//!   final device state (tables, defaults, registers) and identical
//!   driver op counts, for all four paper use-case programs.
//! * At RTT > 0 the virtual clock advances on every frame, so
//!   clock-sampling reactions may branch differently — but the
//!   clock-independent programs still converge to the identical state,
//!   and every program completes with converged version bits.
//! * A seeded channel-fault plan (drops, duplicates, delays) is fully
//!   absorbed by retransmission + sequence-number dedup: the run
//!   converges to the same state as the fault-free run.
//! * Severing the primary controller's channels fails its lease renewal;
//!   a standby claims after expiry, adopts the initialised switch, and
//!   the reactive state re-converges from live measurements.

use std::rc::Rc;

use mantis::apps::programs::{DOS_P4R, ECMP_P4R, FAILOVER_P4R, RL_P4R};
use mantis::p4r_compiler::{compile_source, CompilerOptions};
use mantis::rmt_sim::{PacketDesc, RegisterId, TableId};
use mantis::{
    ChannelConfig, Clock, ControlPlane, Controller, ControllerConfig, CostModel, DriverMode,
    FaultOp, FaultPlan, FaultWindow, SharedSwitch, Switch, SwitchConfig, Testbed,
};

const ITERS: u64 = 8;

type Traffic = fn(&Testbed, u64);

const ALL_PROGRAMS: [(&str, &str, Traffic); 4] = [
    ("dos", DOS_P4R, dos_traffic),
    ("failover", FAILOVER_P4R, failover_traffic),
    ("ecmp", ECMP_P4R, ecmp_traffic),
    ("rl", RL_P4R, rl_traffic),
];

/// Programs whose reactions are pure functions of device state (no
/// `now_us()`), so their final state is RTT-independent.
const CLOCK_FREE: [(&str, &str, Traffic); 2] =
    [("ecmp", ECMP_P4R, ecmp_traffic), ("rl", RL_P4R, rl_traffic)];

fn dos_traffic(tb: &Testbed, round: u64) {
    let mut sw = tb.sim.switch().borrow_mut();
    for i in 0..4u64 {
        sw.inject(
            &PacketDesc::new(0)
                .field("ethernet", "ether_type", 0x0800)
                .field("ipv4", "src_addr", u128::from(0x0a00_0010 + (i % 3) as u32))
                .field("ipv4", "dst_addr", 0x0a00_0002)
                .payload(400 + round as u32 * 64),
        );
    }
}

fn failover_traffic(tb: &Testbed, round: u64) {
    let mut sw = tb.sim.switch().borrow_mut();
    // Heartbeats on neighbor ports 4..8; port 6 goes quiet after round 3.
    for p in 4u16..8 {
        if p == 6 && round > 3 {
            continue;
        }
        sw.inject(
            &PacketDesc::new(p)
                .field("ethernet", "ether_type", 0x88b5)
                .field("hb", "seq", u128::from(round))
                .field("hb", "origin", u128::from(p))
                .payload(64),
        );
    }
    sw.inject(
        &PacketDesc::new(0)
            .field("ethernet", "ether_type", 0x0800)
            .field("ipv4", "dst_addr", 0x0a00_0001)
            .field("ipv4", "src_addr", 7)
            .payload(100),
    );
}

fn ecmp_traffic(tb: &Testbed, round: u64) {
    let mut sw = tb.sim.switch().borrow_mut();
    for i in 0..6u64 {
        let flow = round * 6 + i;
        sw.inject(
            &PacketDesc::new(0)
                .field("ethernet", "ether_type", 0x0800)
                .field("ipv4", "src_addr", 0x0a00_0001)
                .field("ipv4", "dst_addr", 0x0a00_0002)
                .field("ipv4", "protocol", 17)
                .field("l4", "sport", u128::from(flow.wrapping_mul(7_919) & 0xffff))
                .field(
                    "l4",
                    "dport",
                    u128::from(flow.wrapping_mul(104_729).wrapping_add(3) & 0xffff),
                )
                .payload(1_000),
        );
    }
}

fn rl_traffic(tb: &Testbed, _round: u64) {
    let mut sw = tb.sim.switch().borrow_mut();
    for i in 0..5u64 {
        sw.inject(
            &PacketDesc::new(0)
                .field("ethernet", "ether_type", 0x0800)
                .field("ipv4", "src_addr", u128::from(100 + i))
                .field("ipv4", "dst_addr", 0x0a00_0002)
                .payload(1_200),
        );
    }
}

/// The device-state oracle: every table's sorted entries and live default
/// action plus every register's full contents, with the agent's converged
/// version bit. Timing (busy_ns, clock) is deliberately excluded.
fn state_fingerprint(tb: &Testbed) -> String {
    let agent = tb.agent.borrow();
    assert!(
        agent.vv_per_pipe().iter().all(|&v| v == agent.vv()),
        "version bits must converge between iterations: {:?}",
        agent.vv_per_pipe()
    );
    let sw = tb.sim.switch().borrow();
    let mut out = format!("vv={}", agent.vv());
    for (i, ts) in sw.spec().tables.iter().enumerate() {
        let t = TableId(i as u32);
        let table = sw.table_ref(t);
        let mut rows: Vec<String> = table
            .entries()
            .map(|e| {
                format!(
                    "{:?}|{:?}|{}|{:?}|{:?}",
                    e.handle, e.key, e.priority, e.action, e.action_data
                )
            })
            .collect();
        rows.sort();
        out.push_str(&format!(
            "\ntable {}: default={:?} entries=[{}]",
            ts.name,
            table.default_action(),
            rows.join(";")
        ));
    }
    for (i, rs) in sw.spec().registers.iter().enumerate() {
        let vals = sw.register_read_range(RegisterId(i as u32), 0, rs.count - 1);
        out.push_str(&format!(
            "\nreg {}: {:?}",
            rs.name,
            vals.iter().map(|v| v.bits()).collect::<Vec<_>>()
        ));
    }
    out
}

/// Driver op counts — the same logical ops must reach the device in both
/// modes (in remote mode they are counted by the plane's local driver).
fn op_counts(tb: &Testbed) -> String {
    let agent = tb.agent.borrow();
    let s = agent.driver().stats();
    format!(
        "ops={} table_ops={} register_reads={} field_reads={} injected={}",
        s.ops, s.table_ops, s.register_reads, s.field_reads, s.injected_failures
    )
}

fn run(src: &str, mode: DriverMode, traffic: Traffic, plan: Option<FaultPlan>) -> Testbed {
    let tb = Testbed::with_config_mode(src, SwitchConfig::default(), CostModel::default(), mode)
        .expect("testbed");
    tb.agent
        .borrow_mut()
        .register_all_interpreted()
        .expect("reactions registered");
    if let Some(plan) = plan {
        tb.agent.borrow_mut().set_fault_plan(plan);
    }
    for round in 0..ITERS {
        traffic(&tb, round);
        tb.agent
            .borrow_mut()
            .dialogue_iteration()
            .unwrap_or_else(|e| panic!("iteration {round}: {e}"));
    }
    tb
}

#[test]
fn remote_at_zero_rtt_is_byte_identical_to_local() {
    for (name, src, traffic) in ALL_PROGRAMS {
        let local = run(src, DriverMode::Local, traffic, None);
        let remote = run(
            src,
            DriverMode::Remote(ChannelConfig::default()),
            traffic,
            None,
        );
        assert_eq!(
            state_fingerprint(&local),
            state_fingerprint(&remote),
            "{name}: remote state diverged from local at RTT=0"
        );
        assert_eq!(
            op_counts(&local),
            op_counts(&remote),
            "{name}: remote issued a different op mix at RTT=0"
        );
        // The remote run really crossed the wire, batched.
        assert!(local.plane.is_none());
        let plane = remote.plane.as_ref().expect("remote exposes its plane");
        assert!(plane.borrow().had_master() || plane.borrow().master().is_none());
        assert!(
            remote.telemetry.counter("control.frames") > 0,
            "{name}: no frames recorded"
        );
        assert!(
            remote.telemetry.counter("control.bytes") > 0,
            "{name}: no bytes recorded"
        );
        assert_eq!(
            local.telemetry.counter("control.frames"),
            0,
            "{name}: local run must not touch the channel"
        );
    }
}

#[test]
fn clock_free_programs_match_local_at_nonzero_rtt() {
    for (name, src, traffic) in CLOCK_FREE {
        let local = run(src, DriverMode::Local, traffic, None);
        for rtt in [1_000u64, 10_000, 100_000] {
            let remote = run(
                src,
                DriverMode::Remote(ChannelConfig::with_rtt(rtt)),
                traffic,
                None,
            );
            assert_eq!(
                state_fingerprint(&local),
                state_fingerprint(&remote),
                "{name}: state diverged at RTT={rtt}"
            );
            assert_eq!(
                op_counts(&local),
                op_counts(&remote),
                "{name}: op mix diverged at RTT={rtt}"
            );
        }
    }
}

#[test]
fn every_program_completes_at_nonzero_rtt() {
    // `now_us()`-sampling reactions (dos, failover) may branch differently
    // once frames cost virtual time, but the loop itself — batching,
    // barriers, version-bit sync — must hold at any latency.
    for (name, src, traffic) in ALL_PROGRAMS {
        let remote = run(
            src,
            DriverMode::Remote(ChannelConfig::with_rtt(50_000)),
            traffic,
            None,
        );
        let agent = remote.agent.borrow();
        assert!(
            agent.vv_per_pipe().iter().all(|&v| v == agent.vv()),
            "{name}: version bits diverged at RTT=50us"
        );
        assert_eq!(agent.stats().iterations, ITERS, "{name}");
    }
}

#[test]
fn seeded_channel_faults_converge_to_the_fault_free_state() {
    // Dropped frames retransmit under the same sequence number, duplicates
    // are absorbed by the plane's dedup window, delays only cost time —
    // so a clock-independent program lands in the identical final state.
    let cfg = ChannelConfig::with_rtt(2_000);
    for (name, src, traffic) in CLOCK_FREE {
        let clean = run(src, DriverMode::Remote(cfg), traffic, None);
        let plan = FaultPlan::new()
            .drop_frames(FaultWindow::Ops { lo: 6, hi: 60 }, 3)
            .duplicate_frames(FaultWindow::Ops { lo: 12, hi: 80 }, 2)
            .delay(
                FaultOp::Control,
                FaultWindow::Ops { lo: 20, hi: 90 },
                5_000,
                2,
            );
        let faulted = run(src, DriverMode::Remote(cfg), traffic, Some(plan));
        assert_eq!(
            state_fingerprint(&clean),
            state_fingerprint(&faulted),
            "{name}: channel faults leaked into device state"
        );
        assert!(
            faulted.telemetry.counter("control.frames_dropped") > 0,
            "{name}: the drop rules never fired"
        );
        assert!(
            faulted.telemetry.counter("control.frames_duplicated") > 0,
            "{name}: the duplicate rules never fired"
        );
        // Retransmissions mean strictly more frames than the clean run.
        assert!(
            faulted.telemetry.counter("control.frames") > clean.telemetry.counter("control.frames"),
            "{name}: no retransmitted frames"
        );
    }
}

const COUNTER_P4R: &str = r#"
header_type h_t { fields { a : 32; } }
header h_t h;
register seen { width : 64; instance_count : 4; }
malleable value knob { width : 32; init : 0; }
action tally() { count(seen, 0); }
table t { actions { tally; } default_action : tally(); }
reaction watch(reg seen[0:0]) { ${knob} = seen[0]; }
control ingress { apply(t); }
"#;

#[test]
fn standby_controller_takes_over_after_channel_severance() {
    let comp = compile_source(COUNTER_P4R, &CompilerOptions::default()).expect("compiles");
    let spec = mantis::rmt_sim::load(&comp.p4).expect("loads");
    let clock = Clock::new();
    let switch = SharedSwitch::new(Switch::new(spec, SwitchConfig::default(), clock.clone()));
    let plane = ControlPlane::shared(switch.clone(), CostModel::default());

    let lease_ns = 100_000;
    let chan = ChannelConfig::with_rtt(1_000);
    let mut primary = Controller::new(ControllerConfig::new(1, lease_ns, chan));
    let mut standby = Controller::new(ControllerConfig::new(2, lease_ns, chan));
    primary.add_switch(plane.clone(), comp.clone());
    standby.add_switch(plane.clone(), comp);
    let setup =
        Rc::new(|_i: usize, agent: &mut mantis::MantisAgent| agent.register_all_interpreted());
    primary.set_agent_setup(setup.clone());
    standby.set_agent_setup(setup);

    let inject = |n: u64| {
        let mut sw = switch.borrow_mut();
        for _ in 0..n {
            sw.inject(&PacketDesc::new(0).field("h", "a", 7).payload(64));
        }
    };

    // Primary boots the switch: first-ever claim → prologue, then reacts.
    let r = primary.step().expect("primary step");
    assert!(r.master && r.acquired && r.iterations == 1);
    inject(3);
    primary.step().expect("primary step");
    assert_eq!(primary.agents()[0].slot("knob"), Some(3));
    assert_eq!(plane.borrow().master().map(|(id, _)| id), Some(1));

    // While the primary's lease is live, the standby is refused.
    let r = standby.step().expect("standby step");
    assert!(!r.master && !standby.is_master());

    // Partition the primary: every frame on its channels is dropped. Its
    // next renewal fails and it stops driving the switch.
    primary.set_channel_fault_plan(FaultPlan::new().sever_control(0, clock.now()));
    let r = primary.step().expect("primary step");
    assert!(!r.master && !primary.is_master());

    // The standby still cannot claim until the lease expires on the
    // virtual clock…
    let r = standby.step().expect("standby step");
    assert!(!r.master);
    clock.advance(lease_ns + 1);

    // …then its claim is granted with the previous holder reported, so it
    // adopts the initialised switch instead of re-running the prologue,
    // and the reactive state re-converges from live measurements.
    inject(2);
    let r = standby.step().expect("standby step");
    assert!(r.master && r.acquired && r.iterations == 1);
    assert!(standby.is_master());
    assert_eq!(plane.borrow().master().map(|(id, _)| id), Some(2));
    assert_eq!(standby.agents()[0].slot("knob"), Some(5));

    // The standby keeps running the dialogue loop.
    inject(4);
    standby.step().expect("standby step");
    assert_eq!(standby.agents()[0].slot("knob"), Some(9));

    // The partitioned ex-primary stays out: its claims cannot reach the
    // switch at all.
    let r = primary.step().expect("primary step");
    assert!(!r.master);
}
