//! Fuzz-generator properties and corpus regression replay.
//!
//! 1. Any program emitted by the seeded random generator either compiles
//!    on every backend (rmt-sim lowering + walker + VM-or-fallback) or is
//!    rejected by the typechecker with a spanned diagnostic — never a
//!    panic, and never a silent half-compile.
//! 2. Every checked-in `tests/fuzz_corpus/*.p4r` regression case replays
//!    divergence-free across the walker, the VM, and the testbed agents.

use bench::fuzz::run_case;
use mantis::p4r_compiler::generate::{generate, GenConfig};
use mantis::{compile_source, CompilerOptions};
use proptest::prelude::*;
use std::path::Path;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated programs compile everywhere or reject with a span.
    #[test]
    fn generated_programs_compile_or_reject_with_span(seed in 0u64..1_000_000) {
        let program = generate(seed, &GenConfig::default());
        let src = program.render();
        match compile_source(&src, &CompilerOptions::default()) {
            Ok(compiled) => {
                // The typed IR must carry every reaction the interface
                // exposes, with a body ready for both execution engines.
                for binding in &compiled.iface.reactions {
                    prop_assert!(
                        compiled.ir.reaction(&binding.name).is_some(),
                        "seed {seed}: reaction `{}` missing from IR",
                        binding.name
                    );
                }
            }
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(
                    msg.contains("line"),
                    "seed {seed}: rejection lacks a source span: {msg}"
                );
            }
        }
    }

    /// The full differential harness never flags a generated program:
    /// walker, VM, and testbed agents agree (or the program is rejected).
    #[test]
    fn generated_programs_run_differentially_clean(seed in 0u64..1_000_000) {
        let program = generate(seed, &GenConfig::default());
        let outcome = run_case(&program.render());
        prop_assert!(
            outcome.divergence.is_none(),
            "seed {seed}: divergence: {:?}",
            outcome.divergence
        );
    }
}

/// Every minimized corpus case replays clean. This is the regression net:
/// divergences found by past fuzz campaigns land here ddmin-shrunk, and
/// must stay fixed forever after.
#[test]
fn fuzz_corpus_replays_divergence_free() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fuzz_corpus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("read tests/fuzz_corpus")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "p4r"))
        .collect();
    files.sort();
    assert!(
        !files.is_empty(),
        "fuzz corpus at {} is empty",
        dir.display()
    );
    for path in files {
        let src = std::fs::read_to_string(&path).expect("read corpus case");
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let outcome = run_case(&src);
        assert!(
            outcome.rejected.is_none(),
            "{name}: corpus case no longer compiles: {:?}",
            outcome.rejected
        );
        assert!(
            outcome.divergence.is_none(),
            "{name}: corpus case diverges again: {:?}",
            outcome.divergence
        );
    }
}
