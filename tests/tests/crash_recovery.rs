//! Crash-restart recovery (DESIGN.md §13): an agent killed at an
//! *arbitrary* driver op — any dialogue phase, including between two
//! per-pipe commits — must come back via [`MantisAgent::reconcile`] with
//! the device's authoritative state adopted, any torn apply repaired,
//! and converge to the exact configuration a never-crashed run reaches.
//!
//! All tests run on 2-pipe switches so the torn-apply surface (a crash
//! between pipe 0's and pipe 1's commit) is live.

use std::rc::Rc;

use mantis::p4_ast::Value;
use mantis::p4r_compiler::entry::LogicalKey;
use mantis::rmt_sim::PacketDesc;
use mantis::{
    compile_source, ChannelConfig, Clock, CompilerOptions, ControlPlane, Controller,
    ControllerConfig, CostModel, FaultOp, FaultPlan, FaultWindow, MantisAgent, SharedSwitch,
    Switch, SwitchConfig, Testbed,
};

const PROG: &str = r#"
header_type h_t { fields { a : 32; b : 32; } }
header h_t h;
malleable value knob { width : 32; init : 0; }
action fwd(port) { modify_field(intr.egress_spec, port); }
action nop() { no_op(); }
malleable table acl {
    reads { h.b : exact; }
    actions { fwd; nop; }
    size : 64;
}
table t { actions { nop; } default_action : nop(); }
reaction watch(ing h.a) { ${knob} = h_a + 1; }
control ingress { apply(acl); apply(t); }
"#;

/// The run's durable configuration: four ACL routes. The reaction only
/// rewrites `${knob}` (soft state that re-converges from measurements),
/// so entries come solely from here and the cross-run entry fingerprints
/// are comparable.
fn install_entries(tb: &Testbed) {
    tb.agent
        .borrow_mut()
        .user_init(|ctx| {
            for i in 0..4u128 {
                ctx.table_add(
                    "acl",
                    vec![LogicalKey::Exact(Value::new(i, 32))],
                    0,
                    "fwd",
                    vec![Value::new(i % 3 + 1, 9)],
                )?;
            }
            Ok(())
        })
        .expect("install acl entries");
}

fn build() -> Testbed {
    let tb = Testbed::from_p4r_with_pipes(PROG, 2).expect("program compiles");
    tb.agent
        .borrow_mut()
        .register_all_interpreted()
        .expect("reactions register");
    install_entries(&tb);
    tb
}

fn inject(tb: &Testbed, k: u64) {
    tb.sim.switch().borrow_mut().inject(
        &PacketDesc::new(0)
            .field("h", "a", u128::from(k % 7) + 1)
            .field("h", "b", u128::from(k % 4))
            .payload(64),
    );
}

/// Drive `iters` successful dialogue iterations, restarting through
/// `reconcile` + re-setup whenever the injected crash fires. Returns
/// whether the crash fired.
fn drive(tb: &Testbed, iters: usize) -> bool {
    let mut crashed = false;
    let mut done = 0;
    let mut k = 0u64;
    while done < iters {
        k += 1;
        inject(tb, k);
        let r = tb.agent.borrow_mut().dialogue_iteration();
        match r {
            Ok(_) => done += 1,
            Err(e) if e.is_crash() => {
                crashed = true;
                // The supervisor restarts the process: clean fault plan,
                // reconcile device state, re-run the durable user init.
                tb.agent.borrow_mut().set_fault_plan(FaultPlan::default());
                tb.agent.borrow_mut().reconcile().expect("reconcile");
                install_entries(tb);
            }
            Err(e) => panic!("non-crash failure at k={k}: {e}"),
        }
    }
    crashed
}

fn entry_fp(tb: &Testbed) -> u64 {
    tb.agent.borrow().entry_fingerprint()
}

fn assert_recovered(tb: &Testbed, baseline_fp: u64, ctx: &str) {
    let mut agent = tb.agent.borrow_mut();
    agent
        .verify_config_atomicity()
        .unwrap_or_else(|d| panic!("{ctx}: torn apply survived recovery: {d}"));
    let vv = agent.vv();
    assert!(
        agent.vv_per_pipe().iter().all(|&v| v == vv),
        "{ctx}: per-pipe version bits diverged: {:?}",
        agent.vv_per_pipe()
    );
    assert_eq!(
        agent.entry_fingerprint(),
        baseline_fp,
        "{ctx}: recovered config differs from the never-crashed run"
    );
}

/// ≥25 crash points spanning every dialogue phase across several
/// iterations (measure reads, reaction commits, the two per-pipe master
/// commits, flush): each run must converge to the fault-free fingerprint.
#[test]
fn crash_at_every_dialogue_phase_recovers_to_fault_free_state() {
    let baseline = build();
    assert!(!drive(&baseline, 10));
    let base_fp = entry_fp(&baseline);

    let mut fired = 0;
    for at_op in (1..=50).step_by(2) {
        let tb = build();
        tb.agent
            .borrow_mut()
            .set_fault_plan(FaultPlan::default().crash_at_op(at_op));
        if drive(&tb, 10) {
            fired += 1;
        }
        assert_recovered(&tb, base_fp, &format!("crash at op {at_op}"));
    }
    // Every op index inside ten iterations' worth of driver traffic
    // must actually have killed the agent once.
    assert_eq!(fired, 25, "some crash points never fired");
}

/// A crash can land between pipe 0's and pipe 1's commit, leaving the
/// device observably torn. `reconcile` must detect it and roll the stale
/// pipe *forward* (pipe 0 always carries the newest state).
#[test]
fn torn_apply_is_observed_and_rolled_forward() {
    let mut torn_seen = 0;
    for at_op in 1..=40 {
        let tb = build();
        tb.agent
            .borrow_mut()
            .set_fault_plan(FaultPlan::default().crash_at_op(at_op));
        let mut k = 0u64;
        let crash = loop {
            k += 1;
            if k > 60 {
                break false;
            }
            inject(&tb, k);
            match tb.agent.borrow_mut().dialogue_iteration() {
                Ok(_) => {}
                Err(e) if e.is_crash() => break true,
                Err(e) => panic!("non-crash failure: {e}"),
            }
        };
        assert!(crash, "crash at op {at_op} never fired");
        // Device-side probe before recovery: is the config torn?
        let torn = tb.agent.borrow_mut().verify_config_atomicity().is_err();
        if torn {
            torn_seen += 1;
        }
        let mut agent = tb.agent.borrow_mut();
        agent.set_fault_plan(FaultPlan::default());
        agent.reconcile().expect("reconcile repairs the tear");
        agent
            .verify_config_atomicity()
            .unwrap_or_else(|d| panic!("crash at op {at_op}: tear survived reconcile: {d}"));
        let vv = agent.vv();
        assert!(
            agent.vv_per_pipe().iter().all(|&v| v == vv),
            "crash at op {at_op}: vv not uniform after reconcile"
        );
    }
    // The sweep crosses the inter-pipe commit gap at least once.
    assert!(
        torn_seen >= 1,
        "no crash point ever produced an observable torn apply"
    );
}

/// A restarted process is a *fresh* agent attaching to a live switch: no
/// prologue, just `reconcile`. It must adopt the device's version vector
/// and committed slots, and after re-running the durable init reach the
/// dead agent's exact configuration — then keep the dialogue going.
#[test]
fn fresh_agent_reconciles_onto_live_switch() {
    let tb = build();
    assert!(!drive(&tb, 5));
    let (fp, vv, knob) = {
        let a = tb.agent.borrow();
        (a.entry_fingerprint(), a.vv(), a.slot("knob"))
    };

    // The old process dies; a new one attaches to the same switch.
    let mut fresh = MantisAgent::new(tb.sim.switch().clone(), &tb.compiled, CostModel::default());
    fresh.reconcile().expect("fresh reconcile");
    assert_eq!(fresh.vv(), vv, "device version vector not adopted");
    assert_eq!(fresh.slot("knob"), knob, "committed slot not adopted");

    fresh
        .register_all_interpreted()
        .expect("reactions re-register");
    fresh
        .user_init(|ctx| {
            for i in 0..4u128 {
                ctx.table_add(
                    "acl",
                    vec![LogicalKey::Exact(Value::new(i, 32))],
                    0,
                    "fwd",
                    vec![Value::new(i % 3 + 1, 9)],
                )?;
            }
            Ok(())
        })
        .expect("durable init re-runs");
    assert_eq!(fresh.entry_fingerprint(), fp, "config not re-reached");

    // The dialogue continues from the adopted state.
    inject(&tb, 99);
    fresh.dialogue_iteration().expect("dialogue resumes");
    fresh
        .verify_config_atomicity()
        .expect("atomic after resumed dialogue");
}

/// Repeated crashes — every restart is itself killed a few ops in — must
/// still end in a converged, atomic configuration once the faults stop.
#[test]
fn repeated_crash_restart_cycles_converge() {
    let baseline = build();
    assert!(!drive(&baseline, 8));
    let base_fp = entry_fp(&baseline);

    let tb = build();
    let mut crashes = 0;
    let mut k = 0u64;
    let mut done = 0;
    // Arm a fresh crash a few ops ahead after every restart, five times.
    tb.agent
        .borrow_mut()
        .set_fault_plan(FaultPlan::default().crash_at_op(7));
    while done < 8 {
        k += 1;
        inject(&tb, k);
        let r = tb.agent.borrow_mut().dialogue_iteration();
        match r {
            Ok(_) => done += 1,
            Err(e) if e.is_crash() => {
                crashes += 1;
                tb.agent.borrow_mut().set_fault_plan(FaultPlan::default());
                tb.agent.borrow_mut().reconcile().expect("reconcile");
                install_entries(&tb);
                // Arm the next kill only after recovery finishes: ops are
                // counted (not injected) while faults are suspended, so a
                // window set before `reconcile` would be consumed silently.
                if crashes < 5 {
                    tb.agent
                        .borrow_mut()
                        .set_fault_plan(FaultPlan::default().crash_at_op(5 + crashes));
                }
            }
            Err(e) => panic!("non-crash failure: {e}"),
        }
        assert!(
            k < 200,
            "never converged: {crashes} crashes, {done} iterations"
        );
    }
    assert!(crashes >= 5, "only {crashes} crashes fired");
    assert_recovered(&tb, base_fp, "after repeated crash cycles");
}

/// The failover race: while the primary is partitioned away, the standby
/// is killed *during* its takeover (once on the arbitration channel
/// mid-claim, once on the driver channel mid-adopt — both channels carry
/// the same plan with independent op counters). The standby's next claim
/// must route through `reconcile`, repair whatever the dead takeover left
/// behind, and finish as the sole master of an atomic configuration.
#[test]
fn standby_crash_during_adoption_recovers_and_masters() {
    const LEASE_NS: u64 = 300_000;
    const SEVER_AT_NS: u64 = 400_000;

    let comp = compile_source(PROG, &CompilerOptions::default()).expect("program compiles");
    let spec = mantis::rmt_sim::load(&comp.p4).expect("spec loads");
    let clock = Clock::new();
    let switch = SharedSwitch::new(Switch::new(
        spec,
        SwitchConfig {
            num_pipes: 2,
            ..SwitchConfig::default()
        },
        clock.clone(),
    ));
    let plane = ControlPlane::shared(switch.clone(), CostModel::default());
    let chan = ChannelConfig::with_rtt(1_000);
    let mut primary = Controller::new(ControllerConfig::new(1, LEASE_NS, chan));
    let mut standby = Controller::new(ControllerConfig::new(2, LEASE_NS, chan));
    primary.add_switch(plane.clone(), comp.clone());
    standby.add_switch(plane.clone(), comp);
    let setup = Rc::new(|_i: usize, agent: &mut MantisAgent| agent.register_all_interpreted());
    primary.set_agent_setup(setup.clone());
    standby.set_agent_setup(setup);

    // Primary: severed from SEVER_AT_NS on (unscoped rule — the
    // arbitration channel carries no switch id, so the scoped
    // `sever_control` builder would miss it).
    primary.set_channel_fault_plan(FaultPlan::default().fail_persistent(
        FaultOp::Control,
        FaultWindow::Time {
            lo: SEVER_AT_NS,
            hi: u64::MAX,
        },
    ));
    // Standby: killed at channel op 6 — fires on the arbitration channel
    // during an early denied claim, and again on the driver channel six
    // frames into the post-failover adopt.
    standby.set_channel_fault_plan(FaultPlan::default().crash_at_op(6));

    let mut settled = 0;
    for round in 0..600 {
        if round % 4 == 0 {
            switch.borrow_mut().inject(
                &PacketDesc::new(0)
                    .field("h", "a", 1 + (round as u128 % 7))
                    .field("h", "b", 0)
                    .payload(64),
            );
        }
        // Steps may error while partitioned or crashed; mastership and
        // recovery are asserted below, not per step.
        let _ = primary.step();
        let _ = standby.step();
        if standby.is_master() && standby.recoveries() >= 1 {
            settled = round;
            break;
        }
    }
    assert!(
        standby.is_master(),
        "standby never took over (recoveries={})",
        standby.recoveries()
    );
    assert!(
        standby.recoveries() >= 1,
        "standby mastered without going through reconcile"
    );
    assert!(
        !primary.is_master(),
        "severed primary still claims mastership"
    );
    assert!(settled > 0, "takeover happened before the sever could fire");

    // A few clean rounds, then the adopted device must be atomic.
    for round in 0..8 {
        if round % 4 == 0 {
            switch.borrow_mut().inject(
                &PacketDesc::new(0)
                    .field("h", "a", 1 + (round as u128 % 7))
                    .field("h", "b", 0)
                    .payload(64),
            );
        }
        let _ = standby.step();
    }
    standby.agents_mut()[0]
        .verify_config_atomicity()
        .expect("post-takeover config is atomic");
}
