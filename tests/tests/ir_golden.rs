//! IR golden snapshots: compiling each of the four paper use-case
//! programs must produce a byte-identical typed-IR debug dump. The dump
//! (`P4rIr::dump()`) pins malleable descriptors, table/action shapes, and
//! per-reaction arg/slot resolution — any unintended pipeline change shows
//! up as a diff here before it shows up as a behavioral bug.
//!
//! Regenerate after an intentional IR change with:
//!
//! ```sh
//! UPDATE_IR_GOLDEN=1 cargo test -p integration-tests --test ir_golden
//! ```

use mantis::apps::programs::{DOS_P4R, ECMP_P4R, FAILOVER_P4R, RL_P4R};
use mantis::{compile_source, CompilerOptions};
use std::path::Path;

fn check(app: &str, src: &str) {
    let compiled = compile_source(src, &CompilerOptions::default())
        .unwrap_or_else(|e| panic!("{app}: compile failed: {e}"));
    let dump = compiled.ir.dump();
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/ir_{app}.txt"));
    if std::env::var_os("UPDATE_IR_GOLDEN").is_some() {
        std::fs::write(&path, &dump).expect("write IR golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "{app}: missing IR golden {}; regenerate with \
             UPDATE_IR_GOLDEN=1 cargo test -p integration-tests --test ir_golden",
            path.display()
        )
    });
    assert_eq!(
        dump, want,
        "{app}: IR dump changed; if intentional regenerate with UPDATE_IR_GOLDEN=1"
    );
}

#[test]
fn dos_ir_is_stable() {
    check("dos", DOS_P4R);
}

#[test]
fn failover_ir_is_stable() {
    check("failover", FAILOVER_P4R);
}

#[test]
fn ecmp_ir_is_stable() {
    check("ecmp", ECMP_P4R);
}

#[test]
fn rl_ir_is_stable() {
    check("rl", RL_P4R);
}

/// The dump itself is deterministic (stable ordering everywhere).
#[test]
fn ir_dump_is_deterministic() {
    for src in [DOS_P4R, FAILOVER_P4R, ECMP_P4R, RL_P4R] {
        let a = compile_source(src, &CompilerOptions::default()).unwrap();
        let b = compile_source(src, &CompilerOptions::default()).unwrap();
        assert_eq!(a.ir.dump(), b.ir.dump());
    }
}
