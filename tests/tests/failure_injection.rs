//! Failure-injection and error-path tests: the agent and compiler must
//! reject or surface bad inputs instead of corrupting data-plane state.

use mantis::p4_ast::Value;
use mantis::p4r_compiler::entry::LogicalKey;
use mantis::p4r_compiler::{compile, CompilerOptions};
use mantis::rmt_sim::PacketDesc;
use mantis::{AgentErrorKind, MantisAgent, SharedSwitch, Testbed};

const PROG: &str = r#"
header_type h_t { fields { a : 32; b : 32; } }
header h_t h;
malleable value knob { width : 8; init : 0; }
malleable field pick { width : 32; init : h.a; alts { h.a, h.b } }
action tag(v) { modify_field(h.b, v); }
action nop() { no_op(); }
table probe { actions { nop; } default_action : nop(); }
malleable table small {
    reads { ${pick} : exact; }
    actions { tag; nop; }
    size : 2;
}
reaction r(ing h.a) { ${knob} = h_a; }
control ingress { apply(small); apply(probe); }
"#;

fn build() -> Testbed {
    Testbed::from_p4r(PROG).unwrap()
}

#[test]
fn reaction_runtime_error_surfaces_and_does_not_wedge_the_agent() {
    let src = r#"
header_type h_t { fields { a : 32; } }
header h_t h;
malleable value k { width : 8; init : 0; }
action nop() { no_op(); }
table t { actions { nop; } default_action : nop(); }
reaction bad(ing h.a) { int x = 1 / (h_a - h_a); }
control ingress { apply(t); }
"#;
    let tb = Testbed::from_p4r(src).unwrap();
    tb.agent.borrow_mut().register_all_interpreted().unwrap();
    // Reaction failures are contained: the iteration succeeds and reports
    // the failure instead of aborting the loop.
    let rep = tb.agent.borrow_mut().dialogue_iteration().unwrap();
    assert_eq!(rep.reaction_failures.len(), 1);
    let failure = &rep.reaction_failures[0];
    assert_eq!(failure.name, "bad");
    assert!(
        failure.error.contains("react phase"),
        "failure should name the phase: {}",
        failure.error
    );
    // The agent is still usable: swap in a fixed reaction and continue.
    tb.agent
        .borrow_mut()
        .swap_reaction(
            "bad",
            Box::new(|ctx: &mut mantis::ReactionCtx<'_>| ctx.set_mbl("k", 7)),
            true,
        )
        .unwrap();
    tb.agent.borrow_mut().dialogue_iteration().unwrap();
    assert_eq!(tb.agent.borrow().slot("k"), Some(7));
}

#[test]
fn table_capacity_exhaustion_reports_driver_error() {
    // `small` holds 2 logical entries → 2 (vv) × 2 (alts) = 4 phys each,
    // physical capacity 2 × 2 × 2 = 8. The third logical entry must fail
    // cleanly.
    let tb = build();
    for i in 0..2 {
        tb.agent
            .borrow_mut()
            .user_init(move |ctx| {
                ctx.table_add(
                    "small",
                    vec![LogicalKey::Exact(Value::new(i, 32))],
                    0,
                    "tag",
                    vec![Value::new(1, 32)],
                )?;
                Ok(())
            })
            .unwrap();
    }
    let err = tb
        .agent
        .borrow_mut()
        .user_init(|ctx| {
            ctx.table_add(
                "small",
                vec![LogicalKey::Exact(Value::new(99, 32))],
                0,
                "tag",
                vec![Value::new(1, 32)],
            )?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err.kind, AgentErrorKind::Driver(_)), "{err}");
    assert!(!err.is_transient(), "capacity exhaustion is permanent");
}

#[test]
fn invalid_alt_index_rejected_before_staging() {
    let tb = build();
    let err = tb
        .agent
        .borrow_mut()
        .user_init(|ctx| {
            ctx.shift_field("pick", 5)?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err.kind, AgentErrorKind::Ctx(_)), "{err}");
    // Committed state unchanged.
    assert_eq!(tb.agent.borrow().slot("pick"), Some(0));
}

#[test]
fn unknown_names_rejected() {
    let tb = build();
    let mut agent = tb.agent.borrow_mut();
    assert!(agent
        .user_init(|ctx| {
            ctx.set_mbl("ghost", 1)?;
            Ok(())
        })
        .is_err());
    assert!(agent
        .user_init(|ctx| {
            ctx.table_add("ghost", vec![], 0, "tag", vec![])?;
            Ok(())
        })
        .is_err());
    assert!(agent
        .user_init(|ctx| {
            ctx.table_add(
                "small",
                vec![LogicalKey::Exact(Value::new(1, 32))],
                0,
                "ghost_action",
                vec![],
            )?;
            Ok(())
        })
        .is_err());
    assert!(agent
        .user_init(|ctx| {
            ctx.table_del("small", 424242)?;
            Ok(())
        })
        .is_err());
}

#[test]
fn malleable_value_write_is_masked_to_width() {
    // `knob` is 8 bits wide; a reaction writing 0x1ff must commit 0xff.
    let tb = build();
    tb.agent
        .borrow_mut()
        .user_init(|ctx| {
            ctx.set_mbl("knob", 0x1ff)?;
            Ok(())
        })
        .unwrap();
    assert_eq!(tb.agent.borrow().slot("knob"), Some(0xff));
}

#[test]
fn split_init_tables_commit_slot_writes_end_to_end() {
    // Force the init configuration across several init tables by shrinking
    // the per-action parameter budget; slot writes must still be atomic
    // and visible to the data plane.
    let mut src = String::from("header_type h_t { fields { a : 32; out : 32; } }\nheader h_t h;\n");
    for i in 0..8 {
        src.push_str(&format!(
            "malleable value k{i} {{ width : 32; init : {i}; }}\n"
        ));
    }
    src.push_str(
        r#"
action mix() {
    modify_field(h.out, ${k0});
    add_to_field(h.out, ${k5});
    add_to_field(h.out, ${k7});
}
table t { actions { mix; } default_action : mix(); }
control ingress { apply(t); }
"#,
    );
    let prog = mantis::p4r_lang::parse_program(&src).unwrap();
    let compiled = compile(
        &prog,
        &CompilerOptions {
            max_init_action_bits: 72, // fits two 32-bit slots per table
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        compiled.iface.init_tables.len() >= 3,
        "expected split init tables, got {}",
        compiled.iface.init_tables.len()
    );

    let clock = mantis::Clock::new();
    let spec = mantis::rmt_sim::load(&compiled.p4).unwrap();
    let switch = SharedSwitch::new(mantis::Switch::new(
        spec,
        mantis::SwitchConfig::default(),
        clock,
    ));
    let mut agent = MantisAgent::new(switch.clone(), &compiled, mantis::CostModel::default());
    agent.prologue().unwrap();

    let probe = |switch: &SharedSwitch| {
        let mut sw = switch.borrow_mut();
        let phv = PacketDesc::new(0).field("h", "a", 1).build(sw.spec());
        let out = sw.run_pipeline(phv, mantis::p4_ast::Pipeline::Ingress);
        out.get(sw.spec().field_id("h", "out").unwrap()).as_u64()
    };
    // Initial: k0 + k5 + k7 = 0 + 5 + 7.
    assert_eq!(probe(&switch), 12);

    // Rewrite slots that live in different init tables, in one commit.
    agent
        .user_init(|ctx| {
            ctx.set_mbl("k0", 100)?;
            ctx.set_mbl("k5", 20)?;
            ctx.set_mbl("k7", 3)?;
            Ok(())
        })
        .unwrap();
    assert_eq!(probe(&switch), 123);

    // And again, to exercise the shadow/mirror path of the extra init
    // tables on the other vv copy.
    agent
        .user_init(|ctx| {
            ctx.set_mbl("k5", 50)?;
            Ok(())
        })
        .unwrap();
    assert_eq!(probe(&switch), 153);
    agent
        .user_init(|ctx| {
            ctx.set_mbl("k7", 0)?;
            Ok(())
        })
        .unwrap();
    assert_eq!(probe(&switch), 150);
}

#[test]
fn queue_overflow_and_port_down_are_counted_not_fatal() {
    let tb = Testbed::with_config(
        PROG,
        mantis::SwitchConfig {
            queue_capacity_bytes: 64,
            ..Default::default()
        },
        mantis::CostModel::default(),
    )
    .unwrap();
    let sw = tb.sim.switch();
    // Overflow the default queue.
    for _ in 0..4 {
        sw.borrow_mut()
            .inject(&PacketDesc::new(0).field("h", "a", 1).payload(50));
    }
    assert!(sw.borrow().stats.dropped_queue > 0);
    // Down a port and hit it.
    sw.borrow_mut().port_set_up(3, false).unwrap();
    sw.borrow_mut()
        .inject(&PacketDesc::new(3).field("h", "a", 1).payload(10));
    assert_eq!(sw.borrow().stats.dropped_port_down, 1);
    // Out-of-range port rejected.
    assert!(sw.borrow_mut().port_set_up(1000, false).is_err());
}

#[test]
fn step_limit_guards_runaway_interpreted_reactions() {
    let src = r#"
header_type h_t { fields { a : 32; } }
header h_t h;
malleable value k { width : 8; init : 0; }
action nop() { no_op(); }
table t { actions { nop; } default_action : nop(); }
reaction spin(ing h.a) { while (1) { ${k} = 1; } }
control ingress { apply(t); }
"#;
    let tb = Testbed::from_p4r(src).unwrap();
    tb.agent.borrow_mut().register_all_interpreted().unwrap();
    let rep = tb.agent.borrow_mut().dialogue_iteration().unwrap();
    assert_eq!(rep.reaction_failures.len(), 1, "runaway reaction contained");
    // Staged effects of the failed reaction are NOT committed.
    assert_eq!(tb.agent.borrow().slot("k"), Some(0));
}

#[test]
fn failed_reaction_stages_nothing_for_later_commits() {
    // The reaction writes k BEFORE dividing by zero; that partial write
    // must not leak into a later successful commit.
    let src = r#"
header_type h_t { fields { a : 32; } }
header h_t h;
malleable value k { width : 8; init : 0; }
malleable value other { width : 8; init : 0; }
action nop() { no_op(); }
table t { actions { nop; } default_action : nop(); }
reaction bad(ing h.a) {
    ${k} = 99;
    int x = 1 / (h_a - h_a);
}
control ingress { apply(t); }
"#;
    let tb = Testbed::from_p4r(src).unwrap();
    tb.agent.borrow_mut().register_all_interpreted().unwrap();
    let rep = tb.agent.borrow_mut().dialogue_iteration().unwrap();
    assert_eq!(rep.reaction_failures.len(), 1);
    // A later, unrelated commit must not carry the orphaned ${k} = 99.
    tb.agent
        .borrow_mut()
        .user_init(|ctx| {
            ctx.set_mbl("other", 1)?;
            Ok(())
        })
        .unwrap();
    assert_eq!(tb.agent.borrow().slot("k"), Some(0));
    assert_eq!(tb.agent.borrow().slot("other"), Some(1));
}

#[test]
fn failed_user_init_discards_partial_staging() {
    let tb = build();
    let err = tb
        .agent
        .borrow_mut()
        .user_init(|ctx| {
            ctx.set_mbl("knob", 55)?; // staged...
            ctx.set_mbl("ghost", 1)?; // ...then fails
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err.kind, AgentErrorKind::Ctx(_)));
    tb.agent
        .borrow_mut()
        .user_init(|ctx| {
            ctx.shift_field("pick", 1)?;
            Ok(())
        })
        .unwrap();
    // The 55 from the failed init never committed.
    assert_eq!(tb.agent.borrow().slot("knob"), Some(0));
}
