//! Chaos corpus replay: every checked-in plan under `tests/chaos_corpus/`
//! is a regression fixture — a fault schedule the engine must survive
//! with zero invariant violations. New shrunk repros land here when a
//! soak finds a failure; once the bug is fixed the repro stays as a
//! guard. Also covers the corpus text format round-trip and the
//! shrinker's ≤8-event repro guarantee.

use bench::chaos::{replay, shrink, ChaosEvent, ChaosPlan};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("chaos_corpus")
}

fn corpus_plans() -> Vec<(String, ChaosPlan)> {
    let mut plans: Vec<(String, ChaosPlan)> = std::fs::read_dir(corpus_dir())
        .expect("tests/chaos_corpus exists")
        .filter_map(|e| {
            let path = e.expect("corpus dir entry").path();
            if path.extension().is_some_and(|x| x == "chaos") {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                let text = std::fs::read_to_string(&path).expect("corpus file reads");
                let plan = ChaosPlan::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
                Some((name, plan))
            } else {
                None
            }
        })
        .collect();
    plans.sort_by(|a, b| a.0.cmp(&b.0));
    plans
}

/// Every corpus plan replays with zero invariant violations.
#[test]
fn corpus_replays_clean() {
    let plans = corpus_plans();
    assert!(!plans.is_empty(), "corpus is empty — fixtures missing");
    for (name, plan) in &plans {
        assert!(!plan.events.is_empty(), "{name}: plan has no events");
        let violations = replay(plan);
        assert!(
            violations.is_empty(),
            "{name}: replay violated invariants: {violations:?}"
        );
    }
}

/// The corpus text format round-trips through parse → to_text → parse.
#[test]
fn corpus_format_round_trips() {
    for (name, plan) in corpus_plans() {
        let reparsed = ChaosPlan::parse(&plan.to_text())
            .unwrap_or_else(|e| panic!("{name}: re-parse failed: {e}"));
        assert_eq!(reparsed, plan, "{name}: round-trip changed the plan");
    }
    // Every event kind survives, not just the ones the corpus uses today.
    let all = ChaosPlan {
        seed: 7,
        events: vec![
            ChaosEvent::Crash {
                switch: 1,
                at_op: 9,
            },
            ChaosEvent::Flap {
                switch: 2,
                port: 4,
                down_ns: 100,
                up_ns: 900,
            },
            ChaosEvent::Delay {
                switch: 0,
                from_ns: 10,
                to_ns: 20,
                factor_milli: 4000,
            },
            ChaosEvent::Drop {
                from_op: 3,
                count: 2,
            },
            ChaosEvent::ChDelay {
                from_ns: 5,
                to_ns: 50,
                factor_milli: 2500,
            },
            ChaosEvent::Sever { at_ns: 123_456 },
            ChaosEvent::CtlCrash { at_op: 17 },
        ],
    };
    assert_eq!(ChaosPlan::parse(&all.to_text()).unwrap(), all);
}

/// Shrinking a bloated failing schedule is deterministic and lands on a
/// repro of at most 8 events — the ceiling a corpus fixture must fit.
#[test]
fn shrinker_minimizes_to_small_deterministic_repro() {
    // 12-event schedule where only `crash switch=0` matters; the
    // predicate stands in for a replay that reproduces the violation.
    let mut events = Vec::new();
    for i in 0..11u64 {
        events.push(ChaosEvent::Flap {
            switch: (i % 4) as u32,
            port: 4,
            down_ns: 1_000 * i,
            up_ns: 1_000 * i + 500,
        });
    }
    events.insert(
        5,
        ChaosEvent::Crash {
            switch: 0,
            at_op: 64,
        },
    );
    let plan = ChaosPlan { seed: 99, events };
    let fails = |p: &ChaosPlan| {
        p.events
            .iter()
            .any(|e| matches!(e, ChaosEvent::Crash { switch: 0, .. }))
    };

    let min = shrink(&plan, fails);
    let again = shrink(&plan, fails);
    assert_eq!(min, again, "shrink is not deterministic");
    assert!(fails(&min), "shrunk plan no longer reproduces");
    assert!(
        min.events.len() <= 8,
        "repro too large: {} events",
        min.events.len()
    );
    // For this predicate the minimum is exactly the one crash, with its
    // parameter halved as far as the predicate allows.
    assert_eq!(min.events.len(), 1);
    assert!(matches!(min.events[0], ChaosEvent::Crash { switch: 0, .. }));
}
