//! Telemetry determinism: every timestamp in the tracer comes off the shared
//! virtual clock, so two identical runs must produce **byte-identical**
//! Chrome-trace and snapshot exports. This is the property that makes traces
//! diffable across commits and usable as regression artifacts.
//!
//! A golden copy of the trace is checked in under `tests/tests/golden/`.
//! If an intentional change alters the trace shape, regenerate it with:
//!
//! ```text
//! UPDATE_TELEMETRY_GOLDEN=1 cargo test -p integration-tests --test telemetry_determinism
//! ```

use std::path::Path;

/// Smaller than the `figures` run so the golden file stays reviewable, but
/// large enough to exercise measure/react/update/sync spans and driver ops.
fn profile_run() -> (String, String) {
    let (trace, snapshot, _profile) = bench::telemetry_profile(20, 20_000);
    (trace, snapshot)
}

#[test]
fn identical_runs_export_byte_identical_artifacts() {
    let (trace_a, snap_a) = profile_run();
    let (trace_b, snap_b) = profile_run();
    assert_eq!(
        trace_a, trace_b,
        "Chrome trace must be byte-identical across identical runs"
    );
    assert_eq!(
        snap_a, snap_b,
        "metrics snapshot must be byte-identical across identical runs"
    );
}

#[test]
fn chrome_trace_matches_golden_file() {
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/telemetry_trace.json");
    let (trace, _snap) = profile_run();

    if std::env::var_os("UPDATE_TELEMETRY_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &trace).unwrap();
        eprintln!("regenerated {}", golden_path.display());
        return;
    }

    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             UPDATE_TELEMETRY_GOLDEN=1 cargo test -p integration-tests \
             --test telemetry_determinism",
            golden_path.display()
        )
    });
    assert_eq!(
        trace, golden,
        "Chrome trace diverged from golden file; if intentional, regenerate \
         with UPDATE_TELEMETRY_GOLDEN=1"
    );
}

#[test]
fn trace_contains_all_dialogue_phases() {
    let (trace, snap) = profile_run();
    for phase in ["measure", "react", "update", "sync", "iteration"] {
        assert!(
            trace.contains(&format!("\"name\":\"{phase}\"")),
            "trace missing {phase} spans"
        );
    }
    // Snapshot must carry per-driver-op histograms with quantiles.
    let parsed: serde_json::Value = serde_json::from_str(&snap).unwrap();
    let top = parsed.as_map().expect("snapshot is a JSON object");
    let hists = top
        .iter()
        .find(|(k, _)| k == "histograms")
        .and_then(|(_, v)| v.as_map())
        .expect("snapshot has histograms");
    assert!(
        hists.iter().any(|(k, _)| k.starts_with("driver.")),
        "snapshot missing driver.* histograms"
    );
}

// ── faulted runs ──────────────────────────────────────────────────────────
//
// Fault injection is itself clocked off the virtual clock and op counter,
// so a *faulted* run must be exactly as deterministic as a clean one: same
// plan, same seed, same byte-identical artifacts.

fn faulted_run() -> (String, String) {
    bench::faults::faulted_profile(20, 20_000)
}

#[test]
fn identical_faulted_runs_export_byte_identical_artifacts() {
    let (trace_a, snap_a) = faulted_run();
    let (trace_b, snap_b) = faulted_run();
    assert_eq!(
        trace_a, trace_b,
        "faulted Chrome trace must be byte-identical across identical runs"
    );
    assert_eq!(
        snap_a, snap_b,
        "faulted metrics snapshot must be byte-identical across identical runs"
    );
}

#[test]
fn faulted_trace_matches_golden_file() {
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/telemetry_trace_faulted.json");
    let (trace, snap) = faulted_run();
    // The faulted run must actually record fault activity, otherwise the
    // golden proves nothing.
    for key in ["fault.injected", "agent.retries", "agent.retry_backoff_ns"] {
        assert!(snap.contains(key), "faulted snapshot missing {key}");
    }

    if std::env::var_os("UPDATE_TELEMETRY_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &trace).unwrap();
        eprintln!("regenerated {}", golden_path.display());
        return;
    }

    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             UPDATE_TELEMETRY_GOLDEN=1 cargo test -p integration-tests \
             --test telemetry_determinism",
            golden_path.display()
        )
    });
    assert_eq!(
        trace, golden,
        "faulted Chrome trace diverged from golden file; if intentional, \
         regenerate with UPDATE_TELEMETRY_GOLDEN=1"
    );
}
