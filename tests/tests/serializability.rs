//! Property tests for the §5 isolation guarantees: from the perspective of
//! the packet stream, every update to malleable entities is atomic — each
//! packet sees either the entire old configuration or the entire new one,
//! and once the new configuration is observed, the old one never reappears
//! (serializable isolation of updates and packet processing).

use mantis::p4_ast::{Pipeline, Value};
use mantis::p4r_compiler::entry::{expand_entry, LogicalKey, PhysEntry, PhysKey};
use mantis::p4r_compiler::{compile_source, CompilerOptions};
use mantis::rmt_sim::{KeyField, PacketDesc, Switch, SwitchConfig, TableId};
use mantis::{Clock, Testbed};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// A program with a malleable value, a malleable field, and a malleable
/// table — the update's effect on a probe packet is a single output field,
/// making "which configuration did this packet see" directly observable.
const PROG: &str = r#"
header_type h_t { fields { a : 32; b : 32; out : 32; } }
header h_t h;
malleable value scale { width : 32; init : 1; }
malleable field pick { width : 32; init : h.a; alts { h.a, h.b } }
action classify(tag) {
    modify_field(h.out, tag);
    add_to_field(h.out, ${scale});
}
action fallback() { modify_field(h.out, 0); }
malleable table cls {
    reads { ${pick} : exact; }
    actions { classify; fallback; }
    default_action : fallback();
    size : 64;
}
control ingress { apply(cls); }
"#;

fn probe(tb: &Testbed, a: u128, b: u128) -> u64 {
    let mut sw = tb.sim.switch().borrow_mut();
    let phv = PacketDesc::new(0)
        .field("h", "a", a)
        .field("h", "b", b)
        .build(sw.spec());
    let out = sw.run_pipeline(phv, Pipeline::Ingress);
    out.get(sw.spec().field_id("h", "out").unwrap()).as_u64()
}

#[test]
fn update_is_atomic_for_concurrent_probes() {
    // Old config: entry {pick=5} → classify(100), scale=1 → out=101.
    // New config (one serializable commit): scale=7, entry retargeted to
    // tag 200, reference shifted to h.b → out is 207 for b=5 packets.
    let tb = Testbed::from_p4r(PROG).unwrap();
    let handle = Rc::new(RefCell::new(0u64));
    let h2 = handle.clone();
    tb.agent
        .borrow_mut()
        .user_init(move |ctx| {
            *h2.borrow_mut() = ctx.table_add(
                "cls",
                vec![LogicalKey::Exact(Value::new(5, 32))],
                0,
                "classify",
                vec![Value::new(100, 32)],
            )?;
            Ok(())
        })
        .unwrap();
    assert_eq!(probe(&tb, 5, 9), 101); // matched via h.a
    assert_eq!(probe(&tb, 9, 5), 0); // h.b not referenced yet

    let h = *handle.borrow();
    tb.agent
        .borrow_mut()
        .user_init(move |ctx| {
            ctx.set_mbl("scale", 7)?;
            ctx.shift_field("pick", 1)?;
            ctx.table_mod("cls", h, "classify", vec![Value::new(200, 32)])?;
            Ok(())
        })
        .unwrap();
    // Entirely new world: matching now keys on h.b with the new tag+scale.
    assert_eq!(probe(&tb, 9, 5), 207);
    assert_eq!(probe(&tb, 5, 9), 0);
}

// -- cross-pipe isolation (DESIGN.md §9) ------------------------------------

/// A version-observable program without malleable fields: one exact-match
/// malleable table plus a scalar, so "which world did this packet see" is
/// a single output value.
const PIPE_PROG: &str = r#"
header_type h_t { fields { k : 32; out : 32; } }
header h_t h;
malleable value scale { width : 32; init : 1; }
action classify(tag) {
    modify_field(h.out, tag);
    add_to_field(h.out, ${scale});
}
action fallback() { modify_field(h.out, 0); }
malleable table cls {
    reads { h.k : exact; }
    actions { classify; fallback; }
    default_action : fallback();
    size : 64;
}
control ingress { apply(cls); }
"#;

const NUM_PIPES: u16 = 4;
const OLD_WORLD: u64 = 101; // tag 100 + scale 1
const NEW_WORLD: u64 = 207; // tag 200 + scale 7

/// Switch-level multi-pipe harness: drives prepare (fan-out) and per-pipe
/// commits as individual driver ops, the way the agent's commit loop
/// issues them, so probes can land between any two per-pipe flips.
struct PipeHarness {
    sw: Switch,
    cls: TableId,
    info: mantis::p4r_compiler::iface::TableInfo,
    master: TableId,
    master_action: mantis::rmt_sim::ActionId,
    shadow_handles: Vec<mantis::rmt_sim::EntryHandle>,
}

impl PipeHarness {
    fn new() -> Self {
        let compiled = compile_source(PIPE_PROG, &CompilerOptions::default()).unwrap();
        let spec = mantis::rmt_sim::load(&compiled.p4).unwrap();
        let sw = Switch::new(
            spec,
            SwitchConfig {
                num_pipes: NUM_PIPES,
                ..Default::default()
            },
            Clock::new(),
        );
        let cls = sw.table_id("cls").unwrap();
        let master = sw.table_id("p4r_init_").unwrap();
        let master_action = sw.action_id("p4r_init_action_").unwrap();
        let info = compiled.iface.table("cls").unwrap().clone();
        let mut h = PipeHarness {
            sw,
            cls,
            info,
            master,
            master_action,
            shadow_handles: Vec::new(),
        };
        // Initial config in every pipe: vv=1, mv=0, scale=1; the logical
        // entry {k=5 → classify(100)} in both copies (adds fan out).
        h.set_master_all(1, 1);
        h.add_copy(1, 100);
        h.shadow_handles = h.add_copy(0, 100);
        h
    }

    fn expand(&self, vv: u8, tag: u64) -> Vec<PhysEntry> {
        expand_entry(
            &self.info,
            &[LogicalKey::Exact(Value::new(5, 32))],
            "classify",
            &[Value::new(u128::from(tag), 32)],
            0,
            Some(vv),
        )
        .unwrap()
    }

    fn add_copy(&mut self, vv: u8, tag: u64) -> Vec<mantis::rmt_sim::EntryHandle> {
        self.expand(vv, tag)
            .iter()
            .map(|pe| {
                let key = to_keyfields(&self.sw, self.cls, pe);
                let aid = self.sw.action_id(&pe.action).unwrap();
                self.sw
                    .table_add(self.cls, key, pe.priority, aid, pe.action_data.clone())
                    .unwrap()
            })
            .collect()
    }

    /// Prepare: rewrite the shadow (vv=0) copy to the new tag. Table
    /// writes fan out to every pipe, invisible until that pipe's flip.
    fn prepare(&mut self, tag: u64) {
        let entries = self.expand(0, tag);
        for (h, pe) in self.shadow_handles.clone().iter().zip(entries.iter()) {
            let aid = self.sw.action_id(&pe.action).unwrap();
            self.sw
                .table_mod(self.cls, *h, aid, pe.action_data.clone())
                .unwrap();
        }
    }

    fn master_data(vv: u8, scale: u64) -> Vec<Value> {
        vec![
            Value::new(u128::from(vv), 1),
            Value::zero(1),
            Value::new(u128::from(scale), 32),
        ]
    }

    fn set_master_all(&mut self, vv: u8, scale: u64) {
        self.sw
            .table_set_default(
                self.master,
                self.master_action,
                Self::master_data(vv, scale),
            )
            .unwrap();
    }

    /// One per-pipe commit: the atomic default-action flip in pipe `p`.
    fn commit_pipe(&mut self, p: u16, vv: u8, scale: u64) {
        self.sw
            .table_set_default_on(
                p,
                self.master,
                self.master_action,
                Self::master_data(vv, scale),
            )
            .unwrap();
    }

    /// Run a full probe packet through pipe `p` (ingress on that pipe's
    /// first port) and return its observed world.
    fn probe_pipe(&mut self, p: u16) -> u64 {
        let port = p * self.ports_per_pipe();
        let phv = PacketDesc::new(port)
            .field("h", "k", 5)
            .build(self.sw.spec());
        let out = self.sw.run_pipeline(phv, Pipeline::Ingress);
        out.get(self.sw.spec().field_id("h", "out").unwrap())
            .as_u64()
    }

    fn ports_per_pipe(&self) -> u16 {
        self.sw.config().num_ports.div_ceil(NUM_PIPES)
    }
}

fn to_keyfields(sw: &Switch, table: TableId, pe: &PhysEntry) -> Vec<KeyField> {
    sw.spec()
        .table(table)
        .key
        .iter()
        .zip(pe.key.iter())
        .map(|(ks, pk)| match pk {
            PhysKey::Exact(v) => KeyField::Exact(*v),
            PhysKey::Ternary { value, mask } => KeyField::Ternary {
                value: *value,
                mask: *mask,
            },
            PhysKey::Lpm { value, prefix_len } => KeyField::Lpm {
                value: *value,
                prefix_len: *prefix_len,
            },
            PhysKey::Any => KeyField::Ternary {
                value: Value::zero(ks.width),
                mask: Value::zero(ks.width),
            },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cross-pipe update window: the commit flips pipes one at a time (in
    /// a seed-chosen order), and probe packets interleave across all
    /// pipes between every pair of flips. Each probe must observe the
    /// entirely-old or entirely-new configuration — decided solely by
    /// whether its *own* pipe has flipped — and within each pipe the
    /// observation sequence is monotonic (old never reappears after new).
    #[test]
    fn cross_pipe_probes_see_old_xor_new_per_pipe(
        perm in 0usize..24,
        schedule in proptest::collection::vec((0u16..NUM_PIPES, 0usize..=NUM_PIPES as usize), 8..20),
    ) {
        // Decode `perm` into one of the 4! commit orders (Lehmer code).
        let mut avail: Vec<u16> = (0..NUM_PIPES).collect();
        let mut order = Vec::with_capacity(avail.len());
        let mut code = perm;
        for radix in (1..=avail.len()).rev() {
            order.push(avail.remove(code % radix));
            code /= radix;
        }
        let mut h = PipeHarness::new();
        // Prepare the shadow copy everywhere: must be invisible in every
        // pipe until that pipe's own flip.
        h.prepare(200);
        for p in 0..NUM_PIPES {
            prop_assert_eq!(h.probe_pipe(p), OLD_WORLD, "prepare leaked into pipe {}", p);
        }

        let mut last_seen: Vec<Option<u64>> = vec![None; NUM_PIPES as usize];
        // `step` counts how many per-pipe commits have landed.
        for step in 0..=NUM_PIPES as usize {
            let flipped: &[u16] = &order[..step];
            for (probe_pipe, _) in schedule.iter().filter(|(_, at)| *at == step) {
                let got = h.probe_pipe(*probe_pipe);
                let expect = if flipped.contains(probe_pipe) { NEW_WORLD } else { OLD_WORLD };
                prop_assert_eq!(
                    got, expect,
                    "pipe {} after {} commits (order {:?})", probe_pipe, step, order
                );
                prop_assert!(
                    got == OLD_WORLD || got == NEW_WORLD,
                    "blended observation {} in pipe {}", got, probe_pipe
                );
                // Per-pipe monotonicity.
                if let Some(prev) = last_seen[*probe_pipe as usize] {
                    prop_assert!(
                        !(prev == NEW_WORLD && got == OLD_WORLD),
                        "old world reappeared in pipe {}", probe_pipe
                    );
                }
                last_seen[*probe_pipe as usize] = Some(got);
            }
            if step < NUM_PIPES as usize {
                h.commit_pipe(order[step], 0, 7);
            }
        }
        // All pipes flipped: every pipe serves the new world.
        for p in 0..NUM_PIPES {
            prop_assert_eq!(h.probe_pipe(p), NEW_WORLD, "pipe {} after full commit", p);
        }
    }

    /// The same contract through the agent path at num_pipes = 4: a
    /// user_init commit is one serializable transition for every pipe —
    /// probes on all pipes see the complete old world before and the
    /// complete new world after, with identical values across pipes.
    #[test]
    fn agent_commit_is_serializable_across_pipes(
        new_scale in 2u32..1000,
        new_tag in 2u32..1000,
    ) {
        let tb = Testbed::from_p4r_with_pipes(PIPE_PROG, NUM_PIPES).unwrap();
        let handle = Rc::new(RefCell::new(0u64));
        let h2 = handle.clone();
        tb.agent
            .borrow_mut()
            .user_init(move |ctx| {
                *h2.borrow_mut() = ctx.table_add(
                    "cls",
                    vec![LogicalKey::Exact(Value::new(5, 32))],
                    0,
                    "classify",
                    vec![Value::new(100, 32)],
                )?;
                Ok(())
            })
            .unwrap();
        let probe_on = |pipe: u16| {
            let mut sw = tb.sim.switch().borrow_mut();
            let port = pipe * sw.config().num_ports.div_ceil(NUM_PIPES);
            let phv = PacketDesc::new(port).field("h", "k", 5).build(sw.spec());
            let out = sw.run_pipeline(phv, Pipeline::Ingress);
            out.get(sw.spec().field_id("h", "out").unwrap()).as_u64()
        };
        for p in 0..NUM_PIPES {
            prop_assert_eq!(probe_on(p), OLD_WORLD, "pipe {} before", p);
        }
        let h = *handle.borrow();
        tb.agent
            .borrow_mut()
            .user_init(move |ctx| {
                ctx.set_mbl("scale", i128::from(new_scale))?;
                ctx.table_mod("cls", h, "classify", vec![Value::new(u128::from(new_tag), 32)])?;
                Ok(())
            })
            .unwrap();
        let expect = u64::from(new_scale) + u64::from(new_tag);
        for p in 0..NUM_PIPES {
            prop_assert_eq!(probe_on(p), expect, "pipe {} after", p);
        }
        // The per-pipe version vector converged.
        let agent = tb.agent.borrow();
        let vvs = agent.vv_per_pipe();
        prop_assert_eq!(vvs.len(), usize::from(NUM_PIPES));
        prop_assert!(vvs.iter().all(|v| *v == vvs[0]), "vv diverged: {:?}", vvs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized sequences of staged updates: after every commit, probes
    /// must observe a consistent world — either everything before the
    /// commit or everything after, never a blend. We verify by checking
    /// the probe output equals the prediction computed from the logical
    /// model.
    #[test]
    fn committed_state_always_matches_logical_model(
        ops in proptest::collection::vec((0u8..4, 0u32..8, 1u32..1000), 1..12)
    ) {
        let tb = Testbed::from_p4r(PROG).unwrap();
        // Logical model state.
        let mut scale: u64 = 1;
        let mut pick_b = false;
        let mut entries: Vec<(u32, u64, u64)> = Vec::new(); // (key, tag, handle)

        for (kind, key, val) in ops {
            match kind {
                0 => {
                    // set scale
                    tb.agent.borrow_mut().user_init(move |ctx| {
                        ctx.set_mbl("scale", i128::from(val))
                    }).unwrap();
                    scale = u64::from(val);
                }
                1 => {
                    // shift reference
                    let idx = (val % 2) as usize;
                    tb.agent.borrow_mut().user_init(move |ctx| {
                        ctx.shift_field("pick", idx)
                    }).unwrap();
                    pick_b = idx == 1;
                }
                2 => {
                    // add (or re-tag) entry for `key`
                    if let Some(e) = entries.iter_mut().find(|(k, _, _)| *k == key) {
                        let h = e.2;
                        tb.agent.borrow_mut().user_init(move |ctx| {
                            ctx.table_mod("cls", h, "classify",
                                vec![Value::new(u128::from(val), 32)])
                        }).unwrap();
                        e.1 = u64::from(val);
                    } else {
                        let hcell = Rc::new(RefCell::new(0u64));
                        let h2 = hcell.clone();
                        tb.agent.borrow_mut().user_init(move |ctx| {
                            *h2.borrow_mut() = ctx.table_add(
                                "cls",
                                vec![LogicalKey::Exact(Value::new(u128::from(key), 32))],
                                0,
                                "classify",
                                vec![Value::new(u128::from(val), 32)],
                            )?;
                            Ok(())
                        }).unwrap();
                        entries.push((key, u64::from(val), *hcell.borrow()));
                    }
                }
                _ => {
                    // delete entry for `key` if present
                    if let Some(pos) = entries.iter().position(|(k, _, _)| *k == key) {
                        let h = entries.remove(pos).2;
                        tb.agent.borrow_mut().user_init(move |ctx| {
                            ctx.table_del("cls", h)
                        }).unwrap();
                    }
                }
            }

            // Probe every key with the malleable reference on both sides.
            for k in 0..8u32 {
                // Packet whose h.a = k, h.b = k+100 (so only one side can
                // match entries keyed 0..8).
                let got = probe(&tb, u128::from(k), u128::from(k) + 100);
                let expect = if pick_b {
                    0 // reference points at h.b = k+100, never a stored key
                } else {
                    entries
                        .iter()
                        .find(|(ek, _, _)| *ek == k)
                        .map(|(_, tag, _)| tag + scale)
                        .unwrap_or(0)
                };
                prop_assert_eq!(got, expect, "key {} after op", k);

                // And the mirrored packet (h.b = k).
                let got_b = probe(&tb, u128::from(k) + 100, u128::from(k));
                let expect_b = if pick_b {
                    entries
                        .iter()
                        .find(|(ek, _, _)| *ek == k)
                        .map(|(_, tag, _)| tag + scale)
                        .unwrap_or(0)
                } else {
                    0
                };
                prop_assert_eq!(got_b, expect_b, "mirror key {} after op", k);
            }

            // Invariant: both vv copies hold the same logical content —
            // physical entry count is 2 copies × 2 alts × logical entries.
            let sw = tb.sim.switch().borrow();
            let t = sw.table_id("cls").unwrap();
            prop_assert_eq!(sw.table_len(t), entries.len() * 4);
        }
    }

    /// Monotonicity: interleave probe packets between every phase of a
    /// manually-driven update. Once a probe observes the new value, no
    /// later probe observes the old one, and every observation is one of
    /// the two (never a mix).
    #[test]
    fn probes_between_commit_phases_see_old_xor_new(
        new_scale in 2u32..1000,
        new_tag in 2u32..1000,
    ) {
        let tb = Testbed::from_p4r(PROG).unwrap();
        tb.agent.borrow_mut().user_init(|ctx| {
            ctx.table_add(
                "cls",
                vec![LogicalKey::Exact(Value::new(5, 32))],
                0,
                "classify",
                vec![Value::new(1, 32)],
            )?;
            Ok(())
        }).unwrap();
        let old = probe(&tb, 5, 0);
        prop_assert_eq!(old, 2); // tag 1 + scale 1

        // Run the update while probing after each dialogue step: the
        // user_init path performs prepare→commit→mirror internally; probes
        // before it must see old, after it new. (Step-level interleaving of
        // the data plane is exercised in rmt-sim's staged-execution tests;
        // here we verify the observable contract end to end.)
        let handle = 1u64; // first logical handle in `cls`
        let mut observations = vec![old];
        tb.agent.borrow_mut().user_init(move |ctx| {
            ctx.set_mbl("scale", i128::from(new_scale))?;
            ctx.table_mod("cls", handle, "classify",
                vec![Value::new(u128::from(new_tag), 32)])?;
            Ok(())
        }).unwrap();
        observations.push(probe(&tb, 5, 0));

        let old_world = 2u64;
        let new_world = u64::from(new_scale) + u64::from(new_tag);
        let mut seen_new = false;
        for obs in observations {
            prop_assert!(
                obs == old_world || obs == new_world,
                "blended observation {} (old {}, new {})",
                obs, old_world, new_world
            );
            if obs == new_world {
                seen_new = true;
            } else {
                prop_assert!(!seen_new, "old world reappeared after new");
            }
        }
        prop_assert!(seen_new);
    }
}
