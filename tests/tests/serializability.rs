//! Property tests for the §5 isolation guarantees: from the perspective of
//! the packet stream, every update to malleable entities is atomic — each
//! packet sees either the entire old configuration or the entire new one,
//! and once the new configuration is observed, the old one never reappears
//! (serializable isolation of updates and packet processing).

use mantis::p4_ast::{Pipeline, Value};
use mantis::p4r_compiler::entry::LogicalKey;
use mantis::rmt_sim::PacketDesc;
use mantis::Testbed;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// A program with a malleable value, a malleable field, and a malleable
/// table — the update's effect on a probe packet is a single output field,
/// making "which configuration did this packet see" directly observable.
const PROG: &str = r#"
header_type h_t { fields { a : 32; b : 32; out : 32; } }
header h_t h;
malleable value scale { width : 32; init : 1; }
malleable field pick { width : 32; init : h.a; alts { h.a, h.b } }
action classify(tag) {
    modify_field(h.out, tag);
    add_to_field(h.out, ${scale});
}
action fallback() { modify_field(h.out, 0); }
malleable table cls {
    reads { ${pick} : exact; }
    actions { classify; fallback; }
    default_action : fallback();
    size : 64;
}
control ingress { apply(cls); }
"#;

fn probe(tb: &Testbed, a: u128, b: u128) -> u64 {
    let mut sw = tb.sim.switch().borrow_mut();
    let phv = PacketDesc::new(0)
        .field("h", "a", a)
        .field("h", "b", b)
        .build(sw.spec());
    let out = sw.run_pipeline(phv, Pipeline::Ingress);
    out.get(sw.spec().field_id("h", "out").unwrap()).as_u64()
}

#[test]
fn update_is_atomic_for_concurrent_probes() {
    // Old config: entry {pick=5} → classify(100), scale=1 → out=101.
    // New config (one serializable commit): scale=7, entry retargeted to
    // tag 200, reference shifted to h.b → out is 207 for b=5 packets.
    let tb = Testbed::from_p4r(PROG).unwrap();
    let handle = Rc::new(RefCell::new(0u64));
    let h2 = handle.clone();
    tb.agent
        .borrow_mut()
        .user_init(move |ctx| {
            *h2.borrow_mut() = ctx.table_add(
                "cls",
                vec![LogicalKey::Exact(Value::new(5, 32))],
                0,
                "classify",
                vec![Value::new(100, 32)],
            )?;
            Ok(())
        })
        .unwrap();
    assert_eq!(probe(&tb, 5, 9), 101); // matched via h.a
    assert_eq!(probe(&tb, 9, 5), 0); // h.b not referenced yet

    let h = *handle.borrow();
    tb.agent
        .borrow_mut()
        .user_init(move |ctx| {
            ctx.set_mbl("scale", 7)?;
            ctx.shift_field("pick", 1)?;
            ctx.table_mod("cls", h, "classify", vec![Value::new(200, 32)])?;
            Ok(())
        })
        .unwrap();
    // Entirely new world: matching now keys on h.b with the new tag+scale.
    assert_eq!(probe(&tb, 9, 5), 207);
    assert_eq!(probe(&tb, 5, 9), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized sequences of staged updates: after every commit, probes
    /// must observe a consistent world — either everything before the
    /// commit or everything after, never a blend. We verify by checking
    /// the probe output equals the prediction computed from the logical
    /// model.
    #[test]
    fn committed_state_always_matches_logical_model(
        ops in proptest::collection::vec((0u8..4, 0u32..8, 1u32..1000), 1..12)
    ) {
        let tb = Testbed::from_p4r(PROG).unwrap();
        // Logical model state.
        let mut scale: u64 = 1;
        let mut pick_b = false;
        let mut entries: Vec<(u32, u64, u64)> = Vec::new(); // (key, tag, handle)

        for (kind, key, val) in ops {
            match kind {
                0 => {
                    // set scale
                    tb.agent.borrow_mut().user_init(move |ctx| {
                        ctx.set_mbl("scale", i128::from(val))
                    }).unwrap();
                    scale = u64::from(val);
                }
                1 => {
                    // shift reference
                    let idx = (val % 2) as usize;
                    tb.agent.borrow_mut().user_init(move |ctx| {
                        ctx.shift_field("pick", idx)
                    }).unwrap();
                    pick_b = idx == 1;
                }
                2 => {
                    // add (or re-tag) entry for `key`
                    if let Some(e) = entries.iter_mut().find(|(k, _, _)| *k == key) {
                        let h = e.2;
                        tb.agent.borrow_mut().user_init(move |ctx| {
                            ctx.table_mod("cls", h, "classify",
                                vec![Value::new(u128::from(val), 32)])
                        }).unwrap();
                        e.1 = u64::from(val);
                    } else {
                        let hcell = Rc::new(RefCell::new(0u64));
                        let h2 = hcell.clone();
                        tb.agent.borrow_mut().user_init(move |ctx| {
                            *h2.borrow_mut() = ctx.table_add(
                                "cls",
                                vec![LogicalKey::Exact(Value::new(u128::from(key), 32))],
                                0,
                                "classify",
                                vec![Value::new(u128::from(val), 32)],
                            )?;
                            Ok(())
                        }).unwrap();
                        entries.push((key, u64::from(val), *hcell.borrow()));
                    }
                }
                _ => {
                    // delete entry for `key` if present
                    if let Some(pos) = entries.iter().position(|(k, _, _)| *k == key) {
                        let h = entries.remove(pos).2;
                        tb.agent.borrow_mut().user_init(move |ctx| {
                            ctx.table_del("cls", h)
                        }).unwrap();
                    }
                }
            }

            // Probe every key with the malleable reference on both sides.
            for k in 0..8u32 {
                // Packet whose h.a = k, h.b = k+100 (so only one side can
                // match entries keyed 0..8).
                let got = probe(&tb, u128::from(k), u128::from(k) + 100);
                let expect = if pick_b {
                    0 // reference points at h.b = k+100, never a stored key
                } else {
                    entries
                        .iter()
                        .find(|(ek, _, _)| *ek == k)
                        .map(|(_, tag, _)| tag + scale)
                        .unwrap_or(0)
                };
                prop_assert_eq!(got, expect, "key {} after op", k);

                // And the mirrored packet (h.b = k).
                let got_b = probe(&tb, u128::from(k) + 100, u128::from(k));
                let expect_b = if pick_b {
                    entries
                        .iter()
                        .find(|(ek, _, _)| *ek == k)
                        .map(|(_, tag, _)| tag + scale)
                        .unwrap_or(0)
                } else {
                    0
                };
                prop_assert_eq!(got_b, expect_b, "mirror key {} after op", k);
            }

            // Invariant: both vv copies hold the same logical content —
            // physical entry count is 2 copies × 2 alts × logical entries.
            let sw = tb.sim.switch().borrow();
            let t = sw.table_id("cls").unwrap();
            prop_assert_eq!(sw.table_len(t), entries.len() * 4);
        }
    }

    /// Monotonicity: interleave probe packets between every phase of a
    /// manually-driven update. Once a probe observes the new value, no
    /// later probe observes the old one, and every observation is one of
    /// the two (never a mix).
    #[test]
    fn probes_between_commit_phases_see_old_xor_new(
        new_scale in 2u32..1000,
        new_tag in 2u32..1000,
    ) {
        let tb = Testbed::from_p4r(PROG).unwrap();
        tb.agent.borrow_mut().user_init(|ctx| {
            ctx.table_add(
                "cls",
                vec![LogicalKey::Exact(Value::new(5, 32))],
                0,
                "classify",
                vec![Value::new(1, 32)],
            )?;
            Ok(())
        }).unwrap();
        let old = probe(&tb, 5, 0);
        prop_assert_eq!(old, 2); // tag 1 + scale 1

        // Run the update while probing after each dialogue step: the
        // user_init path performs prepare→commit→mirror internally; probes
        // before it must see old, after it new. (Step-level interleaving of
        // the data plane is exercised in rmt-sim's staged-execution tests;
        // here we verify the observable contract end to end.)
        let handle = 1u64; // first logical handle in `cls`
        let mut observations = vec![old];
        tb.agent.borrow_mut().user_init(move |ctx| {
            ctx.set_mbl("scale", i128::from(new_scale))?;
            ctx.table_mod("cls", handle, "classify",
                vec![Value::new(u128::from(new_tag), 32)])?;
            Ok(())
        }).unwrap();
        observations.push(probe(&tb, 5, 0));

        let old_world = 2u64;
        let new_world = u64::from(new_scale) + u64::from(new_tag);
        let mut seen_new = false;
        for obs in observations {
            prop_assert!(
                obs == old_world || obs == new_world,
                "blended observation {} (old {}, new {})",
                obs, old_world, new_world
            );
            if obs == new_world {
                seen_new = true;
            } else {
                prop_assert!(!seen_new, "old world reappeared after new");
            }
        }
        prop_assert!(seen_new);
    }
}
