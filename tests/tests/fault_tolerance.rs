//! Fault-tolerance properties of the dialogue loop (DESIGN.md §8):
//!
//! * any seeded **transient** fault plan is fully absorbed — the final
//!   device + agent state is identical to the fault-free run;
//! * a **persistent** fault quarantines only the reaction it poisons,
//!   while other reactions keep executing;
//! * a quarantined reaction is probed after the cooldown and restored
//!   once the probe commits;
//! * a mid-apply permanent failure rolls the whole staged intent back —
//!   no half-applied iterations;
//! * all fault/retry/rollback/quarantine activity surfaces in the
//!   telemetry snapshot.

use mantis::p4_ast::Value;
use mantis::p4r_compiler::entry::LogicalKey;
use mantis::{
    BreakerConfig, BreakerState, FaultOp, FaultPlan, FaultWindow, ReactionCtx, RetryPolicy, Testbed,
};

const CHURN_P4R: &str = r#"
header_type h_t { fields { a : 32; b : 32; } }
header h_t h;
malleable value knob { width : 32; init : 0; }
malleable field pick { width : 32; init : h.a; alts { h.a, h.b } }
action fwd(port) { modify_field(intr.egress_spec, port); }
action nop() { no_op(); }
malleable table acl {
    reads { ${pick} : exact; }
    actions { fwd; nop; }
    size : 128;
}
table t { actions { nop; } default_action : nop(); }
reaction churn(ing h.a) { ${knob} = ${knob}; }
reaction other(ing h.a) { ${knob} = ${knob}; }
control ingress { apply(acl); apply(t); }
"#;

/// A deterministic, time-insensitive workload: staged ops depend only on
/// the reaction's own invocation count, never on the virtual clock (fault
/// delays shift time, and the final state must not care).
fn register_churn(tb: &Testbed) {
    let mut i: u64 = 0;
    let mut handles: Vec<u64> = Vec::new();
    tb.agent
        .borrow_mut()
        .register_native(
            "churn",
            Box::new(move |ctx: &mut ReactionCtx<'_>| {
                i += 1;
                ctx.set_mbl("knob", i as i128)?;
                match i % 3 {
                    0 => {
                        let h = ctx.table_add(
                            "acl",
                            vec![LogicalKey::Exact(Value::new(u128::from(i), 32))],
                            0,
                            "fwd",
                            vec![Value::new(u128::from(i % 8), 9)],
                        )?;
                        handles.push(h);
                    }
                    1 => {
                        if let Some(h) = handles.first().copied() {
                            ctx.table_mod(
                                "acl",
                                h,
                                "fwd",
                                vec![Value::new(u128::from((i + 1) % 8), 9)],
                            )?;
                        }
                    }
                    _ => {
                        if i % 6 == 2 {
                            if let Some(h) = handles.pop() {
                                ctx.table_del("acl", h)?;
                            }
                        }
                    }
                }
                if i.is_multiple_of(5) {
                    ctx.shift_field("pick", (i % 2) as usize)?;
                }
                Ok(())
            }),
        )
        .expect("churn registered");
}

/// Full-state fingerprint: committed slots, vv, logical bookkeeping, and
/// the sorted physical table contents.
fn fingerprint(tb: &Testbed) -> String {
    let agent = tb.agent.borrow();
    let sw = tb.sim.switch().borrow();
    let t = sw.table_id("acl").expect("acl exists");
    let mut entries: Vec<String> = sw
        .table_ref(t)
        .entries()
        .map(|e| {
            format!(
                "{:?}|{:?}|{}|{:?}|{:?}",
                e.handle, e.key, e.priority, e.action, e.action_data
            )
        })
        .collect();
    entries.sort();
    format!(
        "vv={} knob={:?} pick={:?} logical={:?} phys=[{}]",
        agent.vv(),
        agent.slot("knob"),
        agent.slot("pick"),
        agent.logical_len("acl"),
        entries.join(";")
    )
}

fn churn_run(plan: Option<FaultPlan>, iters: usize) -> String {
    let tb = Testbed::from_p4r(CHURN_P4R).expect("churn program");
    register_churn(&tb);
    if let Some(plan) = plan {
        let mut agent = tb.agent.borrow_mut();
        // random_transient can stack several Fail rules on one op class;
        // give the retry loop enough headroom to absorb the worst case.
        agent.set_retry_policy(RetryPolicy {
            max_retries: 8,
            ..RetryPolicy::default()
        });
        agent.set_fault_plan(plan);
    }
    for k in 0..iters {
        tb.agent
            .borrow_mut()
            .dialogue_iteration()
            .unwrap_or_else(|e| panic!("iteration {k} must absorb transients: {e}"));
    }
    fingerprint(&tb)
}

#[test]
fn seeded_transient_fault_plans_preserve_the_final_state() {
    let baseline = churn_run(None, 10);
    assert!(baseline.contains("knob=Some(10)"), "{baseline}");
    for seed in 0..25u64 {
        let plan = FaultPlan::random_transient(seed, 300);
        let faulted = churn_run(Some(plan), 10);
        assert_eq!(
            faulted, baseline,
            "seed {seed}: faulted run diverged from fault-free state"
        );
    }
}

#[test]
fn persistent_fault_quarantines_only_the_affected_reaction() {
    let tb = Testbed::from_p4r(CHURN_P4R).expect("program");
    {
        let mut agent = tb.agent.borrow_mut();
        agent.set_breaker_config(BreakerConfig {
            threshold: 3,
            cooldown_ns: 1_000_000_000_000,
        });
        // `other` only writes a slot — its commit path never touches
        // table_add, so it must keep working.
        let mut i: i128 = 0;
        agent
            .register_native(
                "other",
                Box::new(move |ctx: &mut ReactionCtx<'_>| {
                    i += 1;
                    ctx.set_mbl("knob", i)
                }),
            )
            .unwrap();
        let mut k: u128 = 0;
        agent
            .register_native(
                "churn",
                Box::new(move |ctx: &mut ReactionCtx<'_>| {
                    k += 1;
                    ctx.table_add(
                        "acl",
                        vec![LogicalKey::Exact(Value::new(k, 32))],
                        0,
                        "nop",
                        vec![],
                    )
                    .map(|_| ())
                }),
            )
            .unwrap();
        agent.set_fault_plan(
            FaultPlan::new().fail_persistent(FaultOp::Named("table_add"), FaultWindow::Always),
        );
    }
    let mut failed = 0;
    let mut ok = 0;
    for _ in 0..9 {
        match tb.agent.borrow_mut().dialogue_iteration() {
            Ok(rep) => {
                ok += 1;
                assert!(rep.quarantine_skips > 0, "post-quarantine iterations skip");
            }
            Err(e) => {
                failed += 1;
                assert!(!e.is_transient(), "persistent faults are not transient");
            }
        }
    }
    assert_eq!(failed, 3, "three failed applies trip the threshold");
    assert_eq!(ok, 6, "after quarantine every iteration commits");
    let agent = tb.agent.borrow();
    assert_eq!(agent.quarantined_reactions(), vec!["churn".to_string()]);
    assert!(matches!(
        agent.breaker_state("churn"),
        Some(BreakerState::Open { .. })
    ));
    assert!(matches!(
        agent.breaker_state("other"),
        Some(BreakerState::Closed { .. })
    ));
    // The healthy reaction committed on every successful iteration.
    assert_eq!(agent.slot("knob"), Some(9));
    assert_eq!(agent.logical_len("acl"), Some(0), "no half-applied adds");
    assert!(agent.telemetry().counter("agent.quarantined") > 0);
    assert!(agent.telemetry().counter("agent.rollbacks") >= 3);
}

#[test]
fn quarantined_reaction_is_probed_and_restored_after_cooldown() {
    let tb = Testbed::from_p4r(CHURN_P4R).expect("program");
    let cooldown = 200_000;
    {
        let mut agent = tb.agent.borrow_mut();
        agent.set_breaker_config(BreakerConfig {
            threshold: 2,
            cooldown_ns: cooldown,
        });
        let mut k: u128 = 0;
        agent
            .register_native(
                "churn",
                Box::new(move |ctx: &mut ReactionCtx<'_>| {
                    k += 1;
                    ctx.table_add(
                        "acl",
                        vec![LogicalKey::Exact(Value::new(k, 32))],
                        0,
                        "nop",
                        vec![],
                    )
                    .map(|_| ())
                }),
            )
            .unwrap();
        agent
            .register_native(
                "other",
                Box::new(|ctx: &mut ReactionCtx<'_>| ctx.set_mbl("knob", 1)),
            )
            .unwrap();
        agent.set_fault_plan(
            FaultPlan::new().fail_persistent(FaultOp::Named("table_add"), FaultWindow::Always),
        );
    }
    // Two failed applies → quarantine.
    for _ in 0..2 {
        assert!(tb.agent.borrow_mut().dialogue_iteration().is_err());
    }
    assert_eq!(
        tb.agent.borrow().quarantined_reactions(),
        vec!["churn".to_string()]
    );
    // While quarantined, iterations succeed without churn's ops.
    tb.agent.borrow_mut().dialogue_iteration().unwrap();
    assert_eq!(tb.agent.borrow().logical_len("acl"), Some(0));

    // The operator fixes the driver (fault plan removed); after the
    // cooldown the breaker half-opens and the successful probe restores
    // the reaction.
    tb.agent.borrow_mut().driver_mut().clear_fault_plan();
    tb.agent.borrow().clock().advance(cooldown + 1);
    let rep = tb.agent.borrow_mut().dialogue_iteration().unwrap();
    assert_eq!(rep.quarantine_skips, 0, "probe iteration runs the reaction");
    let agent = tb.agent.borrow();
    assert!(agent.quarantined_reactions().is_empty());
    assert!(matches!(
        agent.breaker_state("churn"),
        Some(BreakerState::Closed { failures: 0 })
    ));
    assert_eq!(agent.logical_len("acl"), Some(1), "probe's add committed");
}

#[test]
fn mid_apply_permanent_failure_rolls_back_atomically() {
    let tb = Testbed::from_p4r(CHURN_P4R).expect("program");
    // Install one entry fault-free so there is something to modify.
    let mut handle = 0;
    tb.agent
        .borrow_mut()
        .user_init(|ctx| {
            handle = ctx.table_add(
                "acl",
                vec![LogicalKey::Exact(Value::new(1, 32))],
                0,
                "fwd",
                vec![Value::new(2, 9)],
            )?;
            Ok(())
        })
        .unwrap();
    let before = fingerprint(&tb);

    // Now a staged batch where the first op succeeds on the shadow copy
    // and the second fails permanently: everything must roll back.
    tb.agent.borrow_mut().set_fault_plan(
        FaultPlan::new().fail_persistent(FaultOp::Named("table_mod"), FaultWindow::Always),
    );
    let err = tb
        .agent
        .borrow_mut()
        .user_init(|ctx| {
            ctx.set_mbl("knob", 77)?;
            ctx.table_add(
                "acl",
                vec![LogicalKey::Exact(Value::new(9, 32))],
                0,
                "nop",
                vec![],
            )?;
            ctx.table_mod("acl", handle, "fwd", vec![Value::new(5, 9)])?;
            Ok(())
        })
        .unwrap_err();
    assert!(!err.is_transient());
    assert_eq!(
        fingerprint(&tb),
        before,
        "half-applied update leaked past the rollback"
    );
    let agent = tb.agent.borrow();
    assert_eq!(agent.telemetry().counter("agent.rollbacks"), 1);
    assert_eq!(agent.slot("knob"), Some(0), "slot write rolled back");
}

#[test]
fn failover_converges_under_the_bench_fault_plan() {
    let r = bench::faults::run(true);
    assert!(r.converged_equal, "route tables must converge: {r:?}");
    assert!(r.faults_injected > 0, "{r:?}");
    assert!(r.retries > 0, "{r:?}");
    assert!(
        r.fault_free_reaction_ns > 0 && r.faulted_reaction_ns > 0,
        "{r:?}"
    );
    assert_eq!(r.quarantined, vec!["poison".to_string()]);
    assert!(r.other_reaction_iterations > 0);
}

#[test]
fn fault_activity_surfaces_in_the_telemetry_snapshot() {
    let tb = Testbed::from_p4r(CHURN_P4R).expect("program");
    register_churn(&tb);
    {
        let mut agent = tb.agent.borrow_mut();
        agent.set_retry_policy(RetryPolicy {
            max_retries: 8,
            ..RetryPolicy::default()
        });
        agent.set_fault_plan(
            FaultPlan::new()
                .fail_transient(FaultOp::AnyTableOp, FaultWindow::Always, 3)
                .delay(FaultOp::AnyRead, FaultWindow::Always, 3_000, 2),
        );
    }
    for _ in 0..6 {
        tb.agent.borrow_mut().dialogue_iteration().unwrap();
    }
    let tel = tb.telemetry.clone();
    assert!(tel.counter("fault.injected") >= 5, "all injections counted");
    assert!(tel.counter("agent.retries") >= 3);
    let snap = tel.snapshot_json();
    for key in ["fault.injected", "agent.retries", "agent.retry_backoff_ns"] {
        assert!(snap.contains(key), "snapshot missing {key}: {snap}");
    }
    assert!(
        snap.trim_start().starts_with('{'),
        "snapshot is JSON: {snap}"
    );
}
