//! End-to-end flows spanning every crate: P4R source → compiler → switch
//! simulator → agent → network simulator.

use mantis::apps::programs::{DOS_P4R, ECMP_P4R, FAILOVER_P4R, RL_P4R};
use mantis::p4_ast;
use mantis::p4r_compiler::{compile_source, CompilerOptions};
use mantis::rmt_sim::PacketDesc;
use mantis::Testbed;

const ALL_PROGRAMS: [(&str, &str); 4] = [
    ("dos", DOS_P4R),
    ("failover", FAILOVER_P4R),
    ("ecmp", ECMP_P4R),
    ("rl", RL_P4R),
];

#[test]
fn every_use_case_program_builds_a_testbed() {
    for (name, src) in ALL_PROGRAMS {
        let tb = Testbed::from_p4r(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Every program has at least one reaction registered and runnable
        // through the interpreter.
        tb.agent
            .borrow_mut()
            .register_all_interpreted()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        tb.agent
            .borrow_mut()
            .dialogue_iteration()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn generated_p4_pretty_prints_and_reparses() {
    for (name, src) in ALL_PROGRAMS {
        let compiled = compile_source(src, &CompilerOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let printed = p4_ast::pretty::print_program(&compiled.p4);
        let reparsed = mantis::p4r_lang::parse_program(&printed)
            .unwrap_or_else(|e| panic!("{name} reparse: {e}"));
        // The reparsed program is structurally identical where it matters.
        assert_eq!(compiled.p4.tables.len(), reparsed.tables.len(), "{name}");
        assert_eq!(compiled.p4.actions.len(), reparsed.actions.len(), "{name}");
        assert_eq!(
            compiled.p4.registers.len(),
            reparsed.registers.len(),
            "{name}"
        );
        // And it still loads into the simulator.
        mantis::rmt_sim::load(&reparsed).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn control_interface_serializes_round_trip() {
    for (name, src) in ALL_PROGRAMS {
        let compiled = compile_source(src, &CompilerOptions::default()).unwrap();
        let json = serde_json::to_string(&compiled.iface).unwrap();
        let back: mantis::p4r_compiler::ControlInterface = serde_json::from_str(&json).unwrap();
        assert_eq!(compiled.iface, back, "{name}");
    }
}

#[test]
fn byte_level_packets_flow_through_compiled_dos_pipeline() {
    // Parse a raw Ethernet+IPv4 frame through the program's parser states,
    // run the pipeline, and deparse.
    let compiled = compile_source(DOS_P4R, &CompilerOptions::default()).unwrap();
    let spec = mantis::rmt_sim::load(&compiled.p4).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(&[0, 0, 0, 0, 0, 0xD0]); // dst
    frame.extend_from_slice(&[0xBB; 6]); // src
    frame.extend_from_slice(&[0x08, 0x00]);
    frame.extend_from_slice(&[0x45, 0, 0, 40, 0, 1, 0, 0, 64, 6, 0, 0]);
    frame.extend_from_slice(&[10, 0, 0, 1]);
    frame.extend_from_slice(&[10, 0, 0, 2]);
    frame.extend_from_slice(&[0u8; 20]);

    let phv = mantis::rmt_sim::parse::parse_packet(&spec, &frame, 1).unwrap();
    assert_eq!(
        phv.get(spec.field_id("ipv4", "src_addr").unwrap()).bits(),
        0x0a000001
    );
    let clock = mantis::Clock::new();
    let mut sw = mantis::Switch::new(spec, mantis::SwitchConfig::default(), clock);
    let out = sw.run_pipeline(phv, p4_ast::Pipeline::Ingress);
    // Default l2 action bounces to the ingress port.
    assert_eq!(out.egress_spec(sw.spec()), 1);
    let bytes = mantis::rmt_sim::parse::deparse_packet(sw.spec(), &out);
    assert_eq!(bytes.len(), frame.len());
}

#[test]
fn quickstart_flow_from_readme_works() {
    let src = r#"
header_type h_t { fields { a : 32; } }
header h_t h;
malleable value boost { width : 32; init : 5; }
action bump() { add_to_field(h.a, ${boost}); }
table t { actions { bump; } default_action : bump(); }
reaction tune(ing h.a) {
    if (h_a > 100) { ${boost} = 1; }
}
control ingress { apply(t); }
"#;
    let tb = Testbed::from_p4r(src).unwrap();
    tb.agent.borrow_mut().register_all_interpreted().unwrap();
    tb.sim
        .switch()
        .borrow_mut()
        .inject(&PacketDesc::new(0).field("h", "a", 200).payload(64));
    tb.agent.borrow_mut().dialogue_iteration().unwrap();
    assert_eq!(tb.agent.borrow().slot("boost"), Some(1));
}

#[test]
fn reaction_swap_at_runtime() {
    // The paper's dynamic .so reload: replace a reaction implementation
    // without restarting the agent; statics in the new one start fresh.
    let src = r#"
header_type h_t { fields { a : 32; } }
header h_t h;
malleable value knob { width : 32; init : 0; }
action noop() { no_op(); }
table t { actions { noop; } default_action : noop(); }
reaction r(ing h.a) { ${knob} = 1; }
control ingress { apply(t); }
"#;
    let tb = Testbed::from_p4r(src).unwrap();
    tb.agent.borrow_mut().register_all_interpreted().unwrap();
    tb.agent.borrow_mut().dialogue_iteration().unwrap();
    assert_eq!(tb.agent.borrow().slot("knob"), Some(1));

    tb.agent
        .borrow_mut()
        .swap_reaction(
            "r",
            Box::new(|ctx: &mut mantis::ReactionCtx<'_>| ctx.set_mbl("knob", 42)),
            true,
        )
        .unwrap();
    tb.agent.borrow_mut().dialogue_iteration().unwrap();
    assert_eq!(tb.agent.borrow().slot("knob"), Some(42));
}

#[test]
fn multiple_reactions_run_in_sequence() {
    let src = r#"
header_type h_t { fields { a : 32; } }
header h_t h;
malleable value x { width : 32; init : 0; }
malleable value y { width : 32; init : 0; }
action noop() { no_op(); }
table t { actions { noop; } default_action : noop(); }
reaction first(ing h.a) { ${x} = ${x} + 1; }
reaction second(ing h.a) { ${y} = ${x} * 10; }
control ingress { apply(t); }
"#;
    let tb = Testbed::from_p4r(src).unwrap();
    tb.agent.borrow_mut().register_all_interpreted().unwrap();
    tb.agent.borrow_mut().dialogue_iteration().unwrap();
    // `second` sees `first`'s staged write within the same dialogue (the
    // paper: reactions run sequentially; reads return the last written
    // value).
    assert_eq!(tb.agent.borrow().slot("x"), Some(1));
    assert_eq!(tb.agent.borrow().slot("y"), Some(10));
    tb.agent.borrow_mut().dialogue_iteration().unwrap();
    assert_eq!(tb.agent.borrow().slot("y"), Some(20));
}

#[test]
fn masked_reaction_args_measure_masked_values() {
    // Fig. 3's `field_or_masked_ref`: `ing ipv4.src mask 0xffffff00`
    // measures the /24 prefix of the source, not the full address.
    let src = r#"
header_type ip_t { fields { src : 32; } }
header ip_t ip;
malleable value seen { width : 32; init : 0; }
action nop() { no_op(); }
table t { actions { nop; } default_action : nop(); }
reaction watch(ing ip.src mask 0xffffff00) {
    ${seen} = ip_src;
}
control ingress { apply(t); }
"#;
    let tb = Testbed::from_p4r(src).unwrap();
    tb.agent.borrow_mut().register_all_interpreted().unwrap();
    tb.sim.switch().borrow_mut().inject(
        &PacketDesc::new(0)
            .field("ip", "src", 0x0a0b0c0d)
            .payload(10),
    );
    tb.agent.borrow_mut().dialogue_iteration().unwrap();
    tb.sim.switch().borrow_mut().inject(
        &PacketDesc::new(0)
            .field("ip", "src", 0x0a0b0c0d)
            .payload(10),
    );
    tb.agent.borrow_mut().dialogue_iteration().unwrap();
    assert_eq!(tb.agent.borrow().slot("seen"), Some(0x0a0b0c00));
}

#[test]
fn whole_header_reaction_arg_measures_every_field() {
    // Fig. 3's `header_ref`: `ing hdr flow` binds every field of `flow`.
    let src = r#"
header_type flow_t { fields { src : 32; dst : 32; proto : 8; } }
header flow_t flow;
malleable value sum { width : 32; init : 0; }
action nop() { no_op(); }
table t { actions { nop; } default_action : nop(); }
reaction watch(ing hdr flow) {
    ${sum} = flow_src + flow_dst + flow_proto;
}
control ingress { apply(t); }
"#;
    let tb = Testbed::from_p4r(src).unwrap();
    let binding = tb.compiled.iface.reaction("watch").unwrap();
    assert_eq!(binding.fields.len(), 3);
    tb.agent.borrow_mut().register_all_interpreted().unwrap();
    tb.sim.switch().borrow_mut().inject(
        &PacketDesc::new(0)
            .field("flow", "src", 100)
            .field("flow", "dst", 20)
            .field("flow", "proto", 3)
            .payload(10),
    );
    tb.agent.borrow_mut().dialogue_iteration().unwrap();
    assert_eq!(tb.agent.borrow().slot("sum"), Some(123));
    // Field-argument copies hold only what packets wrote during their
    // window (§4.2: "users should ensure that any necessary information is
    // retained across packets"): with no traffic during the next window,
    // the other copy reads back as empty.
    tb.agent.borrow_mut().dialogue_iteration().unwrap();
    assert_eq!(tb.agent.borrow().slot("sum"), Some(0));
}
