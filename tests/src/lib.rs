//! Integration-test crate: see `tests/` for the cross-crate suites.
//! (This library is intentionally empty.)
#![forbid(unsafe_code)]
