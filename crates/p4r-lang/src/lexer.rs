//! Lexer shared by the P4R parser and the C-like reaction-body parser.
//!
//! The token set is a superset of what P4-14 needs; the reaction parser uses
//! the operators, the P4R parser mostly the structural tokens. Tokens carry
//! byte spans into the original source so the P4R parser can capture reaction
//! bodies verbatim (they are re-lexed by the reaction parser).

use std::fmt;
use std::ops::Range;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Number(u128),
    // Structural
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Colon,
    Comma,
    Dot,
    /// `${` — opens a malleable reference.
    MblOpen,
    // Operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    AmpAmp,
    PipePipe,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    Eq,
    Shl,
    Shr,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    PlusPlus,
    MinusMinus,
    Question,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Tok::*;
        match self {
            Ident(s) => write!(f, "identifier `{s}`"),
            Number(n) => write!(f, "number `{n}`"),
            LBrace => write!(f, "`{{`"),
            RBrace => write!(f, "`}}`"),
            LParen => write!(f, "`(`"),
            RParen => write!(f, "`)`"),
            LBracket => write!(f, "`[`"),
            RBracket => write!(f, "`]`"),
            Semi => write!(f, "`;`"),
            Colon => write!(f, "`:`"),
            Comma => write!(f, "`,`"),
            Dot => write!(f, "`.`"),
            MblOpen => write!(f, "`${{`"),
            Plus => write!(f, "`+`"),
            Minus => write!(f, "`-`"),
            Star => write!(f, "`*`"),
            Slash => write!(f, "`/`"),
            Percent => write!(f, "`%`"),
            Amp => write!(f, "`&`"),
            Pipe => write!(f, "`|`"),
            Caret => write!(f, "`^`"),
            Tilde => write!(f, "`~`"),
            Bang => write!(f, "`!`"),
            AmpAmp => write!(f, "`&&`"),
            PipePipe => write!(f, "`||`"),
            Lt => write!(f, "`<`"),
            Le => write!(f, "`<=`"),
            Gt => write!(f, "`>`"),
            Ge => write!(f, "`>=`"),
            EqEq => write!(f, "`==`"),
            Ne => write!(f, "`!=`"),
            Eq => write!(f, "`=`"),
            Shl => write!(f, "`<<`"),
            Shr => write!(f, "`>>`"),
            PlusEq => write!(f, "`+=`"),
            MinusEq => write!(f, "`-=`"),
            StarEq => write!(f, "`*=`"),
            SlashEq => write!(f, "`/=`"),
            PercentEq => write!(f, "`%=`"),
            AmpEq => write!(f, "`&=`"),
            PipeEq => write!(f, "`|=`"),
            CaretEq => write!(f, "`^=`"),
            ShlEq => write!(f, "`<<=`"),
            ShrEq => write!(f, "`>>=`"),
            PlusPlus => write!(f, "`++`"),
            MinusMinus => write!(f, "`--`"),
            Question => write!(f, "`?`"),
        }
    }
}

/// A token plus its position in the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    pub tok: Tok,
    /// Byte range in the original source.
    pub span: Range<usize>,
    /// 1-based line number of the token start.
    pub line: u32,
}

/// A lexer error with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    pub message: String,
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize the full input. Comments (`//` and `/* */`) and whitespace are
/// skipped.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($tok:expr, $start:expr, $len:expr) => {
            toks.push(Spanned {
                tok: $tok,
                span: $start..$start + $len,
                line,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated block comment".into(),
                            line: start_line,
                        });
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let (value, len) = lex_number(&src[i..], line)?;
                i += len;
                push!(Tok::Number(value), start, len);
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                push!(Tok::Ident(src[start..i].to_string()), start, i - start);
            }
            b'$' if bytes.get(i + 1) == Some(&b'{') => {
                push!(Tok::MblOpen, i, 2);
                i += 2;
            }
            _ => {
                let start = i;
                // Operator matching happens on raw bytes: slicing `src` at
                // arbitrary offsets would panic inside multi-byte UTF-8
                // sequences.
                let three: &[u8] = bytes.get(i..i + 3).unwrap_or(b"");
                let two: &[u8] = bytes.get(i..i + 2).unwrap_or(b"");
                let (tok, len) = match three {
                    b"<<=" => (Tok::ShlEq, 3),
                    b">>=" => (Tok::ShrEq, 3),
                    _ => match two {
                        b"&&" => (Tok::AmpAmp, 2),
                        b"||" => (Tok::PipePipe, 2),
                        b"<=" => (Tok::Le, 2),
                        b">=" => (Tok::Ge, 2),
                        b"==" => (Tok::EqEq, 2),
                        b"!=" => (Tok::Ne, 2),
                        b"<<" => (Tok::Shl, 2),
                        b">>" => (Tok::Shr, 2),
                        b"+=" => (Tok::PlusEq, 2),
                        b"-=" => (Tok::MinusEq, 2),
                        b"*=" => (Tok::StarEq, 2),
                        b"/=" => (Tok::SlashEq, 2),
                        b"%=" => (Tok::PercentEq, 2),
                        b"&=" => (Tok::AmpEq, 2),
                        b"|=" => (Tok::PipeEq, 2),
                        b"^=" => (Tok::CaretEq, 2),
                        b"++" => (Tok::PlusPlus, 2),
                        b"--" => (Tok::MinusMinus, 2),
                        _ => match c {
                            b'{' => (Tok::LBrace, 1),
                            b'}' => (Tok::RBrace, 1),
                            b'(' => (Tok::LParen, 1),
                            b')' => (Tok::RParen, 1),
                            b'[' => (Tok::LBracket, 1),
                            b']' => (Tok::RBracket, 1),
                            b';' => (Tok::Semi, 1),
                            b':' => (Tok::Colon, 1),
                            b',' => (Tok::Comma, 1),
                            b'.' => (Tok::Dot, 1),
                            b'+' => (Tok::Plus, 1),
                            b'-' => (Tok::Minus, 1),
                            b'*' => (Tok::Star, 1),
                            b'/' => (Tok::Slash, 1),
                            b'%' => (Tok::Percent, 1),
                            b'&' => (Tok::Amp, 1),
                            b'|' => (Tok::Pipe, 1),
                            b'^' => (Tok::Caret, 1),
                            b'~' => (Tok::Tilde, 1),
                            b'!' => (Tok::Bang, 1),
                            b'<' => (Tok::Lt, 1),
                            b'>' => (Tok::Gt, 1),
                            b'=' => (Tok::Eq, 1),
                            b'?' => (Tok::Question, 1),
                            other => {
                                return Err(LexError {
                                    message: format!(
                                        "unexpected character `{}`",
                                        char::from(other)
                                    ),
                                    line,
                                })
                            }
                        },
                    },
                };
                i += len;
                push!(tok, start, len);
            }
        }
    }
    Ok(toks)
}

/// Lex a decimal or `0x` hexadecimal number prefix of `src`. Also accepts a
/// P4-14 width-prefixed literal like `8w255` (the width prefix is ignored:
/// widths are recovered from context during parsing).
fn lex_number(src: &str, line: u32) -> Result<(u128, usize), LexError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    // Width-prefixed form: digits 'w' digits.
    // First scan the leading decimal run.
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i + 1 < bytes.len() && bytes[i] == b'w' && bytes[i + 1].is_ascii_digit() {
        // width prefix — skip it and lex the payload.
        let (v, len) = lex_number(&src[i + 1..], line)?;
        return Ok((v, i + 1 + len));
    }
    if bytes.first() == Some(&b'0') && bytes.get(1).map(|b| b | 32) == Some(b'x') {
        let start = 2;
        let mut j = start;
        while j < bytes.len() && bytes[j].is_ascii_hexdigit() {
            j += 1;
        }
        if j == start {
            return Err(LexError {
                message: "`0x` with no hex digits".into(),
                line,
            });
        }
        let v = u128::from_str_radix(&src[start..j], 16).map_err(|_| LexError {
            message: "hex literal too large for 128 bits".into(),
            line,
        })?;
        return Ok((v, j));
    }
    let v: u128 = src[..i].parse().map_err(|_| LexError {
        message: "decimal literal too large for 128 bits".into(),
        line,
    })?;
    Ok((v, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_identifiers_and_numbers() {
        assert_eq!(
            toks("foo bar_9 42 0xff"),
            vec![
                Tok::Ident("foo".into()),
                Tok::Ident("bar_9".into()),
                Tok::Number(42),
                Tok::Number(0xff),
            ]
        );
    }

    #[test]
    fn lexes_width_prefixed_literals() {
        assert_eq!(
            toks("8w255 16w0x1f"),
            vec![Tok::Number(255), Tok::Number(0x1f)]
        );
    }

    #[test]
    fn lexes_mbl_open() {
        assert_eq!(
            toks("${value_var}"),
            vec![Tok::MblOpen, Tok::Ident("value_var".into()), Tok::RBrace]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            toks("<= >= == != << >> && || += -= ++ --"),
            vec![
                Tok::Le,
                Tok::Ge,
                Tok::EqEq,
                Tok::Ne,
                Tok::Shl,
                Tok::Shr,
                Tok::AmpAmp,
                Tok::PipePipe,
                Tok::PlusEq,
                Tok::MinusEq,
                Tok::PlusPlus,
                Tok::MinusMinus,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let src = "a // line comment\n/* block\ncomment */ b";
        assert_eq!(
            toks(src),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let spanned = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = spanned.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn spans_slice_source() {
        let src = "table foo {";
        let spanned = lex(src).unwrap();
        assert_eq!(&src[spanned[1].span.clone()], "foo");
        assert_eq!(&src[spanned[2].span.clone()], "{");
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        let e = lex("a @ b").unwrap_err();
        assert!(e.message.contains('@'));
    }

    #[test]
    fn multibyte_input_errors_without_panicking() {
        // Operator lookahead must not slice inside a UTF-8 sequence.
        assert!(lex("héllo").is_err() || lex("héllo").is_ok());
        assert!(lex("a é b").is_err());
        assert!(lex("<é").is_err());
        assert!(lex("日本語").is_err());
    }

    #[test]
    fn rejects_bare_hex_prefix() {
        assert!(lex("0x").is_err());
    }

    #[test]
    fn max_u128_hex_ok() {
        assert_eq!(
            toks("0xffffffffffffffffffffffffffffffff"),
            vec![Tok::Number(u128::MAX)]
        );
    }
}
