//! Lexer shared by the P4R parser and the C-like reaction-body parser.
//!
//! The token set is a superset of what P4-14 needs; the reaction parser uses
//! the operators, the P4R parser mostly the structural tokens. Tokens carry
//! byte spans into the original source so the P4R parser can capture reaction
//! bodies verbatim (they are re-lexed by the reaction parser).

use std::fmt;
use std::ops::Range;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Number(u128),
    // Structural
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Colon,
    Comma,
    Dot,
    /// `${` — opens a malleable reference.
    MblOpen,
    // Operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    AmpAmp,
    PipePipe,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    Eq,
    Shl,
    Shr,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    PlusPlus,
    MinusMinus,
    Question,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Tok::*;
        match self {
            Ident(s) => write!(f, "identifier `{s}`"),
            Number(n) => write!(f, "number `{n}`"),
            LBrace => write!(f, "`{{`"),
            RBrace => write!(f, "`}}`"),
            LParen => write!(f, "`(`"),
            RParen => write!(f, "`)`"),
            LBracket => write!(f, "`[`"),
            RBracket => write!(f, "`]`"),
            Semi => write!(f, "`;`"),
            Colon => write!(f, "`:`"),
            Comma => write!(f, "`,`"),
            Dot => write!(f, "`.`"),
            MblOpen => write!(f, "`${{`"),
            Plus => write!(f, "`+`"),
            Minus => write!(f, "`-`"),
            Star => write!(f, "`*`"),
            Slash => write!(f, "`/`"),
            Percent => write!(f, "`%`"),
            Amp => write!(f, "`&`"),
            Pipe => write!(f, "`|`"),
            Caret => write!(f, "`^`"),
            Tilde => write!(f, "`~`"),
            Bang => write!(f, "`!`"),
            AmpAmp => write!(f, "`&&`"),
            PipePipe => write!(f, "`||`"),
            Lt => write!(f, "`<`"),
            Le => write!(f, "`<=`"),
            Gt => write!(f, "`>`"),
            Ge => write!(f, "`>=`"),
            EqEq => write!(f, "`==`"),
            Ne => write!(f, "`!=`"),
            Eq => write!(f, "`=`"),
            Shl => write!(f, "`<<`"),
            Shr => write!(f, "`>>`"),
            PlusEq => write!(f, "`+=`"),
            MinusEq => write!(f, "`-=`"),
            StarEq => write!(f, "`*=`"),
            SlashEq => write!(f, "`/=`"),
            PercentEq => write!(f, "`%=`"),
            AmpEq => write!(f, "`&=`"),
            PipeEq => write!(f, "`|=`"),
            CaretEq => write!(f, "`^=`"),
            ShlEq => write!(f, "`<<=`"),
            ShrEq => write!(f, "`>>=`"),
            PlusPlus => write!(f, "`++`"),
            MinusMinus => write!(f, "`--`"),
            Question => write!(f, "`?`"),
        }
    }
}

/// A token plus its position in the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    pub tok: Tok,
    /// Byte range in the original source.
    pub span: Range<usize>,
    /// 1-based line number of the token start.
    pub line: u32,
    /// 1-based byte column of the token start within its line.
    pub col: u32,
}

/// Render a two-line caret snippet pointing at `line`/`col` (both 1-based,
/// `col` in bytes) of `src`. Used by lex, parse, and typecheck diagnostics.
pub fn caret_snippet(src: &str, line: u32, col: u32) -> String {
    let text = src
        .lines()
        .nth((line.max(1) - 1) as usize)
        .unwrap_or_default();
    let caret_at = (col.max(1) as usize - 1).min(text.len());
    // Expand tabs so the caret lines up regardless of terminal tab stops.
    let expand = |s: &str| s.replace('\t', " ");
    format!(
        "{line:>4} | {}\n     | {}^",
        expand(text),
        " ".repeat(expand(&text[..caret_at]).len())
    )
}

/// A lexer error with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    pub message: String,
    pub line: u32,
    /// 1-based byte column of the offending position.
    pub col: u32,
    /// Rendered caret snippet (empty when no source context is available).
    pub snippet: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at line {}, col {}: {}",
            self.line, self.col, self.message
        )?;
        if !self.snippet.is_empty() {
            write!(f, "\n{}", self.snippet)?;
        }
        Ok(())
    }
}

impl std::error::Error for LexError {}

/// Tokenize the full input. Comments (`//` and `/* */`) and whitespace are
/// skipped.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut line_start = 0usize;

    macro_rules! col_at {
        ($pos:expr) => {
            ($pos - line_start + 1) as u32
        };
    }
    macro_rules! push {
        ($tok:expr, $start:expr, $len:expr) => {
            toks.push(Spanned {
                tok: $tok,
                span: $start..$start + $len,
                line,
                col: col_at!($start),
            })
        };
    }
    macro_rules! err_at {
        ($msg:expr, $line:expr, $pos:expr, $lstart:expr) => {
            return Err(LexError {
                message: $msg,
                line: $line,
                col: ($pos - $lstart + 1) as u32,
                snippet: caret_snippet(src, $line, ($pos - $lstart + 1) as u32),
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start_pos = i;
                let start_lstart = line_start;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        err_at!(
                            "unterminated block comment".into(),
                            start_line,
                            start_pos,
                            start_lstart
                        );
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        line_start = i + 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'"' => {
                // P4R has no string literals; scan the would-be literal so we
                // can report a precise error instead of a cascade of
                // "unexpected character" failures (or, for an unterminated
                // one, an error at end of input).
                let start = i;
                let (start_line, start_lstart) = (line, line_start);
                i += 1;
                loop {
                    match bytes.get(i) {
                        None | Some(b'\n') => {
                            err_at!(
                                "unterminated string literal".into(),
                                start_line,
                                start,
                                start_lstart
                            );
                        }
                        Some(b'\\') if i + 1 < bytes.len() && bytes[i + 1] != b'\n' => i += 2,
                        Some(b'"') => break,
                        Some(_) => i += 1,
                    }
                }
                err_at!(
                    "string literals are not supported in P4R".into(),
                    start_line,
                    start,
                    start_lstart
                );
            }
            b'0'..=b'9' => {
                let start = i;
                let (value, len) = match lex_number(&src[i..]) {
                    Ok(v) => v,
                    Err(message) => err_at!(message, line, i, line_start),
                };
                i += len;
                push!(Tok::Number(value), start, len);
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                push!(Tok::Ident(src[start..i].to_string()), start, i - start);
            }
            b'$' if bytes.get(i + 1) == Some(&b'{') => {
                push!(Tok::MblOpen, i, 2);
                i += 2;
            }
            _ => {
                let start = i;
                // Operator matching happens on raw bytes: slicing `src` at
                // arbitrary offsets would panic inside multi-byte UTF-8
                // sequences.
                let three: &[u8] = bytes.get(i..i + 3).unwrap_or(b"");
                let two: &[u8] = bytes.get(i..i + 2).unwrap_or(b"");
                let (tok, len) = match three {
                    b"<<=" => (Tok::ShlEq, 3),
                    b">>=" => (Tok::ShrEq, 3),
                    _ => match two {
                        b"&&" => (Tok::AmpAmp, 2),
                        b"||" => (Tok::PipePipe, 2),
                        b"<=" => (Tok::Le, 2),
                        b">=" => (Tok::Ge, 2),
                        b"==" => (Tok::EqEq, 2),
                        b"!=" => (Tok::Ne, 2),
                        b"<<" => (Tok::Shl, 2),
                        b">>" => (Tok::Shr, 2),
                        b"+=" => (Tok::PlusEq, 2),
                        b"-=" => (Tok::MinusEq, 2),
                        b"*=" => (Tok::StarEq, 2),
                        b"/=" => (Tok::SlashEq, 2),
                        b"%=" => (Tok::PercentEq, 2),
                        b"&=" => (Tok::AmpEq, 2),
                        b"|=" => (Tok::PipeEq, 2),
                        b"^=" => (Tok::CaretEq, 2),
                        b"++" => (Tok::PlusPlus, 2),
                        b"--" => (Tok::MinusMinus, 2),
                        _ => match c {
                            b'{' => (Tok::LBrace, 1),
                            b'}' => (Tok::RBrace, 1),
                            b'(' => (Tok::LParen, 1),
                            b')' => (Tok::RParen, 1),
                            b'[' => (Tok::LBracket, 1),
                            b']' => (Tok::RBracket, 1),
                            b';' => (Tok::Semi, 1),
                            b':' => (Tok::Colon, 1),
                            b',' => (Tok::Comma, 1),
                            b'.' => (Tok::Dot, 1),
                            b'+' => (Tok::Plus, 1),
                            b'-' => (Tok::Minus, 1),
                            b'*' => (Tok::Star, 1),
                            b'/' => (Tok::Slash, 1),
                            b'%' => (Tok::Percent, 1),
                            b'&' => (Tok::Amp, 1),
                            b'|' => (Tok::Pipe, 1),
                            b'^' => (Tok::Caret, 1),
                            b'~' => (Tok::Tilde, 1),
                            b'!' => (Tok::Bang, 1),
                            b'<' => (Tok::Lt, 1),
                            b'>' => (Tok::Gt, 1),
                            b'=' => (Tok::Eq, 1),
                            b'?' => (Tok::Question, 1),
                            other => {
                                err_at!(
                                    format!("unexpected character `{}`", char::from(other)),
                                    line,
                                    i,
                                    line_start
                                );
                            }
                        },
                    },
                };
                i += len;
                push!(tok, start, len);
            }
        }
    }
    Ok(toks)
}

/// Lex a decimal or `0x` hexadecimal number prefix of `src`. Also accepts a
/// P4-14 width-prefixed literal like `8w255` (the width prefix is ignored:
/// widths are recovered from context during parsing). Iterative on purpose:
/// width prefixes can chain (`1w2w3` lexes like its recursive ancestor did),
/// and a pathological `1w1w1w…` input must not overflow the stack.
fn lex_number(src: &str) -> Result<(u128, usize), String> {
    let bytes = src.as_bytes();
    let mut base = 0usize;
    loop {
        // Scan the decimal run starting at `base`.
        let mut i = base;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
        if i + 1 < bytes.len() && bytes[i] == b'w' && bytes[i + 1].is_ascii_digit() {
            // Width prefix — skip it; the payload starts after the `w`.
            base = i + 1;
            continue;
        }
        if bytes.get(base) == Some(&b'0') && bytes.get(base + 1).map(|b| b | 32) == Some(b'x') {
            let start = base + 2;
            let mut j = start;
            while j < bytes.len() && bytes[j].is_ascii_hexdigit() {
                j += 1;
            }
            if j == start {
                return Err("`0x` with no hex digits".into());
            }
            let v = u128::from_str_radix(&src[start..j], 16)
                .map_err(|_| "hex literal too large for 128 bits".to_string())?;
            return Ok((v, j));
        }
        let v: u128 = src[base..i]
            .parse()
            .map_err(|_| "decimal literal too large for 128 bits".to_string())?;
        return Ok((v, i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_identifiers_and_numbers() {
        assert_eq!(
            toks("foo bar_9 42 0xff"),
            vec![
                Tok::Ident("foo".into()),
                Tok::Ident("bar_9".into()),
                Tok::Number(42),
                Tok::Number(0xff),
            ]
        );
    }

    #[test]
    fn lexes_width_prefixed_literals() {
        assert_eq!(
            toks("8w255 16w0x1f"),
            vec![Tok::Number(255), Tok::Number(0x1f)]
        );
    }

    #[test]
    fn lexes_mbl_open() {
        assert_eq!(
            toks("${value_var}"),
            vec![Tok::MblOpen, Tok::Ident("value_var".into()), Tok::RBrace]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            toks("<= >= == != << >> && || += -= ++ --"),
            vec![
                Tok::Le,
                Tok::Ge,
                Tok::EqEq,
                Tok::Ne,
                Tok::Shl,
                Tok::Shr,
                Tok::AmpAmp,
                Tok::PipePipe,
                Tok::PlusEq,
                Tok::MinusEq,
                Tok::PlusPlus,
                Tok::MinusMinus,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let src = "a // line comment\n/* block\ncomment */ b";
        assert_eq!(
            toks(src),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let spanned = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = spanned.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn spans_slice_source() {
        let src = "table foo {";
        let spanned = lex(src).unwrap();
        assert_eq!(&src[spanned[1].span.clone()], "foo");
        assert_eq!(&src[spanned[2].span.clone()], "{");
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        let e = lex("a @ b").unwrap_err();
        assert!(e.message.contains('@'));
    }

    #[test]
    fn multibyte_input_errors_without_panicking() {
        // Operator lookahead must not slice inside a UTF-8 sequence.
        assert!(lex("héllo").is_err() || lex("héllo").is_ok());
        assert!(lex("a é b").is_err());
        assert!(lex("<é").is_err());
        assert!(lex("日本語").is_err());
    }

    #[test]
    fn rejects_bare_hex_prefix() {
        assert!(lex("0x").is_err());
    }

    #[test]
    fn tracks_columns() {
        let spanned = lex("ab cd\n  ef").unwrap();
        let cols: Vec<u32> = spanned.iter().map(|s| s.col).collect();
        assert_eq!(cols, vec![1, 4, 3]);
    }

    #[test]
    fn errors_carry_col_and_snippet() {
        let e = lex("a b\ncd @").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 4);
        assert!(e.snippet.contains("cd @"), "snippet: {}", e.snippet);
        assert!(e.snippet.lines().nth(1).unwrap().ends_with('^'));
    }

    #[test]
    fn unterminated_string_literal_errors() {
        let e = lex("x = \"never ends").unwrap_err();
        assert!(e.message.contains("unterminated string"), "{}", e.message);
        assert_eq!(e.col, 5);
        // A newline terminates the scan too — strings cannot span lines.
        let e = lex("\"ab\ncd\"").unwrap_err();
        assert!(e.message.contains("unterminated string"), "{}", e.message);
        assert_eq!(e.line, 1);
    }

    #[test]
    fn terminated_string_literal_rejected_cleanly() {
        let e = lex("x = \"hi \\\" there\"").unwrap_err();
        assert!(e.message.contains("not supported"), "{}", e.message);
        assert_eq!(e.line, 1);
    }

    #[test]
    fn overflowing_literals_error_instead_of_panicking() {
        assert!(lex("340282366920938463463374607431768211456").is_err()); // u128::MAX + 1
        assert!(lex("0x100000000000000000000000000000000").is_err());
        let e = lex("999999999999999999999999999999999999999999").unwrap_err();
        assert!(e.message.contains("too large"), "{}", e.message);
    }

    #[test]
    fn deep_width_prefix_chain_does_not_overflow_stack() {
        // The recursive ancestor of lex_number blew the stack on this input.
        let src = "1w".repeat(100_000) + "7";
        let toks = lex(&src).unwrap();
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].tok, Tok::Number(7));
    }

    #[test]
    fn caret_snippet_handles_tabs_and_bad_positions() {
        let s = caret_snippet("\tlet x = 1;", 1, 2);
        assert!(s.lines().nth(1).unwrap().ends_with('^'));
        // Out-of-range line/col clamp instead of panicking.
        let s = caret_snippet("one line", 99, 99);
        assert!(s.ends_with('^'));
    }

    #[test]
    fn max_u128_hex_ok() {
        assert_eq!(
            toks("0xffffffffffffffffffffffffffffffff"),
            vec![Tok::Number(u128::MAX)]
        );
    }
}
