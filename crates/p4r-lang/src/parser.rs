//! Recursive-descent parser for P4R: the P4-14 v1.0.5 subset used by the
//! paper plus the Figure 3 extensions (`malleable value|field|table` and
//! `reaction` declarations).
//!
//! Reaction bodies are C-like code; the parser captures them verbatim (by
//! brace matching) into [`ReactionDecl::body_src`], and `creact` parses them
//! separately.

use crate::lexer::{caret_snippet, lex, LexError, Spanned, Tok};
use p4_ast::*;
use std::fmt;

/// A parse error with line/col position and a rendered caret snippet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub line: u32,
    /// 1-based byte column of the offending token (0 when unknown).
    pub col: u32,
    /// Rendered caret snippet (empty when no source context is available).
    pub snippet: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}", self.line)?;
        if self.col > 0 {
            write!(f, ", col {}", self.col)?;
        }
        write!(f, ": {}", self.message)?;
        if !self.snippet.is_empty() {
            write!(f, "\n{}", self.snippet)?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    /// Build an error pointing at `line`/`col` of `src`, rendering a snippet.
    pub fn at(src: &str, message: impl Into<String>, line: u32, col: u32) -> Self {
        ParseError {
            message: message.into(),
            line,
            col,
            snippet: if col > 0 {
                caret_snippet(src, line, col)
            } else {
                String::new()
            },
        }
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
            snippet: e.snippet,
        }
    }
}

type PResult<T> = Result<T, ParseError>;

/// Construct the [`Value`] for an integer literal whose width is not yet
/// known from context. 64 bits covers every literal in practice; wider
/// literals get 128.
pub fn lit(n: u128) -> Value {
    if n > u128::from(u64::MAX) {
        Value::new(n, 128)
    } else {
        Value::new(n, 64)
    }
}

/// Parse a complete `.p4r` (or plain `.p4`) source file.
pub fn parse_program(src: &str) -> PResult<Program> {
    let toks = lex(src)?;
    let mut p = Parser {
        src,
        toks,
        pos: 0,
        prog: Program::default(),
    };
    p.program()?;
    Ok(p.prog)
}

struct Parser<'s> {
    src: &'s str,
    toks: Vec<Spanned>,
    pos: usize,
    prog: Program,
}

impl<'s> Parser<'s> {
    // -- token helpers ------------------------------------------------------

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| s.line)
            .unwrap_or(1)
    }

    fn col(&self) -> u32 {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| s.col)
            .unwrap_or(1)
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError::at(self.src, msg, self.line(), self.col()))
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> PResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            match self.peek() {
                Some(got) => self.err(format!("expected {t}, found {got}")),
                None => self.err(format!("expected {t}, found end of input")),
            }
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            Some(got) => self.err(format!("expected identifier, found {got}")),
            None => self.err("expected identifier, found end of input"),
        }
    }

    /// Consume a specific keyword (an identifier with a fixed spelling).
    fn keyword(&mut self, kw: &str) -> PResult<()> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == kw => {
                self.pos += 1;
                Ok(())
            }
            Some(got) => self.err(format!("expected keyword `{kw}`, found {got}")),
            None => self.err(format!("expected keyword `{kw}`, found end of input")),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) && {
            self.pos += 1;
            true
        }
    }

    fn number(&mut self) -> PResult<u128> {
        match self.peek().cloned() {
            Some(Tok::Number(n)) => {
                self.pos += 1;
                Ok(n)
            }
            Some(got) => self.err(format!("expected number, found {got}")),
            None => self.err("expected number, found end of input"),
        }
    }

    fn width(&mut self) -> PResult<u16> {
        let n = self.number()?;
        if n == 0 || n > 128 {
            return self.err(format!("width {n} out of range 1..=128"));
        }
        Ok(n as u16)
    }

    // -- reference parsing --------------------------------------------------

    /// `instance.field`
    fn field_ref(&mut self) -> PResult<FieldRef> {
        let instance = self.ident()?;
        self.expect(&Tok::Dot)?;
        let field = self.ident()?;
        Ok(FieldRef { instance, field })
    }

    /// `${name}` or `instance.field`
    fn target(&mut self) -> PResult<FieldOrMbl> {
        if self.eat(&Tok::MblOpen) {
            let name = self.ident()?;
            self.expect(&Tok::RBrace)?;
            Ok(FieldOrMbl::Mbl(name))
        } else {
            Ok(FieldOrMbl::Field(self.field_ref()?))
        }
    }

    /// An action operand: constant, `${name}`, `inst.field`, or a bare
    /// identifier (interpreted as an action parameter).
    fn operand(&mut self) -> PResult<Operand> {
        match self.peek().cloned() {
            Some(Tok::Number(n)) => {
                self.pos += 1;
                Ok(Operand::Const(lit(n)))
            }
            Some(Tok::MblOpen) => {
                self.pos += 1;
                let name = self.ident()?;
                self.expect(&Tok::RBrace)?;
                Ok(Operand::Mbl(name))
            }
            Some(Tok::Ident(_)) => {
                if self.peek2() == Some(&Tok::Dot) {
                    Ok(Operand::Field(self.field_ref()?))
                } else {
                    Ok(Operand::Param(self.ident()?))
                }
            }
            Some(got) => self.err(format!("expected operand, found {got}")),
            None => self.err("expected operand, found end of input"),
        }
    }

    // -- top level ----------------------------------------------------------

    fn program(&mut self) -> PResult<()> {
        while let Some(tok) = self.peek().cloned() {
            let Tok::Ident(kw) = tok else {
                return self.err(format!("expected declaration, found {tok}"));
            };
            match kw.as_str() {
                "header_type" => self.header_type()?,
                "header" => self.instance(false)?,
                "metadata" => self.instance(true)?,
                "parser" => self.parser_state()?,
                "register" => self.register()?,
                "counter" => self.counter()?,
                "field_list" => self.field_list()?,
                "field_list_calculation" => self.calculation()?,
                "action" => self.action()?,
                "table" => self.table(false)?,
                "malleable" => self.malleable()?,
                "reaction" => self.reaction()?,
                "control" => self.control()?,
                other => return self.err(format!("unknown declaration keyword `{other}`")),
            }
        }
        Ok(())
    }

    fn header_type(&mut self) -> PResult<()> {
        self.keyword("header_type")?;
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        self.keyword("fields")?;
        self.expect(&Tok::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let fname = self.ident()?;
            self.expect(&Tok::Colon)?;
            let w = self.width()?;
            self.expect(&Tok::Semi)?;
            fields.push((fname, w));
        }
        self.expect(&Tok::RBrace)?;
        self.prog.header_types.push(HeaderTypeDecl { name, fields });
        Ok(())
    }

    fn instance(&mut self, is_metadata: bool) -> PResult<()> {
        self.bump(); // `header` or `metadata`
        let header_type = self.ident()?;
        let name = self.ident()?;
        let mut initializers = Vec::new();
        if self.eat(&Tok::LBrace) {
            while !self.eat(&Tok::RBrace) {
                let f = self.ident()?;
                self.expect(&Tok::Colon)?;
                let v = self.number()?;
                self.expect(&Tok::Semi)?;
                initializers.push((f, lit(v)));
            }
        }
        // Trailing `;` is optional after a braced initializer, required
        // otherwise.
        if initializers.is_empty() {
            self.expect(&Tok::Semi)?;
        } else {
            self.eat(&Tok::Semi);
        }
        self.prog.instances.push(InstanceDecl {
            header_type,
            name,
            is_metadata,
            initializers,
        });
        Ok(())
    }

    fn parser_state(&mut self) -> PResult<()> {
        self.keyword("parser")?;
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut extracts = Vec::new();
        let mut next = None;
        while !self.eat(&Tok::RBrace) {
            if self.eat_keyword("extract") {
                self.expect(&Tok::LParen)?;
                extracts.push(self.ident()?);
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
            } else if self.eat_keyword("return") {
                if self.eat_keyword("select") {
                    self.expect(&Tok::LParen)?;
                    let field = self.field_ref()?;
                    self.expect(&Tok::RParen)?;
                    self.expect(&Tok::LBrace)?;
                    let mut cases = Vec::new();
                    let mut default = None;
                    while !self.eat(&Tok::RBrace) {
                        if self.eat_keyword("default") {
                            self.expect(&Tok::Colon)?;
                            default = Some(self.ident()?);
                            self.expect(&Tok::Semi)?;
                        } else {
                            let v = self.number()?;
                            self.expect(&Tok::Colon)?;
                            let st = self.ident()?;
                            self.expect(&Tok::Semi)?;
                            cases.push((lit(v), st));
                        }
                    }
                    self.expect(&Tok::Semi)?;
                    next = Some(ParserNext::Select {
                        field,
                        cases,
                        default,
                    });
                } else if self.eat_keyword("ingress") {
                    self.expect(&Tok::Semi)?;
                    next = Some(ParserNext::Ingress);
                } else {
                    let st = self.ident()?;
                    self.expect(&Tok::Semi)?;
                    next = Some(ParserNext::State(st));
                }
            } else {
                return self.err("expected `extract` or `return` in parser state");
            }
        }
        let next = match next {
            Some(n) => n,
            None => return self.err(format!("parser state `{name}` has no return")),
        };
        self.prog.parser_states.push(ParserStateDecl {
            name,
            extracts,
            next,
        });
        Ok(())
    }

    fn register(&mut self) -> PResult<()> {
        self.keyword("register")?;
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut width = None;
        let mut count = None;
        let mut pipeline = Pipeline::Ingress;
        while !self.eat(&Tok::RBrace) {
            let attr = self.ident()?;
            self.expect(&Tok::Colon)?;
            match attr.as_str() {
                "width" => width = Some(self.width()?),
                "instance_count" => count = Some(self.number()? as u32),
                // `pipeline` is a P4R-repro extension; real P4-14 infers the
                // pipeline from usage. Accepting it keeps programs explicit.
                "pipeline" => {
                    pipeline = if self.eat_keyword("egress") {
                        Pipeline::Egress
                    } else {
                        self.keyword("ingress")?;
                        Pipeline::Ingress
                    };
                }
                other => return self.err(format!("unknown register attribute `{other}`")),
            }
            self.expect(&Tok::Semi)?;
        }
        let width = width.ok_or_else(|| {
            ParseError::at(
                self.src,
                format!("register `{name}` missing width"),
                self.line(),
                self.col(),
            )
        })?;
        let instance_count = count.unwrap_or(1);
        self.prog.registers.push(RegisterDecl {
            name,
            width,
            instance_count,
            pipeline,
        });
        Ok(())
    }

    /// `counter` declarations are modelled as 64-bit registers.
    fn counter(&mut self) -> PResult<()> {
        self.keyword("counter")?;
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut count = 1u32;
        let mut pipeline = Pipeline::Ingress;
        while !self.eat(&Tok::RBrace) {
            let attr = self.ident()?;
            self.expect(&Tok::Colon)?;
            match attr.as_str() {
                "instance_count" => count = self.number()? as u32,
                // `type : packets;` etc — accepted and ignored.
                "type" => {
                    self.ident()?;
                }
                "pipeline" => {
                    pipeline = if self.eat_keyword("egress") {
                        Pipeline::Egress
                    } else {
                        self.keyword("ingress")?;
                        Pipeline::Ingress
                    };
                }
                other => return self.err(format!("unknown counter attribute `{other}`")),
            }
            self.expect(&Tok::Semi)?;
        }
        self.prog.registers.push(RegisterDecl {
            name,
            width: 64,
            instance_count: count,
            pipeline,
        });
        Ok(())
    }

    fn field_list(&mut self) -> PResult<()> {
        self.keyword("field_list")?;
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut entries = Vec::new();
        while !self.eat(&Tok::RBrace) {
            entries.push(self.target()?);
            self.expect(&Tok::Semi)?;
        }
        self.prog.field_lists.push(FieldListDecl { name, entries });
        Ok(())
    }

    fn calculation(&mut self) -> PResult<()> {
        self.keyword("field_list_calculation")?;
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut input = None;
        let mut algorithm = HashAlgorithm::Crc16;
        let mut output_width = 16;
        while !self.eat(&Tok::RBrace) {
            match self.peek() {
                Some(Tok::Ident(s)) if s == "input" => {
                    self.pos += 1;
                    self.expect(&Tok::LBrace)?;
                    input = Some(self.ident()?);
                    self.expect(&Tok::Semi)?;
                    self.expect(&Tok::RBrace)?;
                }
                Some(Tok::Ident(s)) if s == "algorithm" => {
                    self.pos += 1;
                    self.expect(&Tok::Colon)?;
                    let alg = self.ident()?;
                    algorithm = match alg.as_str() {
                        "crc16" => HashAlgorithm::Crc16,
                        "crc32" => HashAlgorithm::Crc32,
                        "identity" => HashAlgorithm::Identity,
                        "xor_mix" => HashAlgorithm::XorMix,
                        other => return self.err(format!("unknown hash algorithm `{other}`")),
                    };
                    self.expect(&Tok::Semi)?;
                }
                Some(Tok::Ident(s)) if s == "output_width" => {
                    self.pos += 1;
                    self.expect(&Tok::Colon)?;
                    output_width = self.width()?;
                    self.expect(&Tok::Semi)?;
                }
                _ => return self.err("expected `input`, `algorithm`, or `output_width`"),
            }
        }
        let input = input.ok_or_else(|| {
            ParseError::at(
                self.src,
                format!("field_list_calculation `{name}` missing input"),
                self.line(),
                self.col(),
            )
        })?;
        self.prog.calculations.push(FieldListCalcDecl {
            name,
            input,
            algorithm,
            output_width,
        });
        Ok(())
    }

    fn action(&mut self) -> PResult<()> {
        self.keyword("action")?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                params.push(self.ident()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma)?;
            }
        }
        self.expect(&Tok::LBrace)?;
        let mut body = Vec::new();
        while !self.eat(&Tok::RBrace) {
            body.push(self.primitive_call()?);
            self.expect(&Tok::Semi)?;
        }
        self.prog.actions.push(ActionDecl { name, params, body });
        Ok(())
    }

    fn primitive_call(&mut self) -> PResult<PrimitiveCall> {
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let call = match name.as_str() {
            "drop" => PrimitiveCall::Drop,
            "no_op" => PrimitiveCall::NoOp,
            "modify_field" => {
                let dst = self.target()?;
                self.expect(&Tok::Comma)?;
                let src = self.operand()?;
                PrimitiveCall::ModifyField { dst, src }
            }
            "add" | "subtract" | "bit_and" | "bit_or" | "bit_xor" => {
                let dst = self.target()?;
                self.expect(&Tok::Comma)?;
                let a = self.operand()?;
                self.expect(&Tok::Comma)?;
                let b = self.operand()?;
                match name.as_str() {
                    "add" => PrimitiveCall::Add { dst, a, b },
                    "subtract" => PrimitiveCall::Subtract { dst, a, b },
                    "bit_and" => PrimitiveCall::BitAnd { dst, a, b },
                    "bit_or" => PrimitiveCall::BitOr { dst, a, b },
                    _ => PrimitiveCall::BitXor { dst, a, b },
                }
            }
            "shift_left" | "shift_right" => {
                let dst = self.target()?;
                self.expect(&Tok::Comma)?;
                let a = self.operand()?;
                self.expect(&Tok::Comma)?;
                let amount = self.operand()?;
                if name == "shift_left" {
                    PrimitiveCall::ShiftLeft { dst, a, amount }
                } else {
                    PrimitiveCall::ShiftRight { dst, a, amount }
                }
            }
            "add_to_field" | "subtract_from_field" => {
                let dst = self.target()?;
                self.expect(&Tok::Comma)?;
                let v = self.operand()?;
                if name == "add_to_field" {
                    PrimitiveCall::AddToField { dst, v }
                } else {
                    PrimitiveCall::SubtractFromField { dst, v }
                }
            }
            "register_write" => {
                let register = self.ident()?;
                self.expect(&Tok::Comma)?;
                let index = self.operand()?;
                self.expect(&Tok::Comma)?;
                let value = self.operand()?;
                PrimitiveCall::RegisterWrite {
                    register,
                    index,
                    value,
                }
            }
            "register_read" => {
                let dst = self.target()?;
                self.expect(&Tok::Comma)?;
                let register = self.ident()?;
                self.expect(&Tok::Comma)?;
                let index = self.operand()?;
                PrimitiveCall::RegisterRead {
                    dst,
                    register,
                    index,
                }
            }
            "count" => {
                let counter = self.ident()?;
                self.expect(&Tok::Comma)?;
                let index = self.operand()?;
                PrimitiveCall::Count { counter, index }
            }
            "modify_field_with_hash_based_offset" => {
                let dst = self.target()?;
                self.expect(&Tok::Comma)?;
                let base = self.operand()?;
                self.expect(&Tok::Comma)?;
                let calculation = self.ident()?;
                self.expect(&Tok::Comma)?;
                let size = self.operand()?;
                PrimitiveCall::ModifyFieldWithHash {
                    dst,
                    base,
                    calculation,
                    size,
                }
            }
            other => return self.err(format!("unknown primitive action `{other}`")),
        };
        self.expect(&Tok::RParen)?;
        Ok(call)
    }

    fn table(&mut self, malleable: bool) -> PResult<()> {
        self.keyword("table")?;
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut reads = Vec::new();
        let mut actions = Vec::new();
        let mut default_action = None;
        let mut size = None;
        while !self.eat(&Tok::RBrace) {
            if self.eat_keyword("reads") {
                self.expect(&Tok::LBrace)?;
                while !self.eat(&Tok::RBrace) {
                    let target = self.target()?;
                    let mask = if self.eat_keyword("mask") {
                        Some(lit(self.number()?))
                    } else {
                        None
                    };
                    self.expect(&Tok::Colon)?;
                    let kind = match self.ident()?.as_str() {
                        "exact" => MatchKind::Exact,
                        "ternary" => MatchKind::Ternary,
                        "lpm" => MatchKind::Lpm,
                        other => return self.err(format!("unknown match kind `{other}`")),
                    };
                    self.expect(&Tok::Semi)?;
                    reads.push(TableRead { target, kind, mask });
                }
            } else if self.eat_keyword("actions") {
                self.expect(&Tok::LBrace)?;
                while !self.eat(&Tok::RBrace) {
                    actions.push(self.ident()?);
                    self.expect(&Tok::Semi)?;
                }
            } else if self.eat_keyword("default_action") {
                self.expect(&Tok::Colon)?;
                let aname = self.ident()?;
                let mut args = Vec::new();
                if self.eat(&Tok::LParen) && !self.eat(&Tok::RParen) {
                    loop {
                        args.push(lit(self.number()?));
                        if self.eat(&Tok::RParen) {
                            break;
                        }
                        self.expect(&Tok::Comma)?;
                    }
                }
                self.expect(&Tok::Semi)?;
                default_action = Some((aname, args));
            } else if self.eat_keyword("size") {
                self.expect(&Tok::Colon)?;
                size = Some(self.number()? as u32);
                self.expect(&Tok::Semi)?;
            } else {
                return self.err("expected `reads`, `actions`, `default_action`, or `size`");
            }
        }
        self.prog.tables.push(TableDecl {
            name,
            reads,
            actions,
            default_action,
            size,
            malleable,
        });
        Ok(())
    }

    fn malleable(&mut self) -> PResult<()> {
        self.keyword("malleable")?;
        match self.peek() {
            Some(Tok::Ident(s)) if s == "value" => {
                self.pos += 1;
                let name = self.ident()?;
                self.expect(&Tok::LBrace)?;
                let mut width = None;
                let mut init = None;
                while !self.eat(&Tok::RBrace) {
                    let attr = self.ident()?;
                    self.expect(&Tok::Colon)?;
                    match attr.as_str() {
                        "width" => width = Some(self.width()?),
                        "init" => init = Some(self.number()?),
                        other => {
                            return self.err(format!("unknown malleable value attribute `{other}`"))
                        }
                    }
                    self.expect(&Tok::Semi)?;
                }
                let width = width.ok_or_else(|| {
                    ParseError::at(
                        self.src,
                        format!("malleable value `{name}` missing width"),
                        self.line(),
                        self.col(),
                    )
                })?;
                let init = Value::new(init.unwrap_or(0), width);
                self.prog
                    .mbl_values
                    .push(MblValueDecl { name, width, init });
                Ok(())
            }
            Some(Tok::Ident(s)) if s == "field" => {
                self.pos += 1;
                let name = self.ident()?;
                self.expect(&Tok::LBrace)?;
                let mut width = None;
                let mut init = None;
                let mut alts = Vec::new();
                while !self.eat(&Tok::RBrace) {
                    match self.peek() {
                        Some(Tok::Ident(s)) if s == "width" => {
                            self.pos += 1;
                            self.expect(&Tok::Colon)?;
                            width = Some(self.width()?);
                            self.expect(&Tok::Semi)?;
                        }
                        Some(Tok::Ident(s)) if s == "init" => {
                            self.pos += 1;
                            self.expect(&Tok::Colon)?;
                            init = Some(self.field_ref()?);
                            self.expect(&Tok::Semi)?;
                        }
                        Some(Tok::Ident(s)) if s == "alts" => {
                            self.pos += 1;
                            self.expect(&Tok::LBrace)?;
                            loop {
                                alts.push(self.field_ref()?);
                                if self.eat(&Tok::RBrace) {
                                    break;
                                }
                                self.expect(&Tok::Comma)?;
                            }
                            // Optional trailing `;` after the alts block.
                            self.eat(&Tok::Semi);
                        }
                        _ => return self.err("expected `width`, `init`, or `alts`"),
                    }
                }
                let width = width.ok_or_else(|| {
                    ParseError::at(
                        self.src,
                        format!("malleable field `{name}` missing width"),
                        self.line(),
                        self.col(),
                    )
                })?;
                let init = init.ok_or_else(|| {
                    ParseError::at(
                        self.src,
                        format!("malleable field `{name}` missing init"),
                        self.line(),
                        self.col(),
                    )
                })?;
                self.prog.mbl_fields.push(MblFieldDecl {
                    name,
                    width,
                    init,
                    alts,
                });
                Ok(())
            }
            Some(Tok::Ident(s)) if s == "table" => self.table(true),
            _ => self.err("expected `value`, `field`, or `table` after `malleable`"),
        }
    }

    fn reaction(&mut self) -> PResult<()> {
        self.keyword("reaction")?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                args.push(self.reaction_arg()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma)?;
            }
        }
        // Capture the body verbatim between matching braces.
        let open = self.toks.get(self.pos).cloned();
        self.expect(&Tok::LBrace)?;
        let body_start = open.map(|s| s.span.end).unwrap_or(0);
        let mut depth = 1usize;
        let body_end;
        loop {
            let Some(t) = self.bump() else {
                return self.err(format!("unterminated reaction `{name}` body"));
            };
            match t.tok {
                Tok::LBrace | Tok::MblOpen => depth += 1,
                Tok::RBrace => {
                    depth -= 1;
                    if depth == 0 {
                        body_end = t.span.start;
                        break;
                    }
                }
                _ => {}
            }
        }
        let body_src = dedent(&self.src[body_start..body_end]);
        self.prog.reactions.push(ReactionDecl {
            name,
            args,
            body_src,
        });
        Ok(())
    }

    fn reaction_arg(&mut self) -> PResult<ReactionArg> {
        for (kw, pipeline) in [("ing", Pipeline::Ingress), ("egr", Pipeline::Egress)] {
            if self.eat_keyword(kw) {
                // `ing hdr <instance>` measures a whole header; `hdr` is
                // only a keyword when not itself an instance reference
                // (`ing hdr.foo` must stay a field argument).
                if matches!(self.peek(), Some(Tok::Ident(s)) if s == "hdr")
                    && matches!(self.peek2(), Some(Tok::Ident(_)))
                {
                    self.pos += 1; // `hdr`
                    let instance = self.ident()?;
                    return Ok(ReactionArg::Header { pipeline, instance });
                }
                let target = self.target()?;
                let mask = if self.eat_keyword("mask") {
                    Some(lit(self.number()?))
                } else {
                    None
                };
                return Ok(ReactionArg::Field {
                    pipeline,
                    target,
                    mask,
                });
            }
        }
        if self.eat_keyword("reg") {
            let register = self.ident()?;
            self.expect(&Tok::LBracket)?;
            let lo = self.number()? as u32;
            self.expect(&Tok::Colon)?;
            let hi = self.number()? as u32;
            self.expect(&Tok::RBracket)?;
            if lo > hi {
                return self.err(format!("register slice [{lo}:{hi}] has lo > hi"));
            }
            return Ok(ReactionArg::Register { register, lo, hi });
        }
        self.err("expected reaction argument (`ing`, `egr`, or `reg`)")
    }

    fn control(&mut self) -> PResult<()> {
        self.keyword("control")?;
        let which = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let stmts = self.control_block()?;
        match which.as_str() {
            "ingress" => self.prog.ingress = stmts,
            "egress" => self.prog.egress = stmts,
            other => return self.err(format!("unknown control `{other}`")),
        }
        Ok(())
    }

    /// Parse control statements until the closing `}` (consumed).
    fn control_block(&mut self) -> PResult<Vec<ControlStmt>> {
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.eat_keyword("apply") {
                self.expect(&Tok::LParen)?;
                let t = self.ident()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                stmts.push(ControlStmt::Apply(t));
            } else if self.eat_keyword("if") {
                self.expect(&Tok::LParen)?;
                let cond = self.bool_expr()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::LBrace)?;
                let then_ = self.control_block()?;
                let else_ = if self.eat_keyword("else") {
                    self.expect(&Tok::LBrace)?;
                    self.control_block()?
                } else {
                    Vec::new()
                };
                stmts.push(ControlStmt::If { cond, then_, else_ });
            } else {
                return self.err("expected `apply` or `if` in control block");
            }
        }
        Ok(stmts)
    }

    fn bool_expr(&mut self) -> PResult<BoolExpr> {
        let mut lhs = self.bool_primary()?;
        loop {
            if self.eat_keyword("and") {
                let rhs = self.bool_primary()?;
                lhs = BoolExpr::And(Box::new(lhs), Box::new(rhs));
            } else if self.eat_keyword("or") {
                let rhs = self.bool_primary()?;
                lhs = BoolExpr::Or(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn bool_primary(&mut self) -> PResult<BoolExpr> {
        if self.eat_keyword("not") {
            let inner = self.bool_primary()?;
            return Ok(BoolExpr::Not(Box::new(inner)));
        }
        if self.eat(&Tok::LParen) {
            let e = self.bool_expr()?;
            self.expect(&Tok::RParen)?;
            return Ok(e);
        }
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == "valid") {
            self.pos += 1;
            self.expect(&Tok::LParen)?;
            let inst = self.ident()?;
            self.expect(&Tok::RParen)?;
            return Ok(BoolExpr::Valid(inst));
        }
        let lhs = self.operand()?;
        let op = match self.peek() {
            Some(Tok::EqEq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            _ => return self.err("expected comparison operator"),
        };
        self.pos += 1;
        let rhs = self.operand()?;
        Ok(BoolExpr::Cmp { lhs, op, rhs })
    }
}

/// Strip common leading whitespace and outer blank lines from a captured
/// reaction body so that `body_src` is readable on its own.
fn dedent(s: &str) -> String {
    let lines: Vec<&str> = s.lines().collect();
    let indent = lines
        .iter()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.len() - l.trim_start().len())
        .min()
        .unwrap_or(0);
    let mut out: Vec<String> = lines
        .iter()
        .map(|l| {
            let s = if l.len() >= indent {
                &l[indent.min(l.len() - l.trim_start().len())..]
            } else {
                l.trim_start()
            };
            s.trim_end().to_string()
        })
        .collect();
    while out.first().is_some_and(|l| l.trim().is_empty()) {
        out.remove(0);
    }
    while out.last().is_some_and(|l| l.trim().is_empty()) {
        out.pop();
    }
    out.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 1 example from the paper (lightly adapted: headers are
    /// declared so that references resolve).
    const FIG1: &str = r#"
header_type h_t {
    fields { foo : 32; bar : 32; baz : 32; qux : 32; }
}
header h_t hdr;

register qdepths {
    width : 32;
    instance_count : 16;
}

malleable value value_var { width : 16; init : 1; }
malleable field field_var {
    width : 32; init : hdr.foo;
    alts { hdr.foo, hdr.bar }
}
malleable table table_var {
    reads { ${field_var} : exact; }
    actions { my_action; my_drop; }
}
action my_action() {
    add(${field_var}, hdr.baz, ${value_var});
}
action my_drop() {
    drop();
}
reaction my_reaction(reg qdepths[1:10]) {
    uint16_t current_max = 0, max_port = 0;
    for (int i = 1; i <= 10; ++i)
        if (qdepths[i] > current_max) {
            current_max = qdepths[i]; max_port = i;
        }
    ${value_var} = max_port;
}
control ingress {
    apply(table_var);
}
"#;

    #[test]
    fn parses_figure_1() {
        let p = parse_program(FIG1).unwrap();
        assert_eq!(p.mbl_values.len(), 1);
        assert_eq!(p.mbl_values[0].name, "value_var");
        assert_eq!(p.mbl_values[0].width, 16);
        assert_eq!(p.mbl_values[0].init, Value::new(1, 16));
        assert_eq!(p.mbl_fields.len(), 1);
        assert_eq!(p.mbl_fields[0].alts.len(), 2);
        assert_eq!(p.tables.len(), 1);
        assert!(p.tables[0].malleable);
        assert_eq!(p.tables[0].reads[0].target, FieldOrMbl::mbl("field_var"));
        assert_eq!(p.reactions.len(), 1);
        let r = &p.reactions[0];
        assert_eq!(
            r.args,
            vec![ReactionArg::Register {
                register: "qdepths".into(),
                lo: 1,
                hi: 10
            }]
        );
        assert!(r.body_src.contains("${value_var} = max_port;"));
        assert!(r.body_src.starts_with("uint16_t current_max"));
        // Validates cleanly.
        assert!(
            p4_ast::validate::validate(&p).is_empty(),
            "{:?}",
            p4_ast::validate::validate(&p)
        );
    }

    #[test]
    fn parses_action_with_params_and_mbl_operand() {
        let src = r#"
header_type h_t { fields { a : 8; } }
header h_t h;
malleable value mv { width : 8; init : 3; }
action set_a(v) {
    modify_field(h.a, v);
    add(h.a, h.a, ${mv});
}
"#;
        let p = parse_program(src).unwrap();
        let a = p.action("set_a").unwrap();
        assert_eq!(a.params, vec!["v"]);
        assert_eq!(
            a.body[0],
            PrimitiveCall::ModifyField {
                dst: FieldOrMbl::field("h", "a"),
                src: Operand::Param("v".into()),
            }
        );
        assert_eq!(
            a.body[1],
            PrimitiveCall::Add {
                dst: FieldOrMbl::field("h", "a"),
                a: Operand::field("h", "a"),
                b: Operand::Mbl("mv".into()),
            }
        );
    }

    #[test]
    fn parses_table_attrs() {
        let src = r#"
header_type h_t { fields { a : 8; b : 32; } }
header h_t h;
action nop() { no_op(); }
table t {
    reads {
        h.a : exact;
        h.b mask 0xff : ternary;
        h.b : lpm;
    }
    actions { nop; }
    default_action : nop();
    size : 1024;
}
"#;
        let p = parse_program(src).unwrap();
        let t = p.table("t").unwrap();
        assert_eq!(t.reads.len(), 3);
        assert_eq!(t.reads[1].mask, Some(lit(0xff)));
        assert_eq!(t.reads[1].kind, MatchKind::Ternary);
        assert_eq!(t.reads[2].kind, MatchKind::Lpm);
        assert_eq!(t.size, Some(1024));
        assert_eq!(t.default_action, Some(("nop".into(), vec![])));
    }

    #[test]
    fn parses_parser_states() {
        let src = r#"
header_type eth_t { fields { dst : 48; src : 48; etype : 16; } }
header_type ipv4_t { fields { src : 32; dst : 32; proto : 8; } }
header eth_t eth;
header ipv4_t ipv4;
parser start {
    extract(eth);
    return select(eth.etype) {
        0x0800 : parse_ipv4;
        default : done;
    };
}
parser parse_ipv4 {
    extract(ipv4);
    return ingress;
}
parser done {
    return ingress;
}
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.parser_states.len(), 3);
        match &p.parser_states[0].next {
            ParserNext::Select {
                field,
                cases,
                default,
            } => {
                assert_eq!(field, &FieldRef::new("eth", "etype"));
                assert_eq!(cases.len(), 1);
                assert_eq!(default.as_deref(), Some("done"));
            }
            other => panic!("unexpected parser next: {other:?}"),
        }
        assert!(p4_ast::validate::validate(&p).is_empty());
    }

    #[test]
    fn parses_control_if_else() {
        let src = r#"
header_type h_t { fields { a : 8; } }
header h_t h;
action nop() { no_op(); }
table t1 { actions { nop; } }
table t2 { actions { nop; } }
control ingress {
    if (valid(h) and h.a == 1) {
        apply(t1);
    } else {
        apply(t2);
    }
}
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.ingress.len(), 1);
        match &p.ingress[0] {
            ControlStmt::If { cond, then_, else_ } => {
                assert!(matches!(cond, BoolExpr::And(_, _)));
                assert_eq!(then_, &vec![ControlStmt::Apply("t1".into())]);
                assert_eq!(else_, &vec![ControlStmt::Apply("t2".into())]);
            }
            other => panic!("unexpected stmt: {other:?}"),
        }
    }

    #[test]
    fn reaction_field_args() {
        let src = r#"
header_type h_t { fields { a : 8; } }
header h_t h;
reaction r(ing h.a, egr h.a) { int x = 0; }
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(
            p.reactions[0].args,
            vec![
                ReactionArg::Field {
                    pipeline: Pipeline::Ingress,
                    target: FieldOrMbl::field("h", "a"),
                    mask: None,
                },
                ReactionArg::Field {
                    pipeline: Pipeline::Egress,
                    target: FieldOrMbl::field("h", "a"),
                    mask: None,
                },
            ]
        );
    }

    #[test]
    fn hdr_keyword_vs_instance_named_hdr() {
        // `ing hdr flow` is a whole-header arg; `ing hdr.foo` is a field
        // arg on an instance that happens to be named `hdr`.
        let src = r#"
header_type h_t { fields { foo : 8; } }
header h_t hdr;
header h_t flow;
reaction r(ing hdr flow, egr hdr.foo) { int x = 0; }
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(
            p.reactions[0].args,
            vec![
                ReactionArg::Header {
                    pipeline: Pipeline::Ingress,
                    instance: "flow".into()
                },
                ReactionArg::Field {
                    pipeline: Pipeline::Egress,
                    target: FieldOrMbl::field("hdr", "foo"),
                    mask: None,
                },
            ]
        );
    }

    #[test]
    fn reaction_body_with_mbl_braces_balances() {
        // `${x}` inside the body contains a `{`-like token; ensure brace
        // matching accounts for MblOpen.
        let src = r#"
malleable value x { width : 8; init : 0; }
reaction r() { if (1) { ${x} = 2; } }
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.reactions[0].body_src, "if (1) { ${x} = 2; }");
    }

    #[test]
    fn counter_becomes_register() {
        let src = "counter c { type : packets; instance_count : 8; }";
        let p = parse_program(src).unwrap();
        let r = p.register("c").unwrap();
        assert_eq!(r.width, 64);
        assert_eq!(r.instance_count, 8);
    }

    #[test]
    fn egress_pipeline_register() {
        let src = "register q { width : 32; instance_count : 4; pipeline : egress; }";
        let p = parse_program(src).unwrap();
        assert_eq!(p.register("q").unwrap().pipeline, Pipeline::Egress);
    }

    #[test]
    fn error_reports_line() {
        let e = parse_program("header_type t {\n  oops\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_bad_register_slice() {
        let src = "register r { width : 32; instance_count : 8; }\nreaction x(reg r[5:2]) {}";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("lo > hi"));
    }

    #[test]
    fn rejects_unknown_primitive() {
        let e = parse_program("action a() { frobnicate(); }").unwrap_err();
        assert!(e.message.contains("unknown primitive"));
    }

    #[test]
    fn metadata_with_initializers() {
        let src = r#"
header_type m_t { fields { f : 4; } }
metadata m_t m { f : 2; }
"#;
        let p = parse_program(src).unwrap();
        let m = p.instance("m").unwrap();
        assert!(m.is_metadata);
        assert_eq!(m.initializers.len(), 1);
    }

    #[test]
    fn roundtrip_through_pretty_printer() {
        let p1 = parse_program(FIG1).unwrap();
        let printed = p4_ast::pretty::print_program(&p1);
        let p2 = parse_program(&printed).unwrap();
        // Structural fields survive a round trip.
        assert_eq!(p1.header_types, p2.header_types);
        assert_eq!(p1.tables, p2.tables);
        assert_eq!(p1.mbl_values, p2.mbl_values);
        assert_eq!(p1.mbl_fields, p2.mbl_fields);
        assert_eq!(p1.actions, p2.actions);
        assert_eq!(p1.ingress, p2.ingress);
        assert_eq!(p1.reactions[0].args, p2.reactions[0].args);
    }
}
