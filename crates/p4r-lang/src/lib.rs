//! # p4r-lang
//!
//! Front end for the P4R language of *Mantis: Reactive Programmable
//! Switches* (SIGCOMM 2020): a lexer and recursive-descent parser for the
//! P4-14 v1.0.5 subset plus the Figure 3 P4R extensions, and a separate
//! parser for the C-like reaction bodies.
//!
//! ```
//! let src = r#"
//! header_type h_t { fields { a : 8; } }
//! header h_t h;
//! malleable value thresh { width : 8; init : 10; }
//! reaction tune(ing h.a) {
//!     ${thresh} = h_a + 1;
//! }
//! "#;
//! let prog = p4r_lang::parse_program(src).unwrap();
//! assert_eq!(prog.mbl_values[0].name, "thresh");
//! let body = p4r_lang::creact::parse_body(&prog.reactions[0].body_src).unwrap();
//! assert_eq!(body.stmts.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod creact;
pub mod lexer;
pub mod parser;

pub use parser::{parse_program, ParseError};
