//! Parser for the C-like reaction bodies embedded in P4R programs.
//!
//! The paper compiles reaction bodies with `gcc` into shared objects. In this
//! reproduction, reaction bodies are parsed into an AST (this module) and
//! executed by the `reaction-interp` crate inside the Mantis agent's dialogue
//! loop. The language is the C subset the paper's examples use:
//!
//! * integer types (`intN_t`/`uintN_t`/`int`/`unsigned`), local and `static`
//!   variables, fixed-size arrays,
//! * the usual expressions: arithmetic, bitwise, logical, comparisons,
//!   assignment (including compound `+=` etc.), `++`/`--`, ternary `?:`,
//! * `if`/`else`, `while`, `for`, `break`, `continue`, `return`,
//! * malleable accesses `${name}` (read anywhere, write as assignment
//!   target),
//! * malleable-table calls `table.addEntry(...)`, `table.modEntry(...)`,
//!   `table.delEntry(...)`, `table.setDefault(...)`,
//! * free function calls into the agent's builtin library (`now_us()`,
//!   `abs()`, ...).

use crate::lexer::{lex, Spanned, Tok};
use crate::parser::ParseError;
use serde::{Deserialize, Serialize};

/// Integer type of a declared variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CType {
    /// `uintN_t` / `unsigned` — value wraps modulo 2^bits on store.
    UInt(u16),
    /// `intN_t` / `int` — two's-complement wrap at the given width.
    Int(u16),
}

impl CType {
    pub fn bits(&self) -> u16 {
        match self {
            CType::UInt(b) | CType::Int(b) => *b,
        }
    }

    pub fn is_signed(&self) -> bool {
        matches!(self, CType::Int(_))
    }
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LAnd,
    LOr,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnOp {
    Neg,
    Not,
    LNot,
}

/// Assignment targets.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LValue {
    /// Local/static variable or reaction argument.
    Var(String),
    /// Malleable write: `${name} = ...`.
    Mbl(String),
    /// Array element: `arr[idx] = ...`.
    Index(String, Box<Expr>),
}

/// Expressions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expr {
    Num(i128),
    Var(String),
    /// `${name}` read.
    Mbl(String),
    /// `name[index]` read (argument slices, local arrays).
    Index(String, Box<Expr>),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Builtin free-function call.
    Call(String, Vec<Expr>),
    /// Malleable-table method call: `table.addEntry(...)`.
    Method {
        receiver: String,
        method: String,
        args: Vec<Expr>,
    },
    /// `cond ? a : b`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Assignment as an expression: `x = e`, `x += e`, ...
    Assign {
        target: LValue,
        op: Option<BinOp>,
        value: Box<Expr>,
    },
    /// `++x`, `x++`, `--x`, `x--` (value semantics of pre/post preserved).
    Incr {
        target: LValue,
        delta: i8,
        post: bool,
    },
}

/// One declarator in a declaration: name, optional array length, optional
/// initializer.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Declarator {
    pub name: String,
    pub array_len: Option<usize>,
    pub init: Option<Expr>,
}

/// Statements.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    Decl {
        is_static: bool,
        ty: CType,
        decls: Vec<Declarator>,
    },
    Expr(Expr),
    If {
        cond: Expr,
        then_: Box<Stmt>,
        else_: Option<Box<Stmt>>,
    },
    While {
        cond: Expr,
        body: Box<Stmt>,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
    },
    Return(Option<Expr>),
    Break,
    Continue,
    Block(Vec<Stmt>),
    Empty,
}

/// A parsed reaction body.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Body {
    pub stmts: Vec<Stmt>,
}

type PResult<T> = Result<T, ParseError>;

/// Parse a reaction body (the text between the braces of a `reaction`).
pub fn parse_body(src: &str) -> PResult<Body> {
    let toks = lex(src)?;
    let mut p = CParser { src, pos: 0, toks };
    let mut stmts = Vec::new();
    while p.peek().is_some() {
        stmts.push(p.stmt()?);
    }
    Ok(Body { stmts })
}

struct CParser<'s> {
    src: &'s str,
    toks: Vec<Spanned>,
    pos: usize,
}

impl CParser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek_at(&self, n: usize) -> Option<&Tok> {
        self.toks.get(self.pos + n).map(|s| &s.tok)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| s.line)
            .unwrap_or(1)
    }

    fn col(&self) -> u32 {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| s.col)
            .unwrap_or(1)
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError::at(self.src, msg, self.line(), self.col()))
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> PResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            match self.peek() {
                Some(got) => self.err(format!("expected {t}, found {got}")),
                None => self.err(format!("expected {t}, found end of input")),
            }
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            Some(got) => self.err(format!("expected identifier, found {got}")),
            None => self.err("expected identifier, found end of input"),
        }
    }

    // -- types --------------------------------------------------------------

    /// Try to parse a type name; returns `None` without consuming if the
    /// next tokens are not a type.
    fn try_type(&mut self) -> Option<CType> {
        let Some(Tok::Ident(name)) = self.peek() else {
            return None;
        };
        let ty = parse_type_name(name)?;
        // `unsigned int` / `unsigned long` forms: consume a following bare
        // `int`/`long` if present.
        self.pos += 1;
        if matches!(ty, CType::UInt(_) | CType::Int(_)) {
            if let Some(Tok::Ident(next)) = self.peek() {
                if next == "int" || next == "long" {
                    let wide = next == "long";
                    self.pos += 1;
                    return Some(match ty {
                        CType::UInt(_) => CType::UInt(if wide { 64 } else { 32 }),
                        CType::Int(_) => CType::Int(if wide { 64 } else { 32 }),
                    });
                }
            }
        }
        Some(ty)
    }

    // -- statements ----------------------------------------------------------

    fn stmt(&mut self) -> PResult<Stmt> {
        match self.peek().cloned() {
            Some(Tok::Semi) => {
                self.pos += 1;
                Ok(Stmt::Empty)
            }
            Some(Tok::LBrace) => {
                self.pos += 1;
                let mut stmts = Vec::new();
                while !self.eat(&Tok::RBrace) {
                    if self.peek().is_none() {
                        return self.err("unterminated block");
                    }
                    stmts.push(self.stmt()?);
                }
                Ok(Stmt::Block(stmts))
            }
            Some(Tok::Ident(kw)) => match kw.as_str() {
                "if" => self.if_stmt(),
                "while" => self.while_stmt(),
                "for" => self.for_stmt(),
                "return" => {
                    self.pos += 1;
                    if self.eat(&Tok::Semi) {
                        Ok(Stmt::Return(None))
                    } else {
                        let e = self.expr()?;
                        self.expect(&Tok::Semi)?;
                        Ok(Stmt::Return(Some(e)))
                    }
                }
                "break" => {
                    self.pos += 1;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Break)
                }
                "continue" => {
                    self.pos += 1;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Continue)
                }
                "static" => {
                    self.pos += 1;
                    let Some(ty) = self.try_type() else {
                        return self.err("expected type after `static`");
                    };
                    self.decl(true, ty)
                }
                _ => {
                    if let Some(ty) = self.try_type() {
                        self.decl(false, ty)
                    } else {
                        let e = self.expr()?;
                        self.expect(&Tok::Semi)?;
                        Ok(Stmt::Expr(e))
                    }
                }
            },
            Some(_) => {
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
            None => self.err("expected statement, found end of input"),
        }
    }

    fn decl(&mut self, is_static: bool, ty: CType) -> PResult<Stmt> {
        let mut decls = Vec::new();
        loop {
            let name = self.ident()?;
            let array_len = if self.eat(&Tok::LBracket) {
                let n = match self.peek().cloned() {
                    Some(Tok::Number(n)) => {
                        self.pos += 1;
                        n as usize
                    }
                    _ => return self.err("array length must be a constant"),
                };
                self.expect(&Tok::RBracket)?;
                Some(n)
            } else {
                None
            };
            let init = if self.eat(&Tok::Eq) {
                Some(self.assign_expr()?)
            } else {
                None
            };
            decls.push(Declarator {
                name,
                array_len,
                init,
            });
            if self.eat(&Tok::Semi) {
                break;
            }
            self.expect(&Tok::Comma)?;
        }
        Ok(Stmt::Decl {
            is_static,
            ty,
            decls,
        })
    }

    fn if_stmt(&mut self) -> PResult<Stmt> {
        self.pos += 1; // `if`
        self.expect(&Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen)?;
        let then_ = Box::new(self.stmt()?);
        let else_ = if matches!(self.peek(), Some(Tok::Ident(s)) if s == "else") {
            self.pos += 1;
            Some(Box::new(self.stmt()?))
        } else {
            None
        };
        Ok(Stmt::If { cond, then_, else_ })
    }

    fn while_stmt(&mut self) -> PResult<Stmt> {
        self.pos += 1; // `while`
        self.expect(&Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen)?;
        let body = Box::new(self.stmt()?);
        Ok(Stmt::While { cond, body })
    }

    fn for_stmt(&mut self) -> PResult<Stmt> {
        self.pos += 1; // `for`
        self.expect(&Tok::LParen)?;
        let init = if self.eat(&Tok::Semi) {
            None
        } else {
            // The init clause may be a declaration or an expression; `stmt`
            // consumes the `;` in both cases.
            Some(Box::new(self.stmt()?))
        };
        let cond = if self.eat(&Tok::Semi) {
            None
        } else {
            let e = self.expr()?;
            self.expect(&Tok::Semi)?;
            Some(e)
        };
        let step = if self.peek() == Some(&Tok::RParen) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(&Tok::RParen)?;
        let body = Box::new(self.stmt()?);
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
        })
    }

    // -- expressions (precedence climbing) -----------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> PResult<Expr> {
        // Try to parse an lvalue followed by an assignment operator. We
        // detect this by lookahead to avoid backtracking in the common case.
        if let Some((target, consumed)) = self.try_lvalue()? {
            let op = match self.peek_at(consumed) {
                Some(Tok::Eq) => Some(None),
                Some(Tok::PlusEq) => Some(Some(BinOp::Add)),
                Some(Tok::MinusEq) => Some(Some(BinOp::Sub)),
                Some(Tok::StarEq) => Some(Some(BinOp::Mul)),
                Some(Tok::SlashEq) => Some(Some(BinOp::Div)),
                Some(Tok::PercentEq) => Some(Some(BinOp::Rem)),
                Some(Tok::AmpEq) => Some(Some(BinOp::And)),
                Some(Tok::PipeEq) => Some(Some(BinOp::Or)),
                Some(Tok::CaretEq) => Some(Some(BinOp::Xor)),
                Some(Tok::ShlEq) => Some(Some(BinOp::Shl)),
                Some(Tok::ShrEq) => Some(Some(BinOp::Shr)),
                _ => None,
            };
            if let Some(op) = op {
                self.pos += consumed + 1; // lvalue + operator
                let value = Box::new(self.assign_expr()?);
                return Ok(Expr::Assign { target, op, value });
            }
        }
        self.ternary()
    }

    /// If the upcoming tokens form an lvalue, return it along with the
    /// number of tokens it spans, *without consuming them*.
    fn try_lvalue(&mut self) -> PResult<Option<(LValue, usize)>> {
        match self.peek() {
            Some(Tok::MblOpen) => {
                if let (Some(Tok::Ident(name)), Some(Tok::RBrace)) =
                    (self.peek_at(1), self.peek_at(2))
                {
                    Ok(Some((LValue::Mbl(name.clone()), 3)))
                } else {
                    Ok(None)
                }
            }
            Some(Tok::Ident(name)) => {
                let name = name.clone();
                if self.peek_at(1) == Some(&Tok::LBracket) {
                    // Scan to the matching `]`; the index is parsed properly
                    // only if an assignment operator follows.
                    let mut depth = 0usize;
                    let mut i = 1usize;
                    loop {
                        match self.peek_at(i) {
                            Some(Tok::LBracket) => depth += 1,
                            Some(Tok::RBracket) => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            Some(_) => {}
                            None => return Ok(None),
                        }
                        i += 1;
                    }
                    // Parse the index sub-expression on a clone of positions.
                    let save = self.pos;
                    self.pos += 2; // name + `[`
                    let idx = self.expr()?;
                    // We must now be at the matching `]`.
                    if self.peek() != Some(&Tok::RBracket) {
                        self.pos = save;
                        return Ok(None);
                    }
                    let consumed = self.pos - save + 1;
                    self.pos = save;
                    Ok(Some((LValue::Index(name, Box::new(idx)), consumed)))
                } else {
                    Ok(Some((LValue::Var(name), 1)))
                }
            }
            _ => Ok(None),
        }
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let cond = self.logical_or()?;
        if self.eat(&Tok::Question) {
            let a = self.expr()?;
            self.expect(&Tok::Colon)?;
            let b = self.expr()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)))
        } else {
            Ok(cond)
        }
    }

    fn logical_or(&mut self) -> PResult<Expr> {
        let mut lhs = self.logical_and()?;
        while self.eat(&Tok::PipePipe) {
            let rhs = self.logical_and()?;
            lhs = Expr::Binary(BinOp::LOr, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> PResult<Expr> {
        let mut lhs = self.bit_or()?;
        while self.eat(&Tok::AmpAmp) {
            let rhs = self.bit_or()?;
            lhs = Expr::Binary(BinOp::LAnd, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> PResult<Expr> {
        let mut lhs = self.bit_xor()?;
        while self.eat(&Tok::Pipe) {
            let rhs = self.bit_xor()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> PResult<Expr> {
        let mut lhs = self.bit_and()?;
        while self.eat(&Tok::Caret) {
            let rhs = self.bit_and()?;
            lhs = Expr::Binary(BinOp::Xor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> PResult<Expr> {
        let mut lhs = self.equality()?;
        while self.eat(&Tok::Amp) {
            let rhs = self.equality()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> PResult<Expr> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                Some(Tok::EqEq) => BinOp::Eq,
                Some(Tok::Ne) => BinOp::Ne,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.relational()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn relational(&mut self) -> PResult<Expr> {
        let mut lhs = self.shift()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Lt) => BinOp::Lt,
                Some(Tok::Le) => BinOp::Le,
                Some(Tok::Gt) => BinOp::Gt,
                Some(Tok::Ge) => BinOp::Ge,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.shift()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn shift(&mut self) -> PResult<Expr> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Shl) => BinOp::Shl,
                Some(Tok::Shr) => BinOp::Shr,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.additive()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn additive(&mut self) -> PResult<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn multiplicative(&mut self) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary(&mut self) -> PResult<Expr> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            Some(Tok::Tilde) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            Some(Tok::Bang) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::LNot, Box::new(self.unary()?)))
            }
            Some(Tok::PlusPlus) | Some(Tok::MinusMinus) => {
                let delta = if self.peek() == Some(&Tok::PlusPlus) {
                    1
                } else {
                    -1
                };
                self.pos += 1;
                let Some((target, consumed)) = self.try_lvalue()? else {
                    return self.err("expected lvalue after `++`/`--`");
                };
                self.pos += consumed;
                Ok(Expr::Incr {
                    target,
                    delta,
                    post: false,
                })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Some(Tok::PlusPlus) | Some(Tok::MinusMinus) => {
                    let delta = if self.peek() == Some(&Tok::PlusPlus) {
                        1
                    } else {
                        -1
                    };
                    let target = match &e {
                        Expr::Var(n) => LValue::Var(n.clone()),
                        Expr::Mbl(n) => LValue::Mbl(n.clone()),
                        Expr::Index(n, i) => LValue::Index(n.clone(), i.clone()),
                        _ => return self.err("`++`/`--` target must be an lvalue"),
                    };
                    self.pos += 1;
                    e = Expr::Incr {
                        target,
                        delta,
                        post: true,
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> PResult<Expr> {
        match self.peek().cloned() {
            Some(Tok::Number(n)) => {
                self.pos += 1;
                Ok(Expr::Num(n as i128))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                // Parenthesized expression or a C cast like `(uint32_t) e`.
                if let Some(Tok::Ident(name)) = self.peek() {
                    if parse_type_name(name).is_some() && self.peek_at(1) == Some(&Tok::RParen) {
                        let ty = parse_type_name(name).unwrap();
                        self.pos += 2;
                        let inner = self.unary()?;
                        // Casts are modelled as a truncating builtin.
                        return Ok(Expr::Call(
                            format!(
                                "__cast_{}{}",
                                if ty.is_signed() { "i" } else { "u" },
                                ty.bits()
                            ),
                            vec![inner],
                        ));
                    }
                }
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::MblOpen) => {
                self.pos += 1;
                let name = self.ident()?;
                self.expect(&Tok::RBrace)?;
                Ok(Expr::Mbl(name))
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                match self.peek() {
                    Some(Tok::LParen) => {
                        self.pos += 1;
                        let args = self.call_args()?;
                        Ok(Expr::Call(name, args))
                    }
                    Some(Tok::LBracket) => {
                        self.pos += 1;
                        let idx = self.expr()?;
                        self.expect(&Tok::RBracket)?;
                        Ok(Expr::Index(name, Box::new(idx)))
                    }
                    Some(Tok::Dot) => {
                        self.pos += 1;
                        let method = self.ident()?;
                        self.expect(&Tok::LParen)?;
                        let args = self.call_args()?;
                        Ok(Expr::Method {
                            receiver: name,
                            method,
                            args,
                        })
                    }
                    _ => Ok(Expr::Var(name)),
                }
            }
            Some(got) => self.err(format!("expected expression, found {got}")),
            None => self.err("expected expression, found end of input"),
        }
    }

    fn call_args(&mut self) -> PResult<Vec<Expr>> {
        let mut args = Vec::new();
        if self.eat(&Tok::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if self.eat(&Tok::RParen) {
                return Ok(args);
            }
            self.expect(&Tok::Comma)?;
        }
    }
}

/// Recognize C integer type names.
fn parse_type_name(name: &str) -> Option<CType> {
    match name {
        "int" => Some(CType::Int(32)),
        "long" => Some(CType::Int(64)),
        "unsigned" => Some(CType::UInt(32)),
        "int8_t" => Some(CType::Int(8)),
        "int16_t" => Some(CType::Int(16)),
        "int32_t" => Some(CType::Int(32)),
        "int64_t" => Some(CType::Int(64)),
        "uint8_t" => Some(CType::UInt(8)),
        "uint16_t" => Some(CType::UInt(16)),
        "uint32_t" => Some(CType::UInt(32)),
        "uint64_t" => Some(CType::UInt(64)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Body {
        parse_body(src).unwrap()
    }

    #[test]
    fn parses_figure_1_body() {
        let src = r#"
uint16_t current_max = 0, max_port = 0;
for (int i = 1; i <= 10; ++i)
    if (qdepths[i] > current_max) {
        current_max = qdepths[i]; max_port = i;
    }
${value_var} = max_port;
"#;
        let b = parse(src);
        assert_eq!(b.stmts.len(), 3);
        match &b.stmts[0] {
            Stmt::Decl {
                is_static,
                ty,
                decls,
            } => {
                assert!(!is_static);
                assert_eq!(*ty, CType::UInt(16));
                assert_eq!(decls.len(), 2);
                assert_eq!(decls[0].name, "current_max");
                assert_eq!(decls[0].init, Some(Expr::Num(0)));
            }
            other => panic!("unexpected: {other:?}"),
        }
        match &b.stmts[1] {
            Stmt::For {
                init, cond, step, ..
            } => {
                assert!(init.is_some());
                assert!(cond.is_some());
                assert!(matches!(step, Some(Expr::Incr { post: false, .. })));
            }
            other => panic!("unexpected: {other:?}"),
        }
        match &b.stmts[2] {
            Stmt::Expr(Expr::Assign { target, op, .. }) => {
                assert_eq!(target, &LValue::Mbl("value_var".into()));
                assert!(op.is_none());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_before_add() {
        let b = parse("int x = 1 + 2 * 3;");
        match &b.stmts[0] {
            Stmt::Decl { decls, .. } => match decls[0].init.as_ref().unwrap() {
                Expr::Binary(BinOp::Add, lhs, rhs) => {
                    assert_eq!(**lhs, Expr::Num(1));
                    assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
                }
                other => panic!("unexpected: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn precedence_shift_vs_relational() {
        // `a << 1 < b` parses as `(a << 1) < b`.
        let b = parse("int x = a << 1 < b;");
        match &b.stmts[0] {
            Stmt::Decl { decls, .. } => {
                assert!(matches!(
                    decls[0].init.as_ref().unwrap(),
                    Expr::Binary(BinOp::Lt, _, _)
                ));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn compound_assignment() {
        let b = parse("x += 2; arr[i] -= 1; ${m} = 5;");
        assert!(matches!(
            &b.stmts[0],
            Stmt::Expr(Expr::Assign {
                op: Some(BinOp::Add),
                ..
            })
        ));
        match &b.stmts[1] {
            Stmt::Expr(Expr::Assign { target, op, .. }) => {
                assert!(matches!(target, LValue::Index(n, _) if n == "arr"));
                assert_eq!(*op, Some(BinOp::Sub));
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(matches!(
            &b.stmts[2],
            Stmt::Expr(Expr::Assign {
                target: LValue::Mbl(_),
                ..
            })
        ));
    }

    #[test]
    fn static_arrays_and_while() {
        let b = parse("static uint64_t tbl[4096]; while (i < 10) { i++; }");
        match &b.stmts[0] {
            Stmt::Decl {
                is_static, decls, ..
            } => {
                assert!(is_static);
                assert_eq!(decls[0].array_len, Some(4096));
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(matches!(&b.stmts[1], Stmt::While { .. }));
    }

    #[test]
    fn table_method_calls() {
        let b = parse("table_var.addEntry(1, 2, 3); table_var.delEntry(0);");
        match &b.stmts[0] {
            Stmt::Expr(Expr::Method {
                receiver,
                method,
                args,
            }) => {
                assert_eq!(receiver, "table_var");
                assert_eq!(method, "addEntry");
                assert_eq!(args.len(), 3);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn ternary_and_logical() {
        let b = parse("int x = a > b && c || !d ? 1 : 0;");
        assert!(matches!(
            &b.stmts[0],
            Stmt::Decl { decls, .. }
                if matches!(decls[0].init.as_ref().unwrap(), Expr::Ternary(_, _, _))
        ));
    }

    #[test]
    fn casts_become_builtin_calls() {
        let b = parse("int x = (uint32_t) y;");
        match &b.stmts[0] {
            Stmt::Decl { decls, .. } => match decls[0].init.as_ref().unwrap() {
                Expr::Call(name, args) => {
                    assert_eq!(name, "__cast_u32");
                    assert_eq!(args.len(), 1);
                }
                other => panic!("unexpected: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn post_and_pre_increment() {
        let b = parse("x++; ++x; x--; --x;");
        let posts: Vec<bool> = b
            .stmts
            .iter()
            .map(|s| match s {
                Stmt::Expr(Expr::Incr { post, .. }) => *post,
                other => panic!("unexpected: {other:?}"),
            })
            .collect();
        assert_eq!(posts, vec![true, false, true, false]);
    }

    #[test]
    fn for_with_empty_clauses() {
        let b = parse("for (;;) { break; }");
        match &b.stmts[0] {
            Stmt::For {
                init, cond, step, ..
            } => {
                assert!(init.is_none());
                assert!(cond.is_none());
                assert!(step.is_none());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn dangling_else_binds_inner() {
        let b = parse("if (a) if (b) x = 1; else x = 2;");
        match &b.stmts[0] {
            Stmt::If { else_, then_, .. } => {
                assert!(else_.is_none());
                assert!(matches!(**then_, Stmt::If { else_: Some(_), .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn builtin_calls() {
        let b = parse("uint64_t t = now_us(); int d = abs(a - b);");
        assert_eq!(b.stmts.len(), 2);
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_body("int = ;").is_err());
        assert!(parse_body("if (").is_err());
        assert!(parse_body("{ unclosed").is_err());
    }

    #[test]
    fn unsigned_long_parses() {
        let b = parse("unsigned long x = 1;");
        assert!(matches!(
            &b.stmts[0],
            Stmt::Decl {
                ty: CType::UInt(64),
                ..
            }
        ));
    }
}
