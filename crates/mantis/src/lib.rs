//! # mantis
//!
//! The facade crate of the Mantis reproduction — a from-scratch Rust
//! implementation of *Mantis: Reactive Programmable Switches* (SIGCOMM
//! 2020): the P4R language, the Mantis compiler, a deterministic RMT
//! switch simulator, the reactive control-plane agent with serializable
//! isolation, and a discrete-event network simulator.
//!
//! The quickest way in is [`Testbed`]:
//!
//! ```
//! use mantis::Testbed;
//!
//! let src = r#"
//! header_type h_t { fields { a : 32; } }
//! header h_t h;
//! malleable value boost { width : 32; init : 5; }
//! action bump() { add_to_field(h.a, ${boost}); }
//! table t { actions { bump; } default_action : bump(); }
//! reaction tune(ing h.a) {
//!     if (h_a > 100) { ${boost} = 1; }
//! }
//! control ingress { apply(t); }
//! "#;
//! let mut tb = Testbed::from_p4r(src).unwrap();
//! tb.agent.borrow_mut().register_all_interpreted().unwrap();
//! tb.sim.switch().borrow_mut().inject(
//!     &mantis::rmt_sim::PacketDesc::new(0).field("h", "a", 200).payload(64),
//! );
//! tb.agent.borrow_mut().dialogue_iteration().unwrap();
//! assert_eq!(tb.agent.borrow().slot("boost"), Some(1));
//! ```

#![forbid(unsafe_code)]

pub use mantis_agent;
pub use mantis_apps as apps;
pub use mantis_telemetry as telemetry;
pub use netsim;
pub use p4_ast;
pub use p4r_compiler;
pub use p4r_lang;
pub use reaction_interp;
pub use rmt_sim;

pub use mantis_agent::{
    schedule_agent, schedule_paced_agent, AgentError, AgentErrorKind, AgentPhase, CostModel,
    MantisAgent, NativeReaction, ReactionCtx, ReactionFailure,
};
pub use mantis_faults::{
    BreakerConfig, BreakerState, CircuitBreaker, FaultInjector, FaultOp, FaultPlan, FaultWindow,
    RetryPolicy,
};
pub use mantis_telemetry::{Scope, Telemetry, TelemetryConfig};
pub use p4r_compiler::{compile_source, CompileError, Compiled, CompilerOptions};
pub use rmt_sim::{Clock, Switch, SwitchConfig};

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Everything wired together: a compiled program loaded into a simulated
/// switch, a Mantis agent attached to it (prologue already run), and a
/// network simulator sharing the same virtual clock.
pub struct Testbed {
    pub compiled: Compiled,
    pub sim: netsim::Simulator,
    pub agent: Rc<RefCell<MantisAgent>>,
    /// Shared observability handle: the agent, driver, switch, and flow
    /// sources all record into this one registry/tracer.
    pub telemetry: Rc<Telemetry>,
}

impl fmt::Debug for Testbed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Testbed").finish_non_exhaustive()
    }
}

/// Errors from testbed construction.
#[derive(Debug)]
pub enum TestbedError {
    Compile(CompileError),
    Load(rmt_sim::LoadError),
    Agent(AgentError),
}

impl fmt::Display for TestbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestbedError::Compile(e) => write!(f, "compile: {e}"),
            TestbedError::Load(e) => write!(f, "load: {e}"),
            TestbedError::Agent(e) => write!(f, "agent: {e}"),
        }
    }
}

impl std::error::Error for TestbedError {}

/// Number of hardware pipes requested via the `MANTIS_PIPES` environment
/// variable (tests and CI legs sweep pipe counts this way); 1 when unset
/// or unparsable.
pub fn pipes_from_env() -> u16 {
    std::env::var("MANTIS_PIPES")
        .ok()
        .and_then(|v| v.parse::<u16>().ok())
        .map_or(1, |p| p.max(1))
}

impl Testbed {
    /// Compile P4R source, load it into a default-config switch, attach an
    /// agent (running its prologue), and wrap everything in a simulator.
    pub fn from_p4r(src: &str) -> Result<Testbed, TestbedError> {
        Testbed::with_config(src, SwitchConfig::default(), CostModel::default())
    }

    /// Compile and load onto a switch with `num_pipes` hardware pipes
    /// (other switch and cost settings default). `num_pipes = 1` is
    /// behaviorally identical to [`Testbed::from_p4r`].
    pub fn from_p4r_with_pipes(src: &str, num_pipes: u16) -> Result<Testbed, TestbedError> {
        Testbed::with_config(
            src,
            SwitchConfig {
                num_pipes,
                ..SwitchConfig::default()
            },
            CostModel::default(),
        )
    }

    /// Same, with explicit switch/cost configuration.
    pub fn with_config(
        src: &str,
        switch_cfg: SwitchConfig,
        cost: CostModel,
    ) -> Result<Testbed, TestbedError> {
        let compiled =
            compile_source(src, &CompilerOptions::default()).map_err(TestbedError::Compile)?;
        let clock = Clock::new();
        let spec = rmt_sim::load(&compiled.p4).map_err(TestbedError::Load)?;
        let telemetry = Telemetry::shared();
        let switch = Rc::new(RefCell::new(Switch::new(spec, switch_cfg, clock)));
        switch.borrow_mut().set_telemetry(telemetry.clone());
        let mut agent = MantisAgent::new(switch.clone(), &compiled, cost);
        agent.set_telemetry(telemetry.clone());
        agent.prologue().map_err(TestbedError::Agent)?;
        let sim = netsim::Simulator::new(switch);
        Ok(Testbed {
            compiled,
            sim,
            agent: Rc::new(RefCell::new(agent)),
            telemetry,
        })
    }

    /// Dump the run so far as Chrome `trace_event` JSON (open in
    /// Perfetto or `chrome://tracing`).
    pub fn chrome_trace(&self) -> String {
        self.telemetry.chrome_trace_json()
    }

    /// Dump the metrics registry (counters, gauges, p50/p95/p99
    /// histogram summaries) as flat JSON.
    pub fn telemetry_snapshot(&self) -> String {
        self.telemetry.snapshot_json()
    }

    /// Schedule the dialogue loop: back-to-back when `pace_ns == 0`, else
    /// one iteration per `pace_ns`.
    pub fn start_agent(&mut self, pace_ns: u64) {
        if pace_ns == 0 {
            mantis_agent::schedule_agent(&mut self.sim, self.agent.clone(), 0);
        } else {
            mantis_agent::schedule_paced_agent(&mut self.sim, self.agent.clone(), pace_ns, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_compiles_and_reacts() {
        let src = r#"
header_type h_t { fields { a : 32; } }
header h_t h;
malleable value knob { width : 32; init : 0; }
action touch() { add_to_field(h.a, ${knob}); }
table t { actions { touch; } default_action : touch(); }
reaction r(ing h.a) { ${knob} = h_a + 1; }
control ingress { apply(t); }
"#;
        let mut tb = Testbed::from_p4r(src).unwrap();
        tb.agent.borrow_mut().register_all_interpreted().unwrap();
        tb.start_agent(10_000);
        tb.sim
            .switch()
            .borrow_mut()
            .inject(&rmt_sim::PacketDesc::new(0).field("h", "a", 41).payload(64));
        tb.sim.run_until(100_000);
        assert_eq!(tb.agent.borrow().slot("knob"), Some(42));
    }

    #[test]
    fn bad_source_reports_compile_error() {
        assert!(matches!(
            Testbed::from_p4r("this is not p4r"),
            Err(TestbedError::Compile(_))
        ));
    }
}
