//! # mantis
//!
//! The facade crate of the Mantis reproduction — a from-scratch Rust
//! implementation of *Mantis: Reactive Programmable Switches* (SIGCOMM
//! 2020): the P4R language, the Mantis compiler, a deterministic RMT
//! switch simulator, the reactive control-plane agent with serializable
//! isolation, and a discrete-event network simulator.
//!
//! The quickest way in is [`Testbed`]:
//!
//! ```
//! use mantis::Testbed;
//!
//! let src = r#"
//! header_type h_t { fields { a : 32; } }
//! header h_t h;
//! malleable value boost { width : 32; init : 5; }
//! action bump() { add_to_field(h.a, ${boost}); }
//! table t { actions { bump; } default_action : bump(); }
//! reaction tune(ing h.a) {
//!     if (h_a > 100) { ${boost} = 1; }
//! }
//! control ingress { apply(t); }
//! "#;
//! let mut tb = Testbed::from_p4r(src).unwrap();
//! tb.agent.borrow_mut().register_all_interpreted().unwrap();
//! tb.sim.switch().borrow_mut().inject(
//!     &mantis::rmt_sim::PacketDesc::new(0).field("h", "a", 200).payload(64),
//! );
//! tb.agent.borrow_mut().dialogue_iteration().unwrap();
//! assert_eq!(tb.agent.borrow().slot("boost"), Some(1));
//! ```

#![forbid(unsafe_code)]

pub use mantis_agent;
pub use mantis_apps as apps;
pub use mantis_control as control;
pub use mantis_telemetry as telemetry;
pub use netsim;
pub use p4_ast;
pub use p4r_compiler;
pub use p4r_lang;
pub use reaction_interp;
pub use rmt_sim;

pub use mantis_agent::{
    schedule_agent, schedule_fabric_agents, schedule_paced_agent, AgentError, AgentErrorKind,
    AgentPhase, CostModel, MantisAgent, NativeReaction, ReactionCtx, ReactionEngine,
    ReactionFailure,
};
pub use mantis_control::{ChannelConfig, ControlPlane, Controller, ControllerConfig, RemoteDriver};
pub use mantis_faults::{
    BreakerConfig, BreakerState, CircuitBreaker, FaultInjector, FaultOp, FaultPlan, FaultWindow,
    RetryPolicy,
};
pub use mantis_telemetry::{Scope, Telemetry, TelemetryConfig};
pub use netsim::{Endpoint, Link, Topology};
pub use p4r_compiler::{compile_source, CompileError, Compiled, CompilerOptions};
pub use rmt_sim::{Clock, SharedSwitch, Switch, SwitchConfig};

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// Everything wired together: a compiled program loaded into a simulated
/// switch, a Mantis agent attached to it (prologue already run), and a
/// network simulator sharing the same virtual clock.
pub struct Testbed {
    pub compiled: Compiled,
    pub sim: netsim::Simulator,
    pub agent: Rc<RefCell<MantisAgent>>,
    /// Shared observability handle: the agent, driver, switch, and flow
    /// sources all record into this one registry/tracer.
    pub telemetry: Arc<Telemetry>,
    /// The switch-side control-plane endpoint when the agent drives the
    /// switch remotely ([`DriverMode::Remote`]); `None` on a local driver.
    pub plane: Option<Rc<RefCell<ControlPlane>>>,
}

impl fmt::Debug for Testbed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Testbed").finish_non_exhaustive()
    }
}

/// Errors from testbed construction.
#[derive(Debug)]
pub enum TestbedError {
    Compile(CompileError),
    Load(rmt_sim::LoadError),
    Agent(AgentError),
}

impl fmt::Display for TestbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestbedError::Compile(e) => write!(f, "compile: {e}"),
            TestbedError::Load(e) => write!(f, "load: {e}"),
            TestbedError::Agent(e) => write!(f, "agent: {e}"),
        }
    }
}

impl std::error::Error for TestbedError {}

/// Upper clamp for `MANTIS_*` count knobs. Far beyond anything the
/// simulator meaningfully models, but low enough that a fat-fingered CI
/// matrix entry degrades loudly instead of allocating absurd state.
pub const MAX_ENV_COUNT: u16 = 64;

/// Parse a `MANTIS_*` count knob: a positive integer clamped to
/// [`MAX_ENV_COUNT`], or `default` with a one-line warning on stderr when
/// the value is malformed or zero (a misspelled CI matrix entry should
/// degrade loudly, not silently). Unset (`None`) is the quiet default.
pub fn parse_env_count(name: &str, raw: Option<&str>, default: u16) -> u16 {
    let Some(raw) = raw else {
        return default;
    };
    match raw.trim().parse::<u16>() {
        Ok(n) if (1..=MAX_ENV_COUNT).contains(&n) => n,
        Ok(n) if n > MAX_ENV_COUNT => {
            eprintln!("warning: {name}={raw:?} exceeds the {MAX_ENV_COUNT} cap; clamping");
            MAX_ENV_COUNT
        }
        _ => {
            eprintln!("warning: {name}={raw:?} is not a positive count; using default {default}");
            default
        }
    }
}

/// Parse a `MANTIS_*` boolean knob: `1`/`true`/`yes`/`on` and
/// `0`/`false`/`no`/`off` (case-insensitive, whitespace-tolerant), or
/// `default` with a warning on anything else. Unset (`None`) is the quiet
/// default.
pub fn parse_env_flag(name: &str, raw: Option<&str>, default: bool) -> bool {
    let Some(raw) = raw else {
        return default;
    };
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => true,
        "0" | "false" | "no" | "off" => false,
        _ => {
            eprintln!("warning: {name}={raw:?} is not a boolean; using default {default}");
            default
        }
    }
}

/// Number of hardware pipes requested via the `MANTIS_PIPES` environment
/// variable (tests and CI legs sweep pipe counts this way); 1 when unset,
/// and 1 with a warning when malformed or zero.
pub fn pipes_from_env() -> u16 {
    let raw = std::env::var("MANTIS_PIPES").ok();
    parse_env_count("MANTIS_PIPES", raw.as_deref(), 1)
}

/// Number of fabric switches requested via the `MANTIS_SWITCHES`
/// environment variable — the twin of [`pipes_from_env`] for fabric-aware
/// tests and CI legs; 1 when unset, and 1 with a warning when malformed
/// or zero.
pub fn switches_from_env() -> u16 {
    let raw = std::env::var("MANTIS_SWITCHES").ok();
    parse_env_count("MANTIS_SWITCHES", raw.as_deref(), 1)
}

/// Pump worker count requested via the `MANTIS_WORKERS` environment
/// variable — the parallel-runtime sibling of [`pipes_from_env`] /
/// [`switches_from_env`]. Defaults to the host's available parallelism
/// when unset (so a multi-core machine shards by default), and to that
/// same default with a warning when malformed or zero. The simulator
/// clamps further to the switch count; 1 disables the pool entirely.
pub fn workers_from_env() -> u16 {
    let raw = std::env::var("MANTIS_WORKERS").ok();
    let default = std::thread::available_parallelism()
        .map(|n| n.get().min(usize::from(MAX_ENV_COUNT)) as u16)
        .unwrap_or(1);
    parse_env_count("MANTIS_WORKERS", raw.as_deref(), default)
}

/// Upper clamp for [`flows_from_env`]: roughly 5× the paper's Fig. 14
/// block (~370 K flows), so a scaled-up run stays possible while a
/// garbage value cannot allocate unbounded flow state.
pub const MAX_ENV_FLOWS: u64 = 2_000_000;

/// Parse a wide `MANTIS_*` count knob (flow counts overflow the `u16`
/// range [`parse_env_count`] serves): a positive integer clamped to
/// `cap`, or `default` with a one-line warning on stderr when malformed
/// or zero. Unset (`None`) is the quiet default.
pub fn parse_env_count_u64(name: &str, raw: Option<&str>, default: u64, cap: u64) -> u64 {
    let Some(raw) = raw else {
        return default;
    };
    match raw.trim().parse::<u64>() {
        Ok(n) if (1..=cap).contains(&n) => n,
        Ok(n) if n > cap => {
            eprintln!("warning: {name}={raw:?} exceeds the {cap} cap; clamping");
            cap
        }
        _ => {
            eprintln!("warning: {name}={raw:?} is not a positive count; using default {default}");
            default
        }
    }
}

/// Flow count requested via the `MANTIS_FLOWS` environment variable —
/// used by the scale benchmark (`figures -- scale`) to size its traffic
/// schedule; `default` when unset, clamped to [`MAX_ENV_FLOWS`].
pub fn flows_from_env(default: u64) -> u64 {
    let raw = std::env::var("MANTIS_FLOWS").ok();
    parse_env_count_u64("MANTIS_FLOWS", raw.as_deref(), default, MAX_ENV_FLOWS)
}

/// Should testbeds drive their switches through the remote control plane
/// (`MANTIS_REMOTE=1`)? Routing happens at a zero-RTT default channel so
/// the whole test suite exercises the wire path without timing drift.
pub fn remote_from_env() -> bool {
    let raw = std::env::var("MANTIS_REMOTE").ok();
    parse_env_flag("MANTIS_REMOTE", raw.as_deref(), false)
}

/// How a testbed's agents reach their switches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverMode {
    /// In-process [`mantis_agent::LocalDriver`] — the paper's deployment
    /// (agent on the switch CPU).
    Local,
    /// Wire-encoded batches over a [`ChannelConfig`]-parameterized control
    /// channel ([`RemoteDriver`]).
    Remote(ChannelConfig),
}

impl DriverMode {
    /// The mode selected by `MANTIS_REMOTE` (default-config channel when
    /// set; [`DriverMode::Local`] otherwise).
    pub fn from_env() -> DriverMode {
        if remote_from_env() {
            DriverMode::Remote(ChannelConfig::default())
        } else {
            DriverMode::Local
        }
    }
}

impl Testbed {
    /// Compile P4R source, load it into a default-config switch, attach an
    /// agent (running its prologue), and wrap everything in a simulator.
    /// Honors `MANTIS_REMOTE=1` (the agent then drives the switch through
    /// the wire protocol at zero RTT) — use [`Testbed::from_p4r_local`]
    /// when a test or golden depends on the in-process driver.
    pub fn from_p4r(src: &str) -> Result<Testbed, TestbedError> {
        Testbed::with_config(src, SwitchConfig::default(), CostModel::default())
    }

    /// Like [`Testbed::from_p4r`] but pinned to the in-process driver,
    /// ignoring `MANTIS_REMOTE`. Timing-golden paths (the telemetry trace
    /// golden) build through this so their byte-identical contract holds
    /// under every environment.
    pub fn from_p4r_local(src: &str) -> Result<Testbed, TestbedError> {
        Testbed::with_config_mode(
            src,
            SwitchConfig::default(),
            CostModel::default(),
            DriverMode::Local,
        )
    }

    /// Like [`Testbed::from_p4r`] but pinned to the remote control plane
    /// over a channel with `cfg`, ignoring `MANTIS_REMOTE`. The returned
    /// testbed's [`Testbed::plane`] is `Some`.
    pub fn from_p4r_remote(src: &str, cfg: ChannelConfig) -> Result<Testbed, TestbedError> {
        Testbed::with_config_mode(
            src,
            SwitchConfig::default(),
            CostModel::default(),
            DriverMode::Remote(cfg),
        )
    }

    /// Compile and load onto a switch with `num_pipes` hardware pipes
    /// (other switch and cost settings default). `num_pipes = 1` is
    /// behaviorally identical to [`Testbed::from_p4r`].
    pub fn from_p4r_with_pipes(src: &str, num_pipes: u16) -> Result<Testbed, TestbedError> {
        Testbed::with_config(
            src,
            SwitchConfig {
                num_pipes,
                ..SwitchConfig::default()
            },
            CostModel::default(),
        )
    }

    /// Same, with explicit switch/cost configuration. A `Testbed` is the
    /// 1-node special case of [`Fabric`]: construction delegates to
    /// [`Fabric::with_config`] on the trivial topology, so the driver mode
    /// follows `MANTIS_REMOTE` here too.
    pub fn with_config(
        src: &str,
        switch_cfg: SwitchConfig,
        cost: CostModel,
    ) -> Result<Testbed, TestbedError> {
        Testbed::with_config_mode(src, switch_cfg, cost, DriverMode::from_env())
    }

    /// Full control: explicit switch/cost configuration *and* an explicit
    /// [`DriverMode`] (no environment sniffing).
    pub fn with_config_mode(
        src: &str,
        switch_cfg: SwitchConfig,
        cost: CostModel,
        mode: DriverMode,
    ) -> Result<Testbed, TestbedError> {
        let mut fabric =
            Fabric::with_driver_mode(&[src], Topology::single(), switch_cfg, cost, mode)?;
        Ok(Testbed {
            compiled: fabric.compiled.remove(0),
            sim: fabric.sim,
            agent: fabric.agents.remove(0),
            telemetry: fabric.telemetry,
            plane: fabric.planes.pop(),
        })
    }

    /// Dump the run so far as Chrome `trace_event` JSON (open in
    /// Perfetto or `chrome://tracing`).
    pub fn chrome_trace(&self) -> String {
        self.telemetry.chrome_trace_json()
    }

    /// Dump the metrics registry (counters, gauges, p50/p95/p99
    /// histogram summaries) as flat JSON.
    pub fn telemetry_snapshot(&self) -> String {
        self.telemetry.snapshot_json()
    }

    /// Schedule the dialogue loop: back-to-back when `pace_ns == 0`, else
    /// one iteration per `pace_ns`.
    pub fn start_agent(&mut self, pace_ns: u64) {
        if pace_ns == 0 {
            mantis_agent::schedule_agent(&mut self.sim, self.agent.clone(), 0);
        } else {
            mantis_agent::schedule_paced_agent(&mut self.sim, self.agent.clone(), pace_ns, 0);
        }
    }
}

/// A topology of Mantis switches, each with its own agent, all sharing one
/// virtual clock and telemetry registry (DESIGN.md §10).
///
/// Switch `i` of the [`Topology`] runs program `i`; a packet transmitted
/// out a linked port is delivered to the peer switch after the link's wire
/// delay, so multi-hop experiments (failover around a downed inter-switch
/// link, ECMP across spine uplinks) measure real end-to-end behavior.
pub struct Fabric {
    /// Per-switch compiled programs (`compiled[i]` runs on switch `i`).
    pub compiled: Vec<Compiled>,
    pub sim: netsim::Simulator,
    /// Per-switch agents, prologues already run.
    pub agents: Vec<Rc<RefCell<MantisAgent>>>,
    /// Shared observability handle. On a multi-switch fabric, switches
    /// additionally record under `sw<i>.`-scoped metric names.
    pub telemetry: Arc<Telemetry>,
    /// Per-switch control-plane endpoints when built with
    /// [`DriverMode::Remote`] (`planes[i]` serves switch `i`); empty when
    /// agents drive their switches in-process.
    pub planes: Vec<Rc<RefCell<ControlPlane>>>,
}

impl fmt::Debug for Fabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fabric")
            .field("switches", &self.agents.len())
            .finish_non_exhaustive()
    }
}

impl Fabric {
    /// Compile one P4R program and run it on every switch of `topo`.
    pub fn from_p4r(src: &str, topo: Topology) -> Result<Fabric, TestbedError> {
        let srcs = vec![src; topo.num_switches()];
        Fabric::with_config(&srcs, topo, SwitchConfig::default(), CostModel::default())
    }

    /// Per-role programs: `srcs[i]` runs on switch `i` (e.g. leaf vs spine
    /// programs of a Clos fabric). Headers shared by name across programs
    /// survive inter-switch hops; fields only one program knows do not.
    pub fn from_p4r_roles(srcs: &[&str], topo: Topology) -> Result<Fabric, TestbedError> {
        Fabric::with_config(srcs, topo, SwitchConfig::default(), CostModel::default())
    }

    /// Full control over switch/cost configuration (shared by all
    /// switches). The driver mode follows `MANTIS_REMOTE`.
    ///
    /// # Panics
    /// Panics when `srcs.len()` does not match the topology.
    pub fn with_config(
        srcs: &[&str],
        topo: Topology,
        switch_cfg: SwitchConfig,
        cost: CostModel,
    ) -> Result<Fabric, TestbedError> {
        Fabric::with_driver_mode(srcs, topo, switch_cfg, cost, DriverMode::from_env())
    }

    /// [`Fabric::with_config`] with an explicit [`DriverMode`] instead of
    /// environment sniffing. Under [`DriverMode::Remote`] each agent talks
    /// to its switch through a [`RemoteDriver`] over its own channel, and
    /// the switch-side endpoints are exposed via [`Fabric::planes`].
    ///
    /// # Panics
    /// Panics when `srcs.len()` does not match the topology.
    pub fn with_driver_mode(
        srcs: &[&str],
        topo: Topology,
        switch_cfg: SwitchConfig,
        cost: CostModel,
        mode: DriverMode,
    ) -> Result<Fabric, TestbedError> {
        assert!(
            srcs.len() == topo.num_switches(),
            "{} programs for a {}-switch topology",
            srcs.len(),
            topo.num_switches()
        );
        let multi = topo.num_switches() > 1;
        let clock = Clock::new();
        let telemetry = Telemetry::shared();
        let mut compiled = Vec::with_capacity(srcs.len());
        let mut switches = Vec::with_capacity(srcs.len());
        let mut agents = Vec::with_capacity(srcs.len());
        let mut planes = Vec::new();
        for (i, src) in srcs.iter().enumerate() {
            let comp =
                compile_source(src, &CompilerOptions::default()).map_err(TestbedError::Compile)?;
            let spec = rmt_sim::load(&comp.p4).map_err(TestbedError::Load)?;
            let switch = SharedSwitch::new(Switch::new(spec, switch_cfg.clone(), clock.clone()));
            {
                let mut sw = switch.borrow_mut();
                sw.set_telemetry(telemetry.clone());
                // Single-switch fabrics keep unscoped metric names only, so
                // every existing telemetry golden stays byte-identical.
                sw.set_fabric_index(multi.then_some(i as u16));
            }
            let mut agent = match mode {
                DriverMode::Local => MantisAgent::new(switch.clone(), &comp, cost.clone()),
                DriverMode::Remote(chan) => {
                    let (agent, plane) =
                        mantis_control::remote_agent(switch.clone(), &comp, cost.clone(), chan);
                    planes.push(plane);
                    agent
                }
            };
            agent.set_telemetry(telemetry.clone());
            agent.set_fabric_index(multi.then_some(i as u16));
            agent.prologue().map_err(TestbedError::Agent)?;
            compiled.push(comp);
            switches.push(switch);
            agents.push(Rc::new(RefCell::new(agent)));
        }
        let mut sim = netsim::Simulator::fabric(switches, topo);
        sim.set_workers(usize::from(workers_from_env()));
        Ok(Fabric {
            compiled,
            sim,
            agents,
            telemetry,
            planes,
        })
    }

    pub fn num_switches(&self) -> usize {
        self.agents.len()
    }

    pub fn agent(&self, i: usize) -> &Rc<RefCell<MantisAgent>> {
        &self.agents[i]
    }

    /// Schedule every agent's paced dialogue loop with deterministic phase
    /// offsets (agent `i` starts at `i·td/n`), so per-switch control loops
    /// interleave like independent CPUs instead of firing in lockstep.
    pub fn start_agents(&mut self, td_ns: u64) {
        mantis_agent::schedule_fabric_agents(&mut self.sim, &self.agents, td_ns.max(1), 0);
    }

    /// Dump the run so far as Chrome `trace_event` JSON.
    pub fn chrome_trace(&self) -> String {
        self.telemetry.chrome_trace_json()
    }

    /// Dump the metrics registry as flat JSON.
    pub fn telemetry_snapshot(&self) -> String {
        self.telemetry.snapshot_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_compiles_and_reacts() {
        let src = r#"
header_type h_t { fields { a : 32; } }
header h_t h;
malleable value knob { width : 32; init : 0; }
action touch() { add_to_field(h.a, ${knob}); }
table t { actions { touch; } default_action : touch(); }
reaction r(ing h.a) { ${knob} = h_a + 1; }
control ingress { apply(t); }
"#;
        let mut tb = Testbed::from_p4r(src).unwrap();
        tb.agent.borrow_mut().register_all_interpreted().unwrap();
        tb.start_agent(10_000);
        tb.sim
            .switch()
            .borrow_mut()
            .inject(&rmt_sim::PacketDesc::new(0).field("h", "a", 41).payload(64));
        tb.sim.run_until(100_000);
        assert_eq!(tb.agent.borrow().slot("knob"), Some(42));
    }

    #[test]
    fn bad_source_reports_compile_error() {
        assert!(matches!(
            Testbed::from_p4r("this is not p4r"),
            Err(TestbedError::Compile(_))
        ));
    }

    #[test]
    fn env_counts_default_on_malformed_or_zero() {
        // Unset: the quiet default.
        assert_eq!(parse_env_count("MANTIS_PIPES", None, 1), 1);
        assert_eq!(parse_env_count("MANTIS_SWITCHES", None, 1), 1);
        // Well-formed values parse (whitespace tolerated).
        assert_eq!(parse_env_count("MANTIS_PIPES", Some("4"), 1), 4);
        assert_eq!(parse_env_count("MANTIS_SWITCHES", Some(" 3 "), 1), 3);
        // Malformed, zero, negative, and overflowing all fall back.
        for bad in ["abc", "", "0", "-2", "4.5", "1e3", "99999999999"] {
            assert_eq!(parse_env_count("MANTIS_PIPES", Some(bad), 1), 1, "{bad:?}");
            assert_eq!(
                parse_env_count("MANTIS_SWITCHES", Some(bad), 2),
                2,
                "{bad:?}"
            );
        }
    }

    #[test]
    fn wide_env_counts_parse_clamp_and_default() {
        // Unset: the quiet default.
        assert_eq!(
            parse_env_count_u64("MANTIS_FLOWS", None, 370_000, MAX_ENV_FLOWS),
            370_000
        );
        // Well-formed values parse, including ones far beyond u16.
        assert_eq!(
            parse_env_count_u64("MANTIS_FLOWS", Some("370000"), 1, MAX_ENV_FLOWS),
            370_000
        );
        assert_eq!(
            parse_env_count_u64("MANTIS_FLOWS", Some(" 8000 "), 1, MAX_ENV_FLOWS),
            8_000
        );
        // Values above the cap clamp loudly; garbage and zero default.
        assert_eq!(
            parse_env_count_u64("MANTIS_FLOWS", Some("999999999999"), 1, MAX_ENV_FLOWS),
            MAX_ENV_FLOWS
        );
        for bad in ["abc", "", "0", "-2", "4.5", "1e5"] {
            assert_eq!(
                parse_env_count_u64("MANTIS_FLOWS", Some(bad), 7, MAX_ENV_FLOWS),
                7,
                "{bad:?}"
            );
        }
    }

    #[test]
    fn env_counts_clamp_to_cap() {
        assert_eq!(
            parse_env_count("MANTIS_PIPES", Some(&MAX_ENV_COUNT.to_string()), 1),
            MAX_ENV_COUNT
        );
        // In-range u16 values above the cap clamp (overflow still defaults,
        // covered above).
        assert_eq!(
            parse_env_count("MANTIS_PIPES", Some("65"), 1),
            MAX_ENV_COUNT
        );
        assert_eq!(
            parse_env_count("MANTIS_SWITCHES", Some("65535"), 1),
            MAX_ENV_COUNT
        );
    }

    #[test]
    fn worker_env_counts_parse_clamp_and_default() {
        // `MANTIS_WORKERS` goes through the same hardened parser as
        // `MANTIS_PIPES`/`MANTIS_SWITCHES`: positive counts parse...
        assert_eq!(parse_env_count("MANTIS_WORKERS", Some("4"), 2), 4);
        assert_eq!(parse_env_count("MANTIS_WORKERS", Some(" 8 "), 2), 8);
        // ...garbage and zero fall back to the default...
        for bad in ["abc", "", "0", "-1", "2.5"] {
            assert_eq!(
                parse_env_count("MANTIS_WORKERS", Some(bad), 3),
                3,
                "{bad:?}"
            );
        }
        // ...and oversized values clamp to the cap.
        assert_eq!(
            parse_env_count("MANTIS_WORKERS", Some("9999"), 2),
            MAX_ENV_COUNT
        );
        // The unset default mirrors the host parallelism and never
        // exceeds the cap or drops below one worker.
        let d = std::thread::available_parallelism()
            .map(|n| n.get().min(usize::from(MAX_ENV_COUNT)) as u16)
            .unwrap_or(1);
        assert_eq!(parse_env_count("MANTIS_WORKERS", None, d), d);
        assert!((1..=MAX_ENV_COUNT).contains(&d));
    }

    #[test]
    fn env_flags_parse_leniently_and_default_on_garbage() {
        assert!(!parse_env_flag("MANTIS_REMOTE", None, false));
        assert!(parse_env_flag("MANTIS_REMOTE", None, true));
        for yes in ["1", "true", "TRUE", " yes ", "On"] {
            assert!(parse_env_flag("MANTIS_REMOTE", Some(yes), false), "{yes:?}");
        }
        for no in ["0", "false", "False", " no ", "OFF"] {
            assert!(!parse_env_flag("MANTIS_REMOTE", Some(no), true), "{no:?}");
        }
        for bad in ["2", "remote", "", "tru e"] {
            assert!(
                !parse_env_flag("MANTIS_REMOTE", Some(bad), false),
                "{bad:?}"
            );
            assert!(parse_env_flag("MANTIS_REMOTE", Some(bad), true), "{bad:?}");
        }
    }

    #[test]
    fn remote_testbed_reacts_like_local() {
        let src = r#"
header_type h_t { fields { a : 32; } }
header h_t h;
malleable value knob { width : 32; init : 0; }
action touch() { add_to_field(h.a, ${knob}); }
table t { actions { touch; } default_action : touch(); }
reaction r(ing h.a) { ${knob} = h_a + 1; }
control ingress { apply(t); }
"#;
        let mut tb = Testbed::from_p4r_remote(src, ChannelConfig::default()).unwrap();
        assert!(tb.plane.is_some());
        tb.agent.borrow_mut().register_all_interpreted().unwrap();
        tb.start_agent(10_000);
        tb.sim
            .switch()
            .borrow_mut()
            .inject(&rmt_sim::PacketDesc::new(0).field("h", "a", 41).payload(64));
        tb.sim.run_until(100_000);
        assert_eq!(tb.agent.borrow().slot("knob"), Some(42));
        // The dialogue ran over the wire: frames were exchanged.
        let snap = tb.telemetry_snapshot();
        assert!(snap.contains("control.frames"), "snapshot: {snap}");
        // Local construction exposes no plane.
        let local = Testbed::from_p4r_local(src).unwrap();
        assert!(local.plane.is_none());
    }

    #[test]
    fn fabric_links_two_reacting_switches() {
        // Switch 0 forwards everything to its uplink; switch 1 counts what
        // arrives and its agent mirrors the count into a knob.
        let fwd = r#"
header_type h_t { fields { a : 32; } }
header h_t h;
action up() { modify_field(intr.egress_spec, 4); }
table t { actions { up; } default_action : up(); }
reaction idle(ing h.a) { if (h_a > 4294967295) { } }
control ingress { apply(t); }
"#;
        let count = r#"
header_type h_t { fields { a : 32; } }
header h_t h;
register seen { width : 64; instance_count : 4; }
malleable value knob { width : 32; init : 0; }
action tally() { count(seen, 0); modify_field(intr.egress_spec, 1); }
table t { actions { tally; } default_action : tally(); }
reaction watch(reg seen[0:0]) { ${knob} = seen[0]; }
control ingress { apply(t); }
"#;
        let topo = Topology::new(2).link(Endpoint::new(0, 4), Endpoint::new(1, 4));
        let mut fab = Fabric::from_p4r_roles(&[fwd, count], topo).unwrap();
        for agent in &fab.agents {
            agent.borrow_mut().register_all_interpreted().unwrap();
        }
        fab.start_agents(50_000);
        for i in 0..5u64 {
            fab.sim.schedule(i * 10_000, move |s| {
                s.switch_at(0)
                    .borrow_mut()
                    .inject(&rmt_sim::PacketDesc::new(0).field("h", "a", 7).payload(64));
            });
        }
        fab.sim.run_until(1_000_000);
        // All five packets crossed the link and were counted on switch 1,
        // and switch 1's *own agent* observed them.
        assert_eq!(fab.agents[1].borrow().slot("knob"), Some(5));
        // Fabric-scoped telemetry appears for both switches.
        let snap = fab.telemetry_snapshot();
        assert!(snap.contains("sw0.switch.tx"), "snapshot: {snap}");
        assert!(snap.contains("sw1.switch.rx"), "snapshot: {snap}");
    }
}
