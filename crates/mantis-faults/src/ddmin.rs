//! Generic greedy delta-debugging minimization (ddmin).
//!
//! Given a failing item sequence and a predicate that replays a candidate
//! and reports whether it *still fails*, [`ddmin`] removes halving chunks
//! until no subset can be dropped. The same loop minimizes chaos fault
//! schedules ([`crate::chaos::shrink`]) and the fuzz harness's generated
//! P4R program statements — anything expressible as "a list of parts, some
//! subset of which reproduces the failure".
//!
//! Deterministic given a deterministic predicate, and the result always
//! satisfies `fails` (it only ever commits candidates the predicate
//! confirmed).

/// Minimize `items` to a (locally) 1-minimal failing subsequence.
///
/// `fails(candidate)` must return `true` while the candidate still
/// reproduces the failure. The empty sequence is a legal result when the
/// predicate accepts it. Greedy: a removed chunk is never revisited, and
/// chunk size halves only once a full sweep removes nothing.
pub fn ddmin<T, F>(items: &[T], mut fails: F) -> Vec<T>
where
    T: Clone,
    F: FnMut(&[T]) -> bool,
{
    let mut best: Vec<T> = items.to_vec();
    let mut chunk = best.len().div_ceil(2).max(1);
    while chunk >= 1 {
        let mut removed_any = false;
        let mut i = 0;
        while i < best.len() {
            let hi = (i + chunk).min(best.len());
            let mut candidate = best.clone();
            candidate.drain(i..hi);
            if fails(&candidate) {
                let emptied = candidate.is_empty();
                best = candidate;
                removed_any = true;
                if emptied {
                    break;
                }
                // Same index now names the next chunk.
            } else {
                i += chunk;
            }
        }
        if !removed_any {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_the_failing_core() {
        // Failure reproduces iff both 3 and 7 survive.
        let items: Vec<u32> = (0..20).collect();
        let min = ddmin(&items, |c| c.contains(&3) && c.contains(&7));
        assert_eq!(min, vec![3, 7]);
    }

    #[test]
    fn single_culprit_shrinks_to_one() {
        let items: Vec<u32> = (0..33).collect();
        let min = ddmin(&items, |c| c.contains(&17));
        assert_eq!(min, vec![17]);
    }

    #[test]
    fn empty_allowed_when_predicate_accepts_it() {
        let items = vec![1, 2, 3];
        let min = ddmin(&items, |_| true);
        assert!(min.is_empty());
    }

    #[test]
    fn preserves_order_of_survivors() {
        let items = vec![9, 1, 8, 2, 7, 3];
        let min = ddmin(&items, |c| {
            let a = c.iter().position(|&x| x == 1);
            let b = c.iter().position(|&x| x == 7);
            matches!((a, b), (Some(i), Some(j)) if i < j)
        });
        assert_eq!(min, vec![1, 7]);
    }

    #[test]
    fn result_always_fails() {
        // Adversarial predicate: fails iff sum of survivors is odd.
        let items = vec![1, 2, 4, 8, 16];
        let min = ddmin(&items, |c| c.iter().sum::<i32>() % 2 == 1);
        assert_eq!(min.iter().sum::<i32>() % 2, 1);
    }
}
