//! # mantis-faults
//!
//! Deterministic fault injection for the Mantis reproduction, plus the
//! pure recovery policies (retry backoff, circuit breaker) the agent uses
//! to survive the injected faults.
//!
//! Everything here is **virtual-clock-native and seed-deterministic**:
//! a [`FaultPlan`] schedules faults at driver-op counts or virtual-time
//! windows, a [`FaultInjector`] executes the plan one `decide()` call per
//! driver operation, and two identical runs under the same plan make
//! byte-identical decisions. No wall clock, no global RNG.
//!
//! The crate is dependency-free (it defines its own `Nanos`, like
//! `mantis-telemetry`) so that `rmt-sim`, `mantis-agent`, `netsim`, and
//! `bench` can all depend on it without cycles.
//!
//! Fault taxonomy (DESIGN.md §8):
//!
//! * [`FaultEffect::Fail`] — the driver op fails *before* touching the
//!   device, like a PCIe/gRPC transport error. Bounded rules
//!   (`max_hits`) model transient faults; unbounded rules are persistent.
//! * [`FaultEffect::Delay`] — the op succeeds but its modeled latency is
//!   multiplied (driver latency spike, e.g. a congested PCIe bus).
//! * [`FaultEffect::StaleRead`] — a register read returns the previously
//!   observed values (a snapshot that missed the latest sync).
//! * [`FaultEffect::CorruptRead`] — a register read returns bit-flipped
//!   values (single-event upset on the readout path).
//! * [`LinkFlap`] — a scheduled down/up of a switch port, wired through
//!   `netsim`.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod ddmin;

pub use ddmin::ddmin;

use std::fmt;

/// Virtual nanoseconds (mirrors `rmt_sim::Nanos`).
pub type Nanos = u64;

// -- fault plan --------------------------------------------------------------

/// Which driver operation class a rule applies to. Driver ops are named
/// by the same `&'static str` labels `MantisDriver` uses for telemetry
/// (`table_add`, `table_mod`, `table_del`, `set_default`, `init_flip`,
/// `register_read`, `field_word_read`, `field_poll`, `register_write`,
/// `port_set`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// Any driver operation.
    Any,
    /// Any table mutation (`table_add`/`table_mod`/`table_del`/
    /// `set_default`/`init_flip`).
    AnyTableOp,
    /// Any register/field read (`register_read`/`field_word_read`/
    /// `field_poll`).
    AnyRead,
    /// Any control-plane channel frame (`control_req`/`control_resp` —
    /// the op labels `mantis-control`'s `Channel` consults the injector
    /// with, one per frame per direction). Driver-level ops never match.
    Control,
    /// Exactly the named op class.
    Named(&'static str),
}

impl FaultOp {
    /// Does this selector cover the driver op `op`?
    pub fn matches(&self, op: &str) -> bool {
        match self {
            FaultOp::Any => true,
            FaultOp::AnyTableOp => matches!(
                op,
                "table_add" | "table_mod" | "table_del" | "set_default" | "init_flip"
            ),
            FaultOp::AnyRead => {
                matches!(op, "register_read" | "field_word_read" | "field_poll")
            }
            FaultOp::Control => matches!(op, "control_req" | "control_resp"),
            FaultOp::Named(n) => *n == op,
        }
    }
}

/// What happens to a matched operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEffect {
    /// The op fails before reaching the device (no state mutated).
    Fail,
    /// The op succeeds but costs `factor_milli / 1000 ×` its modeled
    /// latency (integer millis keep the plan hashable and deterministic).
    Delay { factor_milli: u32 },
    /// A register read returns the last values observed for that range
    /// (zeros if never read before).
    StaleRead,
    /// A register read returns values XOR'd with `xor` (masked to the
    /// register width by the driver).
    CorruptRead { xor: u64 },
    /// A control-channel frame is delivered twice (at-least-once
    /// transport). Meaningless for driver-level ops, which treat it as
    /// no injection; the channel re-delivers and the endpoint's
    /// sequence-number dedup must absorb it.
    Duplicate,
    /// The agent process dies at this op (the ISSUE's `FaultOp::Crash`:
    /// combined with an op selector and a one-op window it kills the
    /// agent at any dialogue phase, including between per-pipe commits).
    /// The op surfaces `DriverError::Crashed`; the agent aborts without
    /// rollback — a dead process repairs nothing — and a restarted agent
    /// must `reconcile()` device state back before resuming.
    Crash,
}

/// When a rule is armed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultWindow {
    /// Driver-op count window `[lo, hi)`, counted across all ops the
    /// injector sees.
    Ops { lo: u64, hi: u64 },
    /// Virtual-time window `[lo, hi)` in nanoseconds.
    Time { lo: Nanos, hi: Nanos },
    /// Always armed.
    Always,
}

impl FaultWindow {
    fn contains(&self, op_count: u64, now: Nanos) -> bool {
        match self {
            FaultWindow::Ops { lo, hi } => op_count >= *lo && op_count < *hi,
            FaultWindow::Time { lo, hi } => now >= *lo && now < *hi,
            FaultWindow::Always => true,
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRule {
    pub op: FaultOp,
    pub effect: FaultEffect,
    pub window: FaultWindow,
    /// Injection budget. `Some(n)` → at most `n` injections (a transient
    /// fault: retries eventually pass). `None` → every matched op in the
    /// window is hit (a persistent fault).
    pub max_hits: Option<u32>,
    /// Restrict the rule to ops addressed at one hardware pipe.
    /// `None` matches every op; `Some(p)` matches only ops the driver
    /// reports as targeting pipe `p` (ops with no pipe affinity — e.g.
    /// fan-out writes — never match a pipe-scoped rule).
    pub pipe: Option<u16>,
    /// Restrict the rule to one fabric switch's driver. `None` matches
    /// every switch; `Some(s)` matches only injectors whose identity
    /// ([`FaultInjector::set_switch`]) is switch `s` — a single-switch
    /// testbed's injector has no identity and never matches a
    /// switch-scoped rule.
    pub switch: Option<u16>,
}

impl FaultRule {
    /// A rule matching every pipe and every switch (the common case); use
    /// `.on_pipe(p)` / `.on_switch(s)` to scope it.
    pub fn new(
        op: FaultOp,
        effect: FaultEffect,
        window: FaultWindow,
        max_hits: Option<u32>,
    ) -> Self {
        FaultRule {
            op,
            effect,
            window,
            max_hits,
            pipe: None,
            switch: None,
        }
    }

    /// Scope this rule to ops targeting hardware pipe `pipe`.
    pub fn on_pipe(mut self, pipe: u16) -> Self {
        self.pipe = Some(pipe);
        self
    }

    /// Scope this rule to the driver of fabric switch `switch`.
    pub fn on_switch(mut self, switch: u16) -> Self {
        self.switch = Some(switch);
        self
    }

    /// Is this rule transient (bounded hit budget)? `Fail` rules use this
    /// to report `persistent` through `DriverError::Injected`.
    pub fn is_transient(&self) -> bool {
        self.max_hits.is_some()
    }
}

/// A scheduled link flap: the port goes down at `down_at` and (if
/// `up_at > down_at`) comes back at `up_at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFlap {
    /// Fabric switch index the port belongs to (0 on a single-switch
    /// testbed). When the port is one end of an inter-switch link, the
    /// scheduler downs *both* endpoints — a wire fault, not a one-sided
    /// admin-down.
    pub switch: u32,
    /// Switch port (matches `rmt_sim::PortId`, widened for independence).
    pub port: u32,
    pub down_at: Nanos,
    pub up_at: Nanos,
}

/// A deterministic fault schedule: driver-op rules plus link flaps.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    pub rules: Vec<FaultRule>,
    pub link_flaps: Vec<LinkFlap>,
}

impl FaultPlan {
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a rule (builder-style).
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Fail up to `hits` matched ops inside the window (transient).
    pub fn fail_transient(self, op: FaultOp, window: FaultWindow, hits: u32) -> Self {
        self.rule(FaultRule::new(op, FaultEffect::Fail, window, Some(hits)))
    }

    /// Fail every matched op inside the window (persistent).
    pub fn fail_persistent(self, op: FaultOp, window: FaultWindow) -> Self {
        self.rule(FaultRule::new(op, FaultEffect::Fail, window, None))
    }

    /// Multiply the latency of up to `hits` matched ops by
    /// `factor_milli/1000`.
    pub fn delay(self, op: FaultOp, window: FaultWindow, factor_milli: u32, hits: u32) -> Self {
        self.rule(FaultRule::new(
            op,
            FaultEffect::Delay { factor_milli },
            window,
            Some(hits),
        ))
    }

    /// Deliver up to `hits` matched ops twice (duplicated control
    /// frames; a no-op for driver-level ops).
    pub fn duplicate(self, op: FaultOp, window: FaultWindow, hits: u32) -> Self {
        self.rule(FaultRule::new(
            op,
            FaultEffect::Duplicate,
            window,
            Some(hits),
        ))
    }

    /// Drop up to `hits` control-channel frames inside the window (the
    /// frame is lost in flight; the sender sees a transport timeout).
    pub fn drop_frames(self, window: FaultWindow, hits: u32) -> Self {
        self.fail_transient(FaultOp::Control, window, hits)
    }

    /// Duplicate up to `hits` control-channel frames inside the window.
    pub fn duplicate_frames(self, window: FaultWindow, hits: u32) -> Self {
        self.duplicate(FaultOp::Control, window, hits)
    }

    /// Sever every control-channel frame of switch `switch`'s channels
    /// from `at` onward — the persistent partition that forces a
    /// controller failover.
    pub fn sever_control(self, switch: u16, at: Nanos) -> Self {
        self.rule(
            FaultRule::new(
                FaultOp::Control,
                FaultEffect::Fail,
                FaultWindow::Time {
                    lo: at,
                    hi: Nanos::MAX,
                },
                None,
            )
            .on_switch(switch),
        )
    }

    /// Kill the agent at its `at_op`-th driver op (one-shot). The hit op
    /// surfaces `DriverError::Crashed`; because driver ops are issued in
    /// a fixed order per dialogue iteration, choosing `at_op` selects the
    /// crash's dialogue phase — including between two per-pipe commits.
    pub fn crash_at_op(self, at_op: u64) -> Self {
        self.rule(FaultRule::new(
            FaultOp::Any,
            FaultEffect::Crash,
            FaultWindow::Ops {
                lo: at_op,
                hi: at_op + 1,
            },
            Some(1),
        ))
    }

    /// Kill fabric switch `switch`'s agent at its `at_op`-th driver op.
    pub fn crash_at_op_on(self, switch: u16, at_op: u64) -> Self {
        self.rule(
            FaultRule::new(
                FaultOp::Any,
                FaultEffect::Crash,
                FaultWindow::Ops {
                    lo: at_op,
                    hi: at_op + 1,
                },
                Some(1),
            )
            .on_switch(switch),
        )
    }

    /// Schedule a link flap on switch 0 (*the* switch of a single-switch
    /// testbed).
    pub fn flap(self, port: u32, down_at: Nanos, up_at: Nanos) -> Self {
        self.flap_on(0, port, down_at, up_at)
    }

    /// Schedule a link flap on fabric switch `switch`.
    pub fn flap_on(mut self, switch: u32, port: u32, down_at: Nanos, up_at: Nanos) -> Self {
        self.link_flaps.push(LinkFlap {
            switch,
            port,
            down_at,
            up_at,
        });
        self
    }

    /// Are all `Fail` rules transient (bounded)? A plan satisfying this is
    /// recoverable by bounded retry, which is what the equality property
    /// test (`faults are invisible`) requires.
    pub fn all_failures_transient(&self) -> bool {
        self.rules
            .iter()
            .filter(|r| r.effect == FaultEffect::Fail)
            .all(|r| r.is_transient())
    }

    /// Generate a seeded, all-transient plan: a handful of bounded `Fail`
    /// and `Delay` rules scattered over the first `ops_hint` driver ops.
    /// Deterministic in `seed`; every `Fail` budget is ≤ 2 consecutive
    /// hits so a retry policy with ≥ 3 attempts always recovers.
    pub fn random_transient(seed: u64, ops_hint: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        let n_rules = 1 + (rng.next() % 4) as usize; // 1..=4 rules
        for _ in 0..n_rules {
            let lo = rng.next() % ops_hint.max(1);
            let len = 1 + rng.next() % 16;
            let window = FaultWindow::Ops { lo, hi: lo + len };
            let op = match rng.next() % 4 {
                0 => FaultOp::AnyTableOp,
                1 => FaultOp::AnyRead,
                2 => FaultOp::Named("init_flip"),
                _ => FaultOp::Any,
            };
            match rng.next() % 3 {
                0 => {
                    plan = plan.delay(
                        op,
                        window,
                        1_500 + (rng.next() % 4_000) as u32,
                        1 + (rng.next() % 3) as u32,
                    );
                }
                _ => {
                    plan = plan.fail_transient(op, window, 1 + (rng.next() % 2) as u32);
                }
            }
        }
        plan
    }
}

// -- injector ----------------------------------------------------------------

/// The decision the injector hands back for one driver op.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Injection {
    Fail { persistent: bool },
    Delay { factor_milli: u32 },
    Stale,
    Corrupt { xor: u64 },
    Duplicate,
    Crash,
}

/// Executes a [`FaultPlan`]: one [`decide`](FaultInjector::decide) call
/// per driver op, first armed matching rule wins. Recovery code
/// (rollback) runs with faults [`suspend`](FaultInjector::suspend)ed —
/// modeling a journaled recovery path that bypasses the faulty transport.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    op_count: u64,
    hits: Vec<u32>,
    injected_total: u64,
    suspended: u32,
    /// Fabric identity of the driver this injector serves; switch-scoped
    /// rules match only when it agrees. `None` on single-switch testbeds.
    switch: Option<u16>,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        let hits = vec![0; plan.rules.len()];
        FaultInjector {
            plan,
            op_count: 0,
            hits,
            injected_total: 0,
            suspended: 0,
            switch: None,
        }
    }

    /// Declare which fabric switch this injector's driver controls, so
    /// [`FaultRule::on_switch`]-scoped rules can match it.
    pub fn set_switch(&mut self, switch: Option<u16>) {
        self.switch = switch;
    }

    pub fn switch(&self) -> Option<u16> {
        self.switch
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Driver ops consulted so far (faulted or not).
    pub fn op_count(&self) -> u64 {
        self.op_count
    }

    /// Total injections performed.
    pub fn injected_total(&self) -> u64 {
        self.injected_total
    }

    /// Enter a fault-free section (nestable).
    pub fn suspend(&mut self) {
        self.suspended += 1;
    }

    /// Leave a fault-free section.
    ///
    /// # Panics
    /// Panics on unbalanced resume (invariant: suspend/resume nest).
    pub fn resume(&mut self) {
        assert!(
            self.suspended > 0,
            "FaultInjector::resume without matching suspend (invariant: suspend/resume nest)"
        );
        self.suspended -= 1;
    }

    pub fn is_suspended(&self) -> bool {
        self.suspended > 0
    }

    /// Consult the plan for one driver op at virtual time `now`. Always
    /// counts the op; returns the first armed matching rule's effect, or
    /// `None`. Suspended injectors count but never inject. Ops with no
    /// pipe affinity (fan-out writes, aggregated reads) never match
    /// pipe-scoped rules; use [`decide_on`](FaultInjector::decide_on) for
    /// ops addressed at one pipe.
    pub fn decide(&mut self, op: &str, now: Nanos) -> Option<Injection> {
        self.decide_on(op, None, now)
    }

    /// Like [`decide`](FaultInjector::decide), for a driver op targeting
    /// hardware pipe `pipe` (when `Some`). Pipe-scoped rules match only
    /// when the pipes agree.
    pub fn decide_on(&mut self, op: &str, pipe: Option<u16>, now: Nanos) -> Option<Injection> {
        let count = self.op_count;
        self.op_count += 1;
        if self.suspended > 0 {
            return None;
        }
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if !rule.op.matches(op) || !rule.window.contains(count, now) {
                continue;
            }
            if rule.pipe.is_some() && rule.pipe != pipe {
                continue;
            }
            if rule.switch.is_some() && rule.switch != self.switch {
                continue;
            }
            if let Some(budget) = rule.max_hits {
                if self.hits[i] >= budget {
                    continue;
                }
            }
            self.hits[i] += 1;
            self.injected_total += 1;
            let inj = match &rule.effect {
                FaultEffect::Fail => Injection::Fail {
                    persistent: !rule.is_transient(),
                },
                FaultEffect::Delay { factor_milli } => Injection::Delay {
                    factor_milli: *factor_milli,
                },
                FaultEffect::StaleRead => Injection::Stale,
                FaultEffect::CorruptRead { xor } => Injection::Corrupt { xor: *xor },
                FaultEffect::Duplicate => Injection::Duplicate,
                FaultEffect::Crash => Injection::Crash,
            };
            return Some(inj);
        }
        None
    }
}

// -- retry policy ------------------------------------------------------------

/// Deterministic bounded exponential backoff on the virtual clock.
///
/// Attempt `k` (0-based) that fails is followed by a backoff of
/// `min(base_ns · (factor_milli/1000)^k, max_backoff_ns)` virtual
/// nanoseconds before attempt `k+1`. No jitter: two identical runs back
/// off identically (the determinism contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = max_retries + 1).
    pub max_retries: u32,
    pub base_ns: Nanos,
    /// Multiplier per retry, in millis (2000 = ×2).
    pub factor_milli: u32,
    pub max_backoff_ns: Nanos,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_ns: 2_000,
            factor_milli: 2_000,
            max_backoff_ns: 100_000,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (0-based index of the retry).
    pub fn backoff(&self, attempt: u32) -> Nanos {
        let mut b = self.base_ns as u128;
        for _ in 0..attempt {
            b = b * self.factor_milli as u128 / 1_000;
            if b >= self.max_backoff_ns as u128 {
                return self.max_backoff_ns;
            }
        }
        (b as Nanos).min(self.max_backoff_ns)
    }

    /// May a failed attempt `attempt` (0-based) be retried?
    pub fn allows(&self, attempt: u32) -> bool {
        attempt < self.max_retries
    }
}

// -- circuit breaker ---------------------------------------------------------

/// Breaker configuration: trip after `threshold` consecutive failures,
/// quarantine for `cooldown_ns`, then allow one half-open probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    pub threshold: u32,
    pub cooldown_ns: Nanos,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown_ns: 1_000_000, // 1 ms of virtual time
        }
    }
}

/// Breaker state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy; counts consecutive failures.
    Closed { failures: u32 },
    /// Quarantined until `until`.
    Open { until: Nanos },
    /// Cooldown elapsed; one probe execution allowed.
    HalfOpen,
}

/// A per-reaction circuit breaker: after `threshold` consecutive
/// failures the reaction is quarantined (skipped) for `cooldown_ns`,
/// then probed half-open; a successful probe closes the breaker, a
/// failed probe re-opens it.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Times the breaker tripped open.
    pub trips: u64,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed { failures: 0 },
            trips: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    pub fn config(&self) -> BreakerConfig {
        self.cfg
    }

    /// Is the guarded reaction currently quarantined (skipped) at `now`?
    /// An elapsed cooldown still reads as not-quarantined: `allow` will
    /// transition to half-open.
    pub fn is_quarantined(&self, now: Nanos) -> bool {
        matches!(self.state, BreakerState::Open { until } if now < until)
    }

    /// May the reaction execute at `now`? Transitions `Open → HalfOpen`
    /// when the cooldown has elapsed.
    pub fn allow(&mut self, now: Nanos) -> bool {
        match self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { until } => {
                if now >= until {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful execution (closes the breaker).
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed { failures: 0 };
    }

    /// Record a failed execution at `now`. Returns `true` if this failure
    /// tripped (or re-tripped) the breaker open.
    pub fn on_failure(&mut self, now: Nanos) -> bool {
        match self.state {
            BreakerState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.cfg.threshold {
                    self.state = BreakerState::Open {
                        until: now + self.cfg.cooldown_ns,
                    };
                    self.trips += 1;
                    true
                } else {
                    self.state = BreakerState::Closed { failures };
                    false
                }
            }
            BreakerState::HalfOpen => {
                // Failed probe: straight back to quarantine.
                self.state = BreakerState::Open {
                    until: now + self.cfg.cooldown_ns,
                };
                self.trips += 1;
                true
            }
            BreakerState::Open { .. } => true,
        }
    }
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerState::Closed { failures } => write!(f, "closed({failures})"),
            BreakerState::Open { until } => write!(f, "open(until {until})"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

// -- seeded RNG --------------------------------------------------------------

/// SplitMix64 — the tiny deterministic generator behind
/// [`FaultPlan::random_transient`] and the [`chaos`] schedule generator.
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let p = RetryPolicy {
            max_retries: 10,
            base_ns: 1_000,
            factor_milli: 2_000,
            max_backoff_ns: 10_000,
        };
        let a: Vec<Nanos> = (0..8).map(|k| p.backoff(k)).collect();
        let b: Vec<Nanos> = (0..8).map(|k| p.backoff(k)).collect();
        assert_eq!(a, b, "backoff must be a pure function of the attempt");
        assert_eq!(a[0], 1_000);
        assert_eq!(a[1], 2_000);
        assert_eq!(a[2], 4_000);
        assert_eq!(a[3], 8_000);
        assert_eq!(a[4], 10_000, "capped");
        assert_eq!(a[7], 10_000);
        assert!(p.allows(9));
        assert!(!p.allows(10));
    }

    #[test]
    fn breaker_trips_after_threshold_and_probes_after_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            threshold: 3,
            cooldown_ns: 1_000,
        });
        assert!(b.allow(0));
        assert!(!b.on_failure(10));
        assert!(!b.on_failure(20));
        assert!(b.on_failure(30), "third consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open { until: 1_030 });
        assert!(b.is_quarantined(31));
        assert!(!b.allow(500), "quarantined during cooldown");
        // Cooldown elapses → half-open probe allowed.
        assert!(b.allow(1_030));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Successful probe closes it.
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed { failures: 0 });
        assert_eq!(b.trips, 1);
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            threshold: 1,
            cooldown_ns: 100,
        });
        assert!(b.on_failure(0));
        assert!(b.allow(100));
        assert!(b.on_failure(100), "failed probe re-trips");
        assert_eq!(b.state(), BreakerState::Open { until: 200 });
        assert_eq!(b.trips, 2);
        // Success resets the consecutive-failure count entirely.
        let mut b = CircuitBreaker::new(BreakerConfig {
            threshold: 2,
            cooldown_ns: 100,
        });
        assert!(!b.on_failure(0));
        b.on_success();
        assert!(!b.on_failure(10), "threshold counts restart after close");
        assert!(b.on_failure(20), "second consecutive failure trips");
    }

    #[test]
    fn injector_respects_windows_and_budgets() {
        let plan = FaultPlan::new()
            .fail_transient(
                FaultOp::Named("table_add"),
                FaultWindow::Ops { lo: 1, hi: 10 },
                2,
            )
            .delay(
                FaultOp::AnyRead,
                FaultWindow::Time { lo: 50, hi: 100 },
                3_000,
                1,
            );
        let mut inj = FaultInjector::new(plan);
        // Op 0: outside the ops window.
        assert_eq!(inj.decide("table_add", 0), None);
        // Ops 1, 2: within window and budget.
        assert_eq!(
            inj.decide("table_add", 0),
            Some(Injection::Fail { persistent: false })
        );
        assert_eq!(inj.decide("table_mod", 0), None, "op class must match");
        assert_eq!(
            inj.decide("table_add", 0),
            Some(Injection::Fail { persistent: false })
        );
        // Budget exhausted.
        assert_eq!(inj.decide("table_add", 0), None);
        // Time-windowed delay on reads.
        assert_eq!(inj.decide("register_read", 49), None);
        assert_eq!(
            inj.decide("register_read", 50),
            Some(Injection::Delay {
                factor_milli: 3_000
            })
        );
        assert_eq!(inj.decide("register_read", 51), None, "delay budget spent");
        assert_eq!(inj.injected_total(), 3);
    }

    #[test]
    fn pipe_scoped_rules_match_only_their_pipe() {
        let plan = FaultPlan::new().rule(
            FaultRule::new(
                FaultOp::Named("init_flip"),
                FaultEffect::Fail,
                FaultWindow::Always,
                None,
            )
            .on_pipe(2),
        );
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.decide_on("init_flip", Some(0), 0), None);
        assert_eq!(inj.decide_on("init_flip", Some(1), 0), None);
        assert_eq!(
            inj.decide_on("init_flip", Some(2), 0),
            Some(Injection::Fail { persistent: true })
        );
        // Ops with no pipe affinity never match a pipe-scoped rule.
        assert_eq!(inj.decide("init_flip", 0), None);
        // Unscoped rules match pipe-addressed ops fine.
        let mut inj = FaultInjector::new(
            FaultPlan::new().fail_persistent(FaultOp::Named("init_flip"), FaultWindow::Always),
        );
        assert_eq!(
            inj.decide_on("init_flip", Some(3), 0),
            Some(Injection::Fail { persistent: true })
        );
    }

    #[test]
    fn switch_scoped_rules_match_only_their_switch() {
        let plan = FaultPlan::new().rule(
            FaultRule::new(
                FaultOp::Named("init_flip"),
                FaultEffect::Fail,
                FaultWindow::Always,
                None,
            )
            .on_switch(1),
        );
        // An injector with no fabric identity (single-switch testbed)
        // never matches a switch-scoped rule.
        let mut inj = FaultInjector::new(plan.clone());
        assert_eq!(inj.decide("init_flip", 0), None);
        // The wrong switch doesn't match either.
        let mut inj = FaultInjector::new(plan.clone());
        inj.set_switch(Some(0));
        assert_eq!(inj.decide("init_flip", 0), None);
        // The scoped switch does.
        let mut inj = FaultInjector::new(plan);
        inj.set_switch(Some(1));
        assert_eq!(
            inj.decide("init_flip", 0),
            Some(Injection::Fail { persistent: true })
        );
        // Unscoped rules match any identity.
        let mut inj = FaultInjector::new(
            FaultPlan::new().fail_persistent(FaultOp::Named("init_flip"), FaultWindow::Always),
        );
        inj.set_switch(Some(3));
        assert_eq!(
            inj.decide("init_flip", 0),
            Some(Injection::Fail { persistent: true })
        );
    }

    #[test]
    fn control_rules_match_only_channel_frames() {
        let plan = FaultPlan::new()
            .drop_frames(FaultWindow::Ops { lo: 0, hi: 10 }, 1)
            .duplicate_frames(FaultWindow::Always, 1);
        let mut inj = FaultInjector::new(plan);
        // Driver-level ops never match a Control rule.
        assert_eq!(inj.decide("table_add", 0), None);
        assert_eq!(inj.decide("register_read", 0), None);
        // The first frame is dropped, the second duplicated, the rest clean.
        assert_eq!(
            inj.decide("control_req", 0),
            Some(Injection::Fail { persistent: false })
        );
        assert_eq!(inj.decide("control_resp", 0), Some(Injection::Duplicate));
        assert_eq!(inj.decide("control_req", 0), None);
    }

    #[test]
    fn sever_control_is_switch_scoped_and_persistent() {
        let plan = FaultPlan::new().sever_control(1, 5_000);
        let mut inj = FaultInjector::new(plan.clone());
        inj.set_switch(Some(1));
        assert_eq!(inj.decide("control_req", 4_999), None, "before severance");
        for t in [5_000, 50_000, Nanos::MAX - 1] {
            assert_eq!(
                inj.decide("control_req", t),
                Some(Injection::Fail { persistent: true })
            );
        }
        // Other switches' channels are untouched.
        let mut other = FaultInjector::new(plan);
        other.set_switch(Some(0));
        assert_eq!(other.decide("control_req", 10_000), None);
    }

    #[test]
    fn persistent_rules_report_persistent_and_never_exhaust() {
        let plan =
            FaultPlan::new().fail_persistent(FaultOp::Named("port_set"), FaultWindow::Always);
        let mut inj = FaultInjector::new(plan);
        for _ in 0..100 {
            assert_eq!(
                inj.decide("port_set", 0),
                Some(Injection::Fail { persistent: true })
            );
        }
    }

    #[test]
    fn suspension_counts_ops_but_injects_nothing() {
        let plan = FaultPlan::new().fail_persistent(FaultOp::Any, FaultWindow::Always);
        let mut inj = FaultInjector::new(plan);
        inj.suspend();
        inj.suspend();
        assert_eq!(inj.decide("table_add", 0), None);
        inj.resume();
        assert_eq!(inj.decide("table_add", 0), None);
        inj.resume();
        assert!(inj.decide("table_add", 0).is_some());
        assert_eq!(inj.op_count(), 3);
        assert_eq!(inj.injected_total(), 1);
    }

    #[test]
    fn random_transient_plans_are_seed_deterministic_and_all_transient() {
        for seed in 0..64u64 {
            let a = FaultPlan::random_transient(seed, 200);
            let b = FaultPlan::random_transient(seed, 200);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert!(
                a.all_failures_transient(),
                "seed {seed} has persistent rule"
            );
            assert!(!a.rules.is_empty());
            for r in &a.rules {
                if let Some(h) = r.max_hits {
                    assert!(h <= 3, "budget {h} too large for bounded retry");
                }
            }
        }
        assert_ne!(
            FaultPlan::random_transient(1, 200),
            FaultPlan::random_transient(2, 200),
            "different seeds should differ"
        );
    }
}
