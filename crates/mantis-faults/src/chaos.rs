//! Deterministic chaos schedules: seeded generation, serialization, and
//! shrinking (DESIGN.md §13).
//!
//! A [`ChaosPlan`] is a small list of [`ChaosEvent`]s — agent crashes,
//! link flaps, driver latency spikes, control-frame drops/delays, channel
//! severance, controller crashes — generated deterministically from a
//! seed. The bench harness lowers a plan onto two scenarios:
//!
//! * **fabric** events ([`ChaosEvent::Crash`], [`ChaosEvent::Flap`],
//!   [`ChaosEvent::Delay`]) run against the leaf-spine failover fabric
//!   under `MANTIS_WORKERS > 1`;
//! * **mastership** events ([`ChaosEvent::Drop`], [`ChaosEvent::ChDelay`],
//!   [`ChaosEvent::Sever`], [`ChaosEvent::CtlCrash`]) run against a
//!   dual-controller lease-arbitration scenario.
//!
//! Both are checked against invariant oracles; when a seed fails, the
//! [`shrink`] pass minimizes its schedule — first by removing event
//! subsets (ddmin-style bisection), then by shrinking each surviving
//! event's numeric parameters — down to a smallest still-failing repro
//! that serializes into `tests/chaos_corpus/` as a regression file.

use crate::{FaultEffect, FaultOp, FaultPlan, FaultRule, FaultWindow, Nanos, SplitMix64};
use std::fmt;

/// One scheduled chaos event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Kill fabric switch `switch`'s agent at its `at_op`-th driver op.
    Crash { switch: u16, at_op: u64 },
    /// Flap a fabric link: down at `down_ns`, back up at `up_ns`.
    Flap {
        switch: u32,
        port: u32,
        down_ns: Nanos,
        up_ns: Nanos,
    },
    /// Multiply switch `switch`'s driver-op latency by
    /// `factor_milli/1000` inside the virtual-time window.
    Delay {
        switch: u16,
        from_ns: Nanos,
        to_ns: Nanos,
        factor_milli: u32,
    },
    /// Drop `count` control-channel frames starting at frame `from_op`.
    Drop { from_op: u64, count: u32 },
    /// Delay control-channel frames inside the window.
    ChDelay {
        from_ns: Nanos,
        to_ns: Nanos,
        factor_milli: u32,
    },
    /// Sever the primary controller's channel from `at_ns` onward — the
    /// persistent partition that expires its lease and forces a standby
    /// failover.
    Sever { at_ns: Nanos },
    /// Kill the primary controller process at its `at_op`-th channel op.
    CtlCrash { at_op: u64 },
}

impl ChaosEvent {
    /// Does this event lower onto the leaf-spine fabric scenario?
    pub fn is_fabric(&self) -> bool {
        matches!(
            self,
            ChaosEvent::Crash { .. } | ChaosEvent::Flap { .. } | ChaosEvent::Delay { .. }
        )
    }

    /// Does this event lower onto the dual-controller mastership
    /// scenario?
    pub fn is_control(&self) -> bool {
        !self.is_fabric()
    }
}

impl fmt::Display for ChaosEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosEvent::Crash { switch, at_op } => {
                write!(f, "crash switch={switch} at_op={at_op}")
            }
            ChaosEvent::Flap {
                switch,
                port,
                down_ns,
                up_ns,
            } => write!(
                f,
                "flap switch={switch} port={port} down={down_ns} up={up_ns}"
            ),
            ChaosEvent::Delay {
                switch,
                from_ns,
                to_ns,
                factor_milli,
            } => write!(
                f,
                "delay switch={switch} from={from_ns} to={to_ns} factor={factor_milli}"
            ),
            ChaosEvent::Drop { from_op, count } => {
                write!(f, "drop from_op={from_op} count={count}")
            }
            ChaosEvent::ChDelay {
                from_ns,
                to_ns,
                factor_milli,
            } => write!(f, "chdelay from={from_ns} to={to_ns} factor={factor_milli}"),
            ChaosEvent::Sever { at_ns } => write!(f, "sever at={at_ns}"),
            ChaosEvent::CtlCrash { at_op } => write!(f, "ctlcrash at_op={at_op}"),
        }
    }
}

/// A seeded chaos schedule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The seed the schedule was generated from (0 for hand-written or
    /// shrunk plans; informational only — replay uses the events).
    pub seed: u64,
    pub events: Vec<ChaosEvent>,
}

/// Bounds for the seeded generator, describing the scenario the plan
/// will be lowered onto.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Fabric switches (leaves + spines) crashes and delays may target.
    pub switches: u16,
    /// Flappable ports (the fabric's inter-switch uplinks).
    pub ports: Vec<u32>,
    /// Virtual-time horizon of the run; time-windowed events land in
    /// `[horizon/8, 6·horizon/8)` so recovery has room to quiesce.
    pub horizon_ns: Nanos,
    /// Approximate driver ops one agent issues over the run; crash
    /// points are drawn from `[0, ops_hint)`.
    pub ops_hint: u64,
    /// Maximum events per schedule.
    pub max_events: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            switches: 4,
            ports: vec![8, 9],
            horizon_ns: 400_000,
            ops_hint: 120,
            max_events: 6,
        }
    }
}

impl ChaosPlan {
    /// Generate a seed-deterministic schedule within `cfg`'s bounds.
    /// At most one [`ChaosEvent::Crash`] per switch and one
    /// [`ChaosEvent::CtlCrash`]/[`ChaosEvent::Sever`] per plan, so a
    /// restarted process never re-arms its own crash rule.
    pub fn generate(seed: u64, cfg: &ChaosConfig) -> ChaosPlan {
        let mut rng = SplitMix64::new(seed);
        let n = 1 + (rng.next() as usize) % cfg.max_events.max(1);
        let mut events = Vec::with_capacity(n);
        let mut crashed: Vec<u16> = Vec::new();
        let mut ctl_crashed = false;
        let mut severed = false;
        let span = cfg.horizon_ns.max(8);
        let window = |rng: &mut SplitMix64| {
            let lo = span / 8 + rng.next() % (span / 2);
            let len = span / 16 + rng.next() % (span / 4);
            (lo, lo + len)
        };
        for _ in 0..n {
            let ev = match rng.next() % 7 {
                0 => {
                    let switch = (rng.next() % u64::from(cfg.switches.max(1))) as u16;
                    if crashed.contains(&switch) {
                        continue;
                    }
                    crashed.push(switch);
                    ChaosEvent::Crash {
                        switch,
                        at_op: rng.next() % cfg.ops_hint.max(1),
                    }
                }
                1 => {
                    let port = cfg.ports[(rng.next() as usize) % cfg.ports.len().max(1)];
                    let (down_ns, up_ns) = window(&mut rng);
                    ChaosEvent::Flap {
                        switch: (rng.next() % u64::from(cfg.switches.max(1))) as u32,
                        port,
                        down_ns,
                        up_ns,
                    }
                }
                2 => {
                    let (from_ns, to_ns) = window(&mut rng);
                    ChaosEvent::Delay {
                        switch: (rng.next() % u64::from(cfg.switches.max(1))) as u16,
                        from_ns,
                        to_ns,
                        factor_milli: 1_500 + (rng.next() % 6_000) as u32,
                    }
                }
                3 => ChaosEvent::Drop {
                    from_op: rng.next() % cfg.ops_hint.max(1),
                    count: 1 + (rng.next() % 3) as u32,
                },
                4 => {
                    let (from_ns, to_ns) = window(&mut rng);
                    ChaosEvent::ChDelay {
                        from_ns,
                        to_ns,
                        factor_milli: 1_500 + (rng.next() % 4_000) as u32,
                    }
                }
                5 => {
                    if severed {
                        continue;
                    }
                    severed = true;
                    ChaosEvent::Sever {
                        at_ns: span / 8 + rng.next() % (span / 2),
                    }
                }
                _ => {
                    if ctl_crashed {
                        continue;
                    }
                    ctl_crashed = true;
                    ChaosEvent::CtlCrash {
                        at_op: rng.next() % cfg.ops_hint.max(1),
                    }
                }
            };
            events.push(ev);
        }
        ChaosPlan { seed, events }
    }

    /// Lower the fabric-scenario events onto a [`FaultPlan`] every fabric
    /// agent's driver installs (rules are switch-scoped, so each injector
    /// only fires its own switch's events). Link flaps ride along in
    /// `link_flaps` for `netsim::schedule_link_flaps`.
    pub fn fabric_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for ev in &self.events {
            match *ev {
                ChaosEvent::Crash { switch, at_op } => {
                    plan = plan.crash_at_op_on(switch, at_op);
                }
                ChaosEvent::Flap {
                    switch,
                    port,
                    down_ns,
                    up_ns,
                } => {
                    plan = plan.flap_on(switch, port, down_ns, up_ns);
                }
                ChaosEvent::Delay {
                    switch,
                    from_ns,
                    to_ns,
                    factor_milli,
                } => {
                    plan = plan.rule(
                        FaultRule::new(
                            FaultOp::Any,
                            FaultEffect::Delay { factor_milli },
                            FaultWindow::Time {
                                lo: from_ns,
                                hi: to_ns,
                            },
                            Some(4),
                        )
                        .on_switch(switch),
                    );
                }
                _ => {}
            }
        }
        plan
    }

    /// The fabric plan a *restarted* agent on `switch` installs: the same
    /// schedule minus every crash rule targeting it — a restarted process
    /// is a new process, so one [`ChaosEvent::Crash`] kills it once.
    pub fn restart_plan(&self, switch: u16) -> FaultPlan {
        let mut full = self.fabric_plan();
        full.rules
            .retain(|r| !(r.effect == FaultEffect::Crash && r.switch == Some(switch)));
        full
    }

    /// Lower the mastership-scenario events onto the fault plan installed
    /// on the *primary* controller (the standby stays clean so the
    /// single-master oracle watches a live failover target).
    pub fn control_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for ev in &self.events {
            match *ev {
                ChaosEvent::Drop { from_op, count } => {
                    plan = plan.fail_transient(
                        FaultOp::Control,
                        FaultWindow::Ops {
                            lo: from_op,
                            hi: from_op + u64::from(count) + 8,
                        },
                        count,
                    );
                }
                ChaosEvent::ChDelay {
                    from_ns,
                    to_ns,
                    factor_milli,
                } => {
                    plan = plan.delay(
                        FaultOp::Control,
                        FaultWindow::Time {
                            lo: from_ns,
                            hi: to_ns,
                        },
                        factor_milli,
                        4,
                    );
                }
                ChaosEvent::Sever { at_ns } => {
                    plan = plan.rule(FaultRule::new(
                        FaultOp::Control,
                        FaultEffect::Fail,
                        FaultWindow::Time {
                            lo: at_ns,
                            hi: Nanos::MAX,
                        },
                        None,
                    ));
                }
                ChaosEvent::CtlCrash { at_op } => {
                    plan = plan.rule(FaultRule::new(
                        FaultOp::Control,
                        FaultEffect::Crash,
                        FaultWindow::Ops {
                            lo: at_op,
                            hi: at_op + 1,
                        },
                        Some(1),
                    ));
                }
                _ => {}
            }
        }
        plan
    }

    /// Crash events by fabric switch, in schedule order.
    pub fn fabric_crashes(&self) -> Vec<(u16, u64)> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                ChaosEvent::Crash { switch, at_op } => Some((switch, at_op)),
                _ => None,
            })
            .collect()
    }

    pub fn has_fabric_events(&self) -> bool {
        self.events.iter().any(|e| e.is_fabric())
    }

    pub fn has_control_events(&self) -> bool {
        self.events.iter().any(|e| e.is_control())
    }

    // -- serialization -------------------------------------------------------

    /// Serialize to the line-based corpus format (`# mantis chaos plan v1`).
    pub fn to_text(&self) -> String {
        let mut out = String::from("# mantis chaos plan v1\n");
        out.push_str(&format!("seed {}\n", self.seed));
        for ev in &self.events {
            out.push_str(&format!("{ev}\n"));
        }
        out
    }

    /// Parse the corpus format. Blank lines and `#` comments are ignored.
    pub fn parse(text: &str) -> Result<ChaosPlan, ChaosParseError> {
        let mut plan = ChaosPlan::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let head = parts.next().unwrap_or_default();
            let err = |what: &str| ChaosParseError {
                line: lineno + 1,
                what: what.to_string(),
            };
            let mut fields: Vec<(&str, &str)> = Vec::new();
            for p in parts {
                if head == "seed" {
                    fields.push(("seed", p));
                    continue;
                }
                let (k, v) = p.split_once('=').ok_or_else(|| err("expected key=value"))?;
                fields.push((k, v));
            }
            let get = |key: &str| -> Result<u64, ChaosParseError> {
                fields
                    .iter()
                    .find(|(k, _)| *k == key)
                    .ok_or_else(|| err(&format!("missing `{key}`")))
                    .and_then(|(_, v)| v.parse::<u64>().map_err(|_| err(&format!("bad `{key}`"))))
            };
            match head {
                "seed" => plan.seed = get("seed")?,
                "crash" => plan.events.push(ChaosEvent::Crash {
                    switch: get("switch")? as u16,
                    at_op: get("at_op")?,
                }),
                "flap" => plan.events.push(ChaosEvent::Flap {
                    switch: get("switch")? as u32,
                    port: get("port")? as u32,
                    down_ns: get("down")?,
                    up_ns: get("up")?,
                }),
                "delay" => plan.events.push(ChaosEvent::Delay {
                    switch: get("switch")? as u16,
                    from_ns: get("from")?,
                    to_ns: get("to")?,
                    factor_milli: get("factor")? as u32,
                }),
                "drop" => plan.events.push(ChaosEvent::Drop {
                    from_op: get("from_op")?,
                    count: get("count")? as u32,
                }),
                "chdelay" => plan.events.push(ChaosEvent::ChDelay {
                    from_ns: get("from")?,
                    to_ns: get("to")?,
                    factor_milli: get("factor")? as u32,
                }),
                "sever" => plan.events.push(ChaosEvent::Sever { at_ns: get("at")? }),
                "ctlcrash" => plan.events.push(ChaosEvent::CtlCrash {
                    at_op: get("at_op")?,
                }),
                other => return Err(err(&format!("unknown event `{other}`"))),
            }
        }
        Ok(plan)
    }
}

/// A malformed corpus line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosParseError {
    pub line: usize,
    pub what: String,
}

impl fmt::Display for ChaosParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chaos plan line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for ChaosParseError {}

// -- shrinking ---------------------------------------------------------------

/// Minimize a failing schedule: `fails(candidate)` must return `true`
/// when the candidate still reproduces the failure. First events are
/// removed with the generic [`crate::ddmin`] chunk-halving loop until no
/// subset can be dropped, then every surviving event's numeric parameters
/// are halved while the failure persists. Deterministic given a
/// deterministic predicate; the result still satisfies `fails`.
pub fn shrink<F>(plan: &ChaosPlan, mut fails: F) -> ChaosPlan
where
    F: FnMut(&ChaosPlan) -> bool,
{
    let mut best = plan.clone();
    debug_assert!(fails(&best), "shrink() needs a failing starting plan");

    // Phase 1: event-subset bisection (greedy ddmin).
    best.events = crate::ddmin(&best.events, |events| {
        let mut candidate = plan.clone();
        candidate.events = events.to_vec();
        fails(&candidate)
    });

    // Phase 2: per-event parameter shrinking (halve numerics toward
    // their floor while the failure persists; bounded passes).
    for _ in 0..16 {
        let mut changed = false;
        for i in 0..best.events.len() {
            while let Some(smaller) = shrink_event(&best.events[i]) {
                let mut candidate = best.clone();
                candidate.events[i] = smaller;
                if !fails(&candidate) {
                    break;
                }
                best = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    best
}

/// One halving step of an event's numeric parameters; `None` once every
/// field is at its floor.
fn shrink_event(ev: &ChaosEvent) -> Option<ChaosEvent> {
    let half = |v: u64| v / 2;
    let half32 = |v: u32| v / 2;
    let shrunk = match *ev {
        ChaosEvent::Crash { switch, at_op } if at_op > 0 => ChaosEvent::Crash {
            switch,
            at_op: half(at_op),
        },
        ChaosEvent::Flap {
            switch,
            port,
            down_ns,
            up_ns,
        } if down_ns > 0 || up_ns > down_ns + 1 => ChaosEvent::Flap {
            switch,
            port,
            down_ns: half(down_ns),
            up_ns: (half(down_ns) + 1).max(half(up_ns)),
        },
        ChaosEvent::Delay {
            switch,
            from_ns,
            to_ns,
            factor_milli,
        } if factor_milli > 1_500 || from_ns > 0 => ChaosEvent::Delay {
            switch,
            from_ns: half(from_ns),
            to_ns: (half(from_ns) + 1).max(half(to_ns)),
            factor_milli: half32(factor_milli).max(1_500),
        },
        ChaosEvent::Drop { from_op, count } if from_op > 0 || count > 1 => ChaosEvent::Drop {
            from_op: half(from_op),
            count: half32(count).max(1),
        },
        ChaosEvent::ChDelay {
            from_ns,
            to_ns,
            factor_milli,
        } if factor_milli > 1_500 || from_ns > 0 => ChaosEvent::ChDelay {
            from_ns: half(from_ns),
            to_ns: (half(from_ns) + 1).max(half(to_ns)),
            factor_milli: half32(factor_milli).max(1_500),
        },
        ChaosEvent::Sever { at_ns } if at_ns > 0 => ChaosEvent::Sever { at_ns: half(at_ns) },
        ChaosEvent::CtlCrash { at_op } if at_op > 0 => ChaosEvent::CtlCrash { at_op: half(at_op) },
        _ => return None,
    };
    Some(shrunk)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ChaosConfig {
        ChaosConfig::default()
    }

    #[test]
    fn generation_is_seed_deterministic() {
        for seed in 0..64 {
            let a = ChaosPlan::generate(seed, &cfg());
            let b = ChaosPlan::generate(seed, &cfg());
            assert_eq!(a, b, "seed {seed}");
            assert!(!a.events.is_empty());
            assert!(a.events.len() <= cfg().max_events);
        }
        assert_ne!(
            ChaosPlan::generate(3, &cfg()),
            ChaosPlan::generate(4, &cfg())
        );
    }

    #[test]
    fn at_most_one_crash_per_switch() {
        for seed in 0..256 {
            let plan = ChaosPlan::generate(seed, &cfg());
            let mut seen = Vec::new();
            for (sw, _) in plan.fabric_crashes() {
                assert!(
                    !seen.contains(&sw),
                    "seed {seed}: switch {sw} crashes twice"
                );
                seen.push(sw);
            }
            let ctl = plan
                .events
                .iter()
                .filter(|e| matches!(e, ChaosEvent::CtlCrash { .. }))
                .count();
            assert!(ctl <= 1, "seed {seed}: {ctl} controller crashes");
        }
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        for seed in 0..64 {
            let plan = ChaosPlan::generate(seed, &cfg());
            let text = plan.to_text();
            let back = ChaosPlan::parse(&text).expect("parse");
            assert_eq!(plan, back, "seed {seed}:\n{text}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ChaosPlan::parse("explode switch=1").is_err());
        assert!(ChaosPlan::parse("crash switch=x at_op=1").is_err());
        assert!(ChaosPlan::parse("crash switch=1").is_err(), "missing field");
        // Comments and blanks are fine.
        let ok = ChaosPlan::parse("# hi\n\nseed 9\ncrash switch=1 at_op=2\n").unwrap();
        assert_eq!(ok.seed, 9);
        assert_eq!(ok.events.len(), 1);
    }

    #[test]
    fn restart_plan_drops_only_that_switchs_crash() {
        let plan = ChaosPlan {
            seed: 0,
            events: vec![
                ChaosEvent::Crash {
                    switch: 1,
                    at_op: 5,
                },
                ChaosEvent::Crash {
                    switch: 2,
                    at_op: 9,
                },
                ChaosEvent::Delay {
                    switch: 1,
                    from_ns: 0,
                    to_ns: 100,
                    factor_milli: 2_000,
                },
            ],
        };
        let restart = plan.restart_plan(1);
        assert!(restart
            .rules
            .iter()
            .all(|r| !(r.effect == FaultEffect::Crash && r.switch == Some(1))));
        assert!(restart
            .rules
            .iter()
            .any(|r| r.effect == FaultEffect::Crash && r.switch == Some(2)));
        assert!(restart
            .rules
            .iter()
            .any(|r| matches!(r.effect, FaultEffect::Delay { .. })));
    }

    #[test]
    fn shrinking_finds_the_one_guilty_event() {
        // Synthetic oracle: the failure reproduces iff the plan contains
        // a crash on switch 2 (parameters irrelevant).
        let plan = ChaosPlan::generate(
            7,
            &ChaosConfig {
                max_events: 12,
                ..cfg()
            },
        );
        let mut plan = plan;
        plan.events.push(ChaosEvent::Crash {
            switch: 2,
            at_op: 97,
        });
        let fails = |p: &ChaosPlan| {
            p.events
                .iter()
                .any(|e| matches!(e, ChaosEvent::Crash { switch: 2, .. }))
        };
        let min = shrink(&plan, fails);
        assert_eq!(min.events.len(), 1, "minimal repro is one event: {min:?}");
        assert_eq!(
            min.events[0],
            ChaosEvent::Crash {
                switch: 2,
                at_op: 0
            },
            "parameters shrink to the floor"
        );
        assert!(fails(&min), "shrunk plan still fails");
    }

    #[test]
    fn shrinking_preserves_conjunctive_failures() {
        // Failure needs BOTH a sever and a drop — shrinking must not
        // remove either.
        let plan = ChaosPlan {
            seed: 0,
            events: vec![
                ChaosEvent::Flap {
                    switch: 0,
                    port: 8,
                    down_ns: 10,
                    up_ns: 20,
                },
                ChaosEvent::Sever { at_ns: 5_000 },
                ChaosEvent::Delay {
                    switch: 0,
                    from_ns: 0,
                    to_ns: 9,
                    factor_milli: 3_000,
                },
                ChaosEvent::Drop {
                    from_op: 12,
                    count: 3,
                },
            ],
        };
        let fails = |p: &ChaosPlan| {
            p.events
                .iter()
                .any(|e| matches!(e, ChaosEvent::Sever { .. }))
                && p.events
                    .iter()
                    .any(|e| matches!(e, ChaosEvent::Drop { .. }))
        };
        let min = shrink(&plan, fails);
        assert_eq!(min.events.len(), 2);
        assert!(fails(&min));
    }
}
