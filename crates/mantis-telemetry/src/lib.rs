//! Virtual-clock-native observability for the Mantis stack.
//!
//! Everything in the simulator runs on a shared virtual clock, so
//! telemetry here is *deterministic*: two runs with the same seed
//! produce byte-identical traces and snapshots. The crate deliberately
//! has no dependencies and no notion of wall time — callers pass
//! virtual-clock timestamps (`Nanos`) into every recording call.
//!
//! Three facilities share one [`Telemetry`] handle:
//!
//! * a **tracer** — a fixed-capacity ring buffer of span begin/end and
//!   instant events, exportable as Chrome `trace_event` JSON
//!   ([`Telemetry::chrome_trace_json`]) that loads directly into
//!   Perfetto / `chrome://tracing`;
//! * a **metrics registry** — counters, gauges, and log-linear
//!   histograms with p50/p95/p99 snapshots
//!   ([`Telemetry::snapshot`], [`Telemetry::snapshot_json`]);
//! * **reaction-loop profiling conventions** — the agent records its
//!   dialogue phases as spans ([`scopes`]) and each driver op into
//!   per-op histograms, so a single trace shows where a reaction
//!   window went.
//!
//! The handle is `Arc`-shared and internally mutexed, so the deterministic
//! parallel fabric executor (DESIGN.md §12) can hand worker threads
//! per-shard *staging* handles ([`Telemetry::staging`]) and merge them
//! back into the main registry in canonical shard order at each epoch
//! barrier ([`Telemetry::merge_from`]) — trace bytes stay identical to a
//! sequential run at any worker count.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};

/// Virtual-clock timestamp, nanoseconds. Mirrors `rmt_sim::Nanos`
/// without depending on it (this crate sits below the whole stack).
pub type Nanos = u64;

/// Trace scopes, rendered as named "threads" in the Chrome trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scope {
    /// The control-plane agent's dialogue loop.
    Agent,
    /// The Mantis driver (P4Runtime-ish op costs, locking).
    Driver,
    /// The RMT pipeline (stages, parser/deparser).
    Switch,
    /// The traffic manager (queues, scheduling).
    TrafficManager,
    /// The host/network simulation (flows, drops, marks).
    NetSim,
    /// Benchmark harness bookkeeping.
    Bench,
}

impl Scope {
    /// Stable Chrome-trace thread id for the scope.
    pub fn tid(self) -> u32 {
        match self {
            Scope::Agent => 1,
            Scope::Driver => 2,
            Scope::Switch => 3,
            Scope::TrafficManager => 4,
            Scope::NetSim => 5,
            Scope::Bench => 6,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Scope::Agent => "agent",
            Scope::Driver => "driver",
            Scope::Switch => "switch",
            Scope::TrafficManager => "traffic-manager",
            Scope::NetSim => "netsim",
            Scope::Bench => "bench",
        }
    }

    const ALL: [Scope; 6] = [
        Scope::Agent,
        Scope::Driver,
        Scope::Switch,
        Scope::TrafficManager,
        Scope::NetSim,
        Scope::Bench,
    ];
}

/// Span / metric naming conventions used across the workspace, kept in
/// one place so instrumentation sites and consumers (bench, tests)
/// cannot drift apart.
pub mod scopes {
    /// One full dialogue iteration (measure → react → update → sync).
    pub const SPAN_ITERATION: &str = "iteration";
    /// Phase 1: write the master sequence register + batched reads.
    pub const SPAN_MEASURE: &str = "measure";
    /// Phase 2: run user reactions against the measurement snapshot.
    pub const SPAN_REACT: &str = "react";
    /// Phase 3: apply staged malleable updates (prepare + commit).
    pub const SPAN_UPDATE: &str = "update";
    /// Phase 4: mirror committed state into the agent's shadow copy.
    pub const SPAN_SYNC: &str = "sync";

    /// Histogram of per-iteration busy time.
    pub const HIST_ITERATION_NS: &str = "agent.iteration_ns";
    pub const HIST_MEASURE_NS: &str = "agent.measure_ns";
    pub const HIST_REACT_NS: &str = "agent.react_ns";
    pub const HIST_UPDATE_NS: &str = "agent.update_ns";
    pub const HIST_SYNC_NS: &str = "agent.sync_ns";

    /// Total iterations / busy nanoseconds (drive `run_paced` stats).
    pub const CTR_ITERATIONS: &str = "agent.iterations";
    pub const CTR_BUSY_NS: &str = "agent.busy_ns";
    pub const CTR_STAGED_TABLE_OPS: &str = "agent.staged_table_ops";

    /// Per-driver-op latency histograms (`driver.<op>_ns`) and call
    /// counters (`driver.<op>_calls`) are derived from the op name via
    /// [`super::Telemetry::driver_op`].
    pub const DRIVER_OP_PREFIX: &str = "driver.";

    // -- fault tolerance (DESIGN.md §8) --------------------------------

    /// Faults injected by a `mantis-faults` plan into driver ops.
    pub const CTR_FAULTS_INJECTED: &str = "fault.injected";
    /// Driver-op retries performed by the agent.
    pub const CTR_RETRIES: &str = "agent.retries";
    /// Transactional rollbacks of the malleable-update phase.
    pub const CTR_ROLLBACKS: &str = "agent.rollbacks";
    /// Reaction executions skipped because their breaker was open.
    pub const CTR_QUARANTINE_SKIPS: &str = "agent.quarantined";
    /// Reactions that fell back from the bytecode VM to the tree-walker
    /// because VM compilation was unsupported (walker-only coverage).
    pub const CTR_VM_FALLBACK: &str = "reaction.vm_fallback";
    /// Histogram of virtual-clock retry backoffs.
    pub const HIST_RETRY_BACKOFF_NS: &str = "agent.retry_backoff_ns";
    /// Currently quarantined (breaker-open) reactions.
    pub const GAUGE_QUARANTINED: &str = "agent.quarantined_reactions";
    /// 1 while at least one reaction is quarantined (degraded mode).
    pub const GAUGE_DEGRADED: &str = "agent.degraded";

    // -- remote control plane (DESIGN.md §11) ---------------------------

    /// Control-channel frames transmitted (every attempt, retries and
    /// injected duplicates included).
    pub const CTR_CONTROL_FRAMES: &str = "control.frames";
    /// Control-channel bytes transmitted.
    pub const CTR_CONTROL_BYTES: &str = "control.bytes";
    /// Request frames lost to an injected channel fault.
    pub const CTR_CONTROL_DROPS: &str = "control.frames_dropped";
    /// Frames delivered twice by an injected channel fault (the endpoint
    /// deduplicates by sequence number).
    pub const CTR_CONTROL_DUPS: &str = "control.frames_duplicated";
    /// Driver ops carried per request frame (batching effectiveness).
    pub const HIST_CONTROL_BATCH: &str = "control.batch_size";
    /// Virtual-time round-trip latency per successful request frame.
    pub const HIST_CONTROL_RTT_NS: &str = "control.rtt_ns";
    /// Driver ops that failed with an injected fault, mirrored from
    /// `DriverStats.injected_failures` (recorded only when faults fire, so
    /// fault-free traces stay byte-identical).
    pub const CTR_DRIVER_INJECTED: &str = "driver.injected_failures";

    // -- multi-pipe (DESIGN.md §9) -------------------------------------

    /// Name a metric scoped to one hardware pipe (`pipe<p>.<name>`).
    /// Multi-pipe switches label per-pipe counters this way; a
    /// single-pipe switch emits the unprefixed name so existing traces
    /// stay byte-identical.
    pub fn pipe_metric(pipe: u16, name: &str) -> String {
        format!("pipe{pipe}.{name}")
    }

    // -- multi-switch fabric (DESIGN.md §10) ----------------------------

    /// Name a metric scoped to one switch of a fabric (`sw<i>.<name>`),
    /// mirroring [`pipe_metric`]. Fabrics with more than one switch label
    /// per-switch counters this way; a single-switch testbed emits the
    /// unprefixed name so existing traces stay byte-identical.
    pub fn switch_metric(switch: u16, name: &str) -> String {
        format!("sw{switch}.{name}")
    }
}

// -- configuration ----------------------------------------------------------

#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Ring-buffer capacity for trace events; older events are dropped
    /// (and counted) once full.
    pub trace_capacity: usize,
    /// Master switch: when false, recording calls are no-ops (metrics
    /// and events alike) and exports describe an empty registry.
    pub enabled: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            trace_capacity: 1 << 16,
            enabled: true,
        }
    }
}

// -- trace events -----------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum Phase {
    Begin,
    End,
    Instant,
}

#[derive(Clone, Debug)]
struct Event {
    t: Nanos,
    scope: Scope,
    phase: Phase,
    name: String,
    /// Small numeric payload; rendered into Chrome-trace `args`.
    args: Vec<(&'static str, i128)>,
}

// -- log-linear histogram ---------------------------------------------------

const SUB_BUCKETS: usize = 16;
const MAGNITUDES: usize = 64;

/// Log-linear histogram over `u64` values: 64 power-of-two magnitude
/// ranges, each split into 16 linear sub-buckets (~6% relative error on
/// quantile estimates). Deterministic and allocation-free after
/// construction.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u32>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; MAGNITUDES * SUB_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let mag = 63 - v.leading_zeros() as usize;
    // Top SUB_BUCKETS.ilog2() bits below the leading one pick the
    // sub-bucket within the magnitude.
    let shift = mag.saturating_sub(4);
    let sub = ((v >> shift) as usize) & (SUB_BUCKETS - 1);
    mag * SUB_BUCKETS + sub
}

fn bucket_value(index: usize) -> u64 {
    let mag = index / SUB_BUCKETS;
    let sub = (index % SUB_BUCKETS) as u64;
    if mag < 4 {
        return (mag as u64 * SUB_BUCKETS as u64 + sub).min(SUB_BUCKETS as u64 - 1);
    }
    // Midpoint of the sub-bucket's range.
    let base = (1u64 << mag) | (sub << (mag - 4));
    base + (1u64 << (mag - 4)) / 2
}

impl Histogram {
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one (bucket-wise). Histograms are
    /// distributions, so merging is commutative — the epoch-barrier merge
    /// still applies shards in canonical order for uniformity.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Quantile estimate (`q` in `[0, 1]`); exact at the recorded min
    /// and max, bucket-midpoint otherwise. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += u64::from(*c);
            if seen >= rank {
                return bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum as f64 / self.count as f64
            },
        }
    }
}

/// Point-in-time summary of one histogram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u128,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub mean: f64,
}

/// Point-in-time copy of the whole registry.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, i128>,
    pub gauges: BTreeMap<String, i128>,
    pub hists: BTreeMap<String, HistSnapshot>,
    /// Trace events currently held in the ring buffer.
    pub events_buffered: u64,
    /// Events evicted because the ring buffer was full.
    pub events_dropped: u64,
}

impl Snapshot {
    pub fn counter(&self, name: &str) -> i128 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> i128 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.get(name)
    }
}

// -- the shared handle ------------------------------------------------------

#[derive(Debug, Default)]
struct Inner {
    config: TelemetryConfig,
    events: VecDeque<Event>,
    events_dropped: u64,
    counters: BTreeMap<String, i128>,
    gauges: BTreeMap<String, i128>,
    hists: BTreeMap<String, Histogram>,
}

/// The shared telemetry handle. Clone the `Arc` freely; all methods
/// take `&self`.
#[derive(Debug)]
pub struct Telemetry {
    inner: Mutex<Inner>,
    /// Names this registry in the poison panic, so a recorder thread
    /// that dies mid-update points at the failing shard.
    label: String,
    /// Mirror of `config.enabled`, which is fixed at construction: the
    /// packet hot path checks it before every record and must not pay a
    /// mutex acquisition for a constant.
    enabled: bool,
}

impl Telemetry {
    pub fn new(config: TelemetryConfig) -> Self {
        Telemetry::labeled(config, String::new())
    }

    // NOTE: no derived `Default` — the cached `enabled` mirror must agree
    // with the config inside the mutex, so construction always funnels
    // through `labeled`.

    /// A registry whose poison panic names `label` (e.g. which staging
    /// shard it backs).
    pub fn labeled(config: TelemetryConfig, label: impl Into<String>) -> Self {
        let enabled = config.enabled;
        Telemetry {
            inner: Mutex::new(Inner {
                config,
                ..Inner::default()
            }),
            label: label.into(),
            enabled,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(_) => {
                // A recorder panicked while holding the registry. Limping
                // on over half-applied counter updates would surface as
                // an unrelated conservation-oracle failure later — crash
                // loudly here, naming the registry, so chaos-test
                // failures point at the shard that died.
                let who = if self.label.is_empty() {
                    "shared registry"
                } else {
                    self.label.as_str()
                };
                panic!(
                    "Telemetry: lock poisoned ({who}) — a recorder panicked \
                     mid-update; metrics are suspect, aborting"
                );
            }
        }
    }

    /// An enabled handle with default config, ready to share.
    pub fn shared() -> Arc<Telemetry> {
        Arc::new(Telemetry::new(TelemetryConfig::default()))
    }

    /// A handle that records nothing (the default for components whose
    /// caller did not ask for telemetry).
    pub fn disabled() -> Arc<Telemetry> {
        Arc::new(Telemetry::new(TelemetryConfig {
            enabled: false,
            trace_capacity: 0,
        }))
    }

    /// A fresh per-shard staging handle mirroring this handle's master
    /// switch: enabled iff `self` is, with an effectively unbounded ring so
    /// *which* events get dropped stays a property of the main ring's
    /// capacity, not of how the epoch was sharded. Worker threads record
    /// into their shard's staging handle; the coordinator folds the
    /// buffers back in canonical shard order with [`Telemetry::merge_from`].
    pub fn staging(&self) -> Arc<Telemetry> {
        self.staging_for("unnamed staging shard")
    }

    /// [`Telemetry::staging`] with a shard label, named in the poison
    /// panic if a worker dies while holding the staging registry.
    pub fn staging_for(&self, label: impl Into<String>) -> Arc<Telemetry> {
        let enabled = self.is_enabled();
        Arc::new(Telemetry::labeled(
            TelemetryConfig {
                enabled,
                trace_capacity: if enabled { usize::MAX } else { 0 },
            },
            label,
        ))
    }

    /// Drain `staged` (a buffer produced via [`Telemetry::staging`]) into
    /// this handle: trace events are appended in their recorded order
    /// (subject to this handle's ring capacity, exactly as if they had
    /// been recorded here directly), counters add, gauges take the staged
    /// final value, and histograms fold bucket-wise. Calling this for
    /// every shard in canonical `(switch, pipe)` order reproduces the
    /// byte-exact sequential recording order.
    pub fn merge_from(&self, staged: &Telemetry) {
        let mut src = staged.lock();
        if !src.config.enabled {
            return;
        }
        let events: Vec<Event> = src.events.drain(..).collect();
        let counters = std::mem::take(&mut src.counters);
        let gauges = std::mem::take(&mut src.gauges);
        let hists = std::mem::take(&mut src.hists);
        let dropped = std::mem::take(&mut src.events_dropped);
        drop(src);
        {
            let mut dst = self.lock();
            if !dst.config.enabled {
                return;
            }
            // Staging rings are unbounded, so `dropped` is 0 in practice;
            // carry it anyway so accounting can never lose events silently.
            dst.events_dropped += dropped;
            for ev in events {
                if dst.events.len() >= dst.config.trace_capacity {
                    dst.events.pop_front();
                    dst.events_dropped += 1;
                }
                if dst.config.trace_capacity > 0 {
                    dst.events.push_back(ev);
                } else {
                    dst.events_dropped += 1;
                }
            }
            for (name, delta) in counters {
                match dst.counters.get_mut(&name) {
                    Some(v) => *v += delta,
                    None => {
                        dst.counters.insert(name, delta);
                    }
                }
            }
            for (name, value) in gauges {
                dst.gauges.insert(name, value);
            }
            for (name, h) in hists {
                match dst.hists.get_mut(&name) {
                    Some(existing) => existing.merge(&h),
                    None => {
                        dst.hists.insert(name, h);
                    }
                }
            }
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// [`is_enabled`](Telemetry::is_enabled) at its historical cost: a
    /// mutex acquisition per check. The answer is identical; only the
    /// price differs. Benchmark baselines that replicate the pre-cache
    /// engine call this so their per-packet cost shape stays faithful.
    pub fn is_enabled_uncached(&self) -> bool {
        self.lock().config.enabled
    }

    // -- tracer ------------------------------------------------------------

    pub fn span_begin(&self, scope: Scope, name: &str, t: Nanos) {
        self.push(Event {
            t,
            scope,
            phase: Phase::Begin,
            name: name.to_string(),
            args: Vec::new(),
        });
    }

    pub fn span_end(&self, scope: Scope, name: &str, t: Nanos) {
        self.push(Event {
            t,
            scope,
            phase: Phase::End,
            name: name.to_string(),
            args: Vec::new(),
        });
    }

    /// A point event with a small numeric payload.
    pub fn instant(&self, scope: Scope, name: &str, t: Nanos, args: &[(&'static str, i128)]) {
        self.push(Event {
            t,
            scope,
            phase: Phase::Instant,
            name: name.to_string(),
            args: args.to_vec(),
        });
    }

    fn push(&self, ev: Event) {
        let mut inner = self.lock();
        if !inner.config.enabled {
            return;
        }
        if inner.events.len() >= inner.config.trace_capacity {
            inner.events.pop_front();
            inner.events_dropped += 1;
        }
        if inner.config.trace_capacity > 0 {
            inner.events.push_back(ev);
        } else {
            inner.events_dropped += 1;
        }
    }

    // -- metrics registry --------------------------------------------------

    pub fn counter_add(&self, name: &str, delta: i128) {
        let mut inner = self.lock();
        if !inner.config.enabled {
            return;
        }
        match inner.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    pub fn gauge_set(&self, name: &str, value: i128) {
        let mut inner = self.lock();
        if !inner.config.enabled {
            return;
        }
        match inner.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                inner.gauges.insert(name.to_string(), value);
            }
        }
    }

    pub fn hist_record(&self, name: &str, value: u64) {
        let mut inner = self.lock();
        if !inner.config.enabled {
            return;
        }
        match inner.hists.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                inner.hists.insert(name.to_string(), h);
            }
        }
    }

    /// Record one driver op: bumps `driver.<op>_calls` and feeds
    /// `driver.<op>_ns`. This is the per-op accounting behind the
    /// reaction-loop profile (batched register reads vs table writes
    /// vs scalar updates all show up as separate histograms).
    pub fn driver_op(&self, op: &str, cost_ns: Nanos) {
        {
            let inner = self.lock();
            if !inner.config.enabled {
                return;
            }
        }
        self.counter_add(&format!("{}{}_calls", scopes::DRIVER_OP_PREFIX, op), 1);
        self.hist_record(&format!("{}{}_ns", scopes::DRIVER_OP_PREFIX, op), cost_ns);
    }

    pub fn counter(&self, name: &str) -> i128 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> i128 {
        self.lock().gauges.get(name).copied().unwrap_or(0)
    }

    pub fn hist_quantile(&self, name: &str, q: f64) -> u64 {
        self.lock()
            .hists
            .get(name)
            .map(|h| h.quantile(q))
            .unwrap_or(0)
    }

    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            hists: inner
                .hists
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            events_buffered: inner.events.len() as u64,
            events_dropped: inner.events_dropped,
        }
    }

    /// Drop all recorded events and metrics (config is kept).
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.events.clear();
        inner.events_dropped = 0;
        inner.counters.clear();
        inner.gauges.clear();
        inner.hists.clear();
    }

    // -- exporters ---------------------------------------------------------

    /// Chrome `trace_event` JSON (the "JSON Array Format" wrapped in an
    /// object), loadable in Perfetto / `chrome://tracing`. Timestamps
    /// are virtual-clock microseconds with nanosecond fractions;
    /// output is byte-deterministic for a given event sequence.
    pub fn chrome_trace_json(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        let mut first = true;
        // Thread-name metadata so scopes render with readable labels.
        for scope in Scope::ALL {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                scope.tid(),
                scope.name()
            );
        }
        for ev in &inner.events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let ph = match ev.phase {
                Phase::Begin => "B",
                Phase::End => "E",
                Phase::Instant => "i",
            };
            let _ = write!(
                out,
                "{{\"ph\":\"{}\",\"pid\":0,\"tid\":{},\"ts\":{}.{:03},\"name\":\"{}\"",
                ph,
                ev.scope.tid(),
                ev.t / 1_000,
                ev.t % 1_000,
                escape_json(&ev.name),
            );
            if ev.phase == Phase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            if !ev.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in ev.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":{}", escape_json(k), v);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Flat JSON snapshot of the metrics registry: counters, gauges,
    /// and histogram summaries. Byte-deterministic (sorted keys).
    pub fn snapshot_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &snap.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", escape_json(k), v);
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        first = true;
        for (k, v) in &snap.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", escape_json(k), v);
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        first = true;
        for (k, h) in &snap.hists {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                escape_json(k),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p95,
                h.p99
            );
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        let _ = write!(
            out,
            "  \"events_buffered\": {},\n  \"events_dropped\": {}\n}}\n",
            snap.events_buffered, snap.events_dropped
        );
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // Log-linear buckets: ~6% relative error tolerated.
        assert!((450..=550).contains(&s.p50), "p50 = {}", s.p50);
        assert!((900..=1000).contains(&s.p95), "p95 = {}", s.p95);
        assert!((940..=1000).contains(&s.p99), "p99 = {}", s.p99);
    }

    #[test]
    fn histogram_handles_edge_values() {
        let mut h = Histogram::default();
        assert_eq!(h.snapshot().p50, 0);
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.count, 2);
        assert!(s.p99 >= s.p50, "quantiles must be monotone");
    }

    #[test]
    fn single_value_histogram_is_exact_at_all_quantiles() {
        let mut h = Histogram::default();
        h.record(42);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 42);
        }
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let tel = Telemetry::new(TelemetryConfig {
            trace_capacity: 2,
            enabled: true,
        });
        tel.instant(Scope::Agent, "a", 1, &[]);
        tel.instant(Scope::Agent, "b", 2, &[]);
        tel.instant(Scope::Agent, "c", 3, &[]);
        let snap = tel.snapshot();
        assert_eq!(snap.events_buffered, 2);
        assert_eq!(snap.events_dropped, 1);
        let trace = tel.chrome_trace_json();
        assert!(!trace.contains("\"name\":\"a\""));
        assert!(trace.contains("\"name\":\"c\""));
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        tel.counter_add("x", 5);
        tel.hist_record("h", 9);
        tel.span_begin(Scope::Agent, "s", 0);
        let snap = tel.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.hists.is_empty());
        assert_eq!(snap.events_buffered, 0);
    }

    #[test]
    fn exports_are_deterministic() {
        let run = || {
            let tel = Telemetry::new(TelemetryConfig::default());
            tel.span_begin(Scope::Agent, scopes::SPAN_MEASURE, 1_500);
            tel.span_end(Scope::Agent, scopes::SPAN_MEASURE, 2_750);
            tel.driver_op("table_add", 600);
            tel.driver_op("table_add", 800);
            tel.counter_add(scopes::CTR_ITERATIONS, 1);
            tel.gauge_set("tm.q0_depth", 12);
            (tel.chrome_trace_json(), tel.snapshot_json())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chrome_trace_has_span_pairs_and_metadata() {
        let tel = Telemetry::new(TelemetryConfig::default());
        tel.span_begin(Scope::Driver, "register_read", 1_000);
        tel.span_end(Scope::Driver, "register_read", 3_500);
        tel.instant(Scope::NetSim, "drop", 2_000, &[("port", 3)]);
        let trace = tel.chrome_trace_json();
        assert!(trace.contains("\"ph\":\"B\""));
        assert!(trace.contains("\"ph\":\"E\""));
        assert!(trace.contains("\"ts\":1.000"));
        assert!(trace.contains("\"ts\":3.500"));
        assert!(trace.contains("\"args\":{\"port\":3}"));
        assert!(trace.contains("\"thread_name\""));
    }

    #[test]
    fn snapshot_json_contains_percentiles() {
        let tel = Telemetry::new(TelemetryConfig::default());
        for i in 0..100 {
            tel.driver_op("register_read", 1_000 + i * 10);
        }
        let json = tel.snapshot_json();
        assert!(json.contains("\"driver.register_read_ns\""));
        assert!(json.contains("\"p99\""));
        assert_eq!(tel.counter("driver.register_read_calls"), 100);
    }

    #[test]
    fn staging_merge_in_order_matches_direct_recording() {
        // Recording directly vs recording into two stagings merged in
        // canonical order must produce byte-identical exports.
        let direct = Telemetry::new(TelemetryConfig::default());
        direct.instant(Scope::Switch, "a", 10, &[("sw", 0)]);
        direct.counter_add("switch.tx", 3);
        direct.gauge_set("tm.q0_depth_bytes", 64);
        direct.instant(Scope::Switch, "b", 20, &[("sw", 1)]);
        direct.counter_add("switch.tx", 5);
        direct.gauge_set("tm.q0_depth_bytes", 128);
        direct.hist_record("lat", 100);
        direct.hist_record("lat", 200);

        let merged = Telemetry::new(TelemetryConfig::default());
        let s0 = merged.staging();
        let s1 = merged.staging();
        s0.instant(Scope::Switch, "a", 10, &[("sw", 0)]);
        s0.counter_add("switch.tx", 3);
        s0.gauge_set("tm.q0_depth_bytes", 64);
        s0.hist_record("lat", 100);
        s1.instant(Scope::Switch, "b", 20, &[("sw", 1)]);
        s1.counter_add("switch.tx", 5);
        s1.gauge_set("tm.q0_depth_bytes", 128);
        s1.hist_record("lat", 200);
        merged.merge_from(&s0);
        merged.merge_from(&s1);

        assert_eq!(direct.chrome_trace_json(), merged.chrome_trace_json());
        assert_eq!(direct.snapshot_json(), merged.snapshot_json());
        // Gauge takes the later shard's final value (serial last-writer).
        assert_eq!(merged.gauge("tm.q0_depth_bytes"), 128);
        assert_eq!(merged.counter("switch.tx"), 8);
    }

    #[test]
    fn staging_of_disabled_handle_records_nothing() {
        let main = Telemetry::disabled();
        let s = main.staging();
        assert!(!s.is_enabled());
        s.instant(Scope::Switch, "a", 10, &[]);
        s.counter_add("c", 1);
        main.merge_from(&s);
        assert_eq!(main.counter("c"), 0);
    }

    #[test]
    fn merge_respects_destination_ring_capacity() {
        let main = Telemetry::new(TelemetryConfig {
            enabled: true,
            trace_capacity: 2,
        });
        let s = main.staging();
        for t in 0..5 {
            s.instant(Scope::Switch, "e", t, &[]);
        }
        main.merge_from(&s);
        let snap = main.snapshot();
        assert_eq!(snap.events_buffered, 2);
        assert_eq!(snap.events_dropped, 3);
        // Ring keeps the most recent events, same as direct recording.
        let trace = main.chrome_trace_json();
        assert!(trace.contains("\"ts\":0.004"));
        assert!(!trace.contains("\"ts\":0.000,"));
    }

    #[test]
    #[should_panic(expected = "lock poisoned (staging shard for switch 3)")]
    fn poisoned_registry_panics_loudly_naming_the_shard() {
        let main = Telemetry::shared();
        let shard = main.staging_for("staging shard for switch 3");
        let poisoner = shard.clone();
        // Poison the mutex: panic while holding the guard on another thread.
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock();
            panic!("chaos recorder dies mid-update");
        })
        .join();
        shard.counter_add("switch.tx", 1); // must panic, naming the shard
    }
}
