//! Resource accounting for compiled programs.
//!
//! This feeds two pieces of the paper's evaluation:
//!
//! * **Table 1** — per-use-case marginal stages/tables/registers and
//!   SRAM/TCAM/metadata costs of the Mantis transformations;
//! * **Figure 13** — TCAM usage of malleable-field transformations as a
//!   function of the alternative count `A`, field width `K`, and table
//!   occupancy.

use crate::iface::{ControlInterface, TableInfo};
use p4_ast::{ControlStmt, MatchKind, Program};
use serde::{Deserialize, Serialize};

/// Resource usage of one table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableResource {
    pub name: String,
    /// Total match key width in bits.
    pub key_bits: u32,
    /// True if any key column is ternary/LPM (table lives in TCAM).
    pub is_tcam: bool,
    /// Physical entry capacity.
    pub capacity: u32,
    /// Maximum action-data width across the table's actions.
    pub action_data_bits: u32,
    /// Capacity × per-entry bit cost, split by memory type.
    pub sram_bits: u64,
    pub tcam_bits: u64,
}

/// Whole-program resource report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceReport {
    pub ingress_stages: u32,
    pub egress_stages: u32,
    pub num_tables: usize,
    pub num_registers: usize,
    pub tables: Vec<TableResource>,
    pub sram_bytes: u64,
    pub tcam_bytes: u64,
    /// Width of all metadata the program declares (bits).
    pub metadata_bits: u32,
    /// Width of the generated `p4r_meta_t_` metadata only (bits) — the
    /// marginal metadata cost reported in Table 1.
    pub p4r_metadata_bits: u32,
}

/// Compute the resource report for a (compiled, plain-P4) program.
pub fn report(p4: &Program) -> ResourceReport {
    let mut tables = Vec::new();
    let mut sram_bits_total: u64 = 0;
    let mut tcam_bits_total: u64 = 0;

    for t in &p4.tables {
        let mut key_bits = 0u32;
        let mut is_tcam = false;
        for r in &t.reads {
            let w = match &r.target {
                p4_ast::FieldOrMbl::Field(fr) => u32::from(p4.field_width(fr).unwrap_or(0)),
                p4_ast::FieldOrMbl::Mbl(_) => 0,
            };
            key_bits += w;
            if r.kind != MatchKind::Exact {
                is_tcam = true;
            }
        }
        let action_data_bits = t
            .actions
            .iter()
            .filter_map(|an| p4.action(an))
            .map(|a| action_param_bits(p4, a))
            .max()
            .unwrap_or(0);
        let capacity = t.size.unwrap_or(1024);
        // Entry cost: key + action selector + action data. The selector is
        // ceil(log2(#actions)) bits.
        let sel_bits = ceil_log2(t.actions.len().max(1) as u32);
        let entry_bits = u64::from(key_bits + sel_bits + action_data_bits);
        let (sram_bits, tcam_bits) = if is_tcam {
            // TCAM stores the key (value+mask = 2x) ; action data lives in
            // adjacent SRAM.
            (
                u64::from(capacity) * u64::from(sel_bits + action_data_bits),
                u64::from(capacity) * 2 * u64::from(key_bits),
            )
        } else {
            (u64::from(capacity) * entry_bits, 0)
        };
        sram_bits_total += sram_bits;
        tcam_bits_total += tcam_bits;
        tables.push(TableResource {
            name: t.name.clone(),
            key_bits,
            is_tcam,
            capacity,
            action_data_bits,
            sram_bits,
            tcam_bits,
        });
    }

    for r in &p4.registers {
        sram_bits_total += u64::from(r.width) * u64::from(r.instance_count);
    }

    let metadata_bits: u32 = p4
        .instances
        .iter()
        .filter(|i| i.is_metadata && i.name != p4_ast::intrinsics::INTR)
        .filter_map(|i| p4.header_type(&i.header_type))
        .map(|ht| ht.total_bits())
        .sum();
    let p4r_metadata_bits: u32 = p4
        .header_type(crate::iface::META_TYPE)
        .map(|ht| ht.total_bits())
        .unwrap_or(0);

    ResourceReport {
        ingress_stages: stages(&p4.ingress),
        egress_stages: stages(&p4.egress),
        num_tables: p4.tables.len(),
        num_registers: p4.registers.len(),
        tables,
        sram_bytes: sram_bits_total / 8,
        tcam_bytes: tcam_bits_total / 8,
        metadata_bits,
        p4r_metadata_bits,
    }
}

/// Stage count with the same placement rule as the simulator's loader:
/// sequential applies occupy consecutive stages; `if` arms share stages.
pub fn stages(stmts: &[ControlStmt]) -> u32 {
    fn walk(stmts: &[ControlStmt], base: u32) -> u32 {
        let mut stage = base;
        for s in stmts {
            match s {
                ControlStmt::Apply(_) => stage += 1,
                ControlStmt::If { then_, else_, .. } => {
                    stage = walk(then_, stage).max(walk(else_, stage));
                }
            }
        }
        stage
    }
    walk(stmts, 0)
}

fn action_param_bits(p4: &Program, a: &p4_ast::ActionDecl) -> u32 {
    // Parameter widths are not declared in P4-14; approximate with the
    // width of the destination they flow into, defaulting to 32.
    let mut total = 0u32;
    for _p in &a.params {
        total += 32;
    }
    let _ = p4;
    total
}

fn ceil_log2(n: u32) -> u32 {
    let mut b = 0;
    while (1u32 << b) < n {
        b += 1;
    }
    b
}

/// TCAM bits consumed by `occupancy` logical entries of `table` installed
/// with `action` — the Figure 13 metric. Accounts for the physical-entry
/// expansion and the widened key (alt ternary columns, selector, vv).
pub fn tcam_usage_bits(
    p4: &Program,
    iface: &ControlInterface,
    table: &str,
    action: &str,
    occupancy: u32,
) -> u64 {
    let Some(info) = iface.table(table) else {
        return 0;
    };
    let Some(decl) = p4.table(table) else {
        return 0;
    };
    let key_bits: u32 = decl
        .reads
        .iter()
        .map(|r| match &r.target {
            p4_ast::FieldOrMbl::Field(fr) => u32::from(p4.field_width(fr).unwrap_or(0)),
            p4_ast::FieldOrMbl::Mbl(_) => 0,
        })
        .sum();
    let phys_entries = physical_entries(info, action, occupancy);
    // TCAM stores value+mask per key bit.
    phys_entries * 2 * u64::from(key_bits)
}

/// Physical entries for `occupancy` logical entries using `action`,
/// including the ×2 shadow copies of malleable tables.
pub fn physical_entries(info: &TableInfo, action: &str, occupancy: u32) -> u64 {
    let expansion = info.expansion_factor(action) as u64;
    let shadow = if info.malleable { 2 } else { 1 };
    u64::from(occupancy) * expansion * shadow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_source, CompilerOptions};

    #[test]
    fn stages_count_matches_loader_rule() {
        use p4_ast::{BoolExpr, ControlStmt as C};
        let stmts = vec![
            C::Apply("a".into()),
            C::If {
                cond: BoolExpr::Valid("h".into()),
                then_: vec![C::Apply("b".into()), C::Apply("c".into())],
                else_: vec![C::Apply("d".into())],
            },
            C::Apply("e".into()),
        ];
        assert_eq!(stages(&stmts), 4);
        assert_eq!(stages(&[]), 0);
    }

    #[test]
    fn report_counts_generated_metadata() {
        let src = r#"
header_type h_t { fields { foo : 32; bar : 32; } }
header h_t hdr;
malleable value mv16 { width : 16; init : 0; }
action a() { add_to_field(hdr.foo, ${mv16}); }
table t { actions { a; } default_action : a(); }
control ingress { apply(t); }
"#;
        let out = compile_source(src, &CompilerOptions::default()).unwrap();
        let rep = report(&out.p4);
        // vv(1) + mv(1) + mv16(16)
        assert_eq!(rep.p4r_metadata_bits, 18);
        assert!(rep.ingress_stages >= 2); // init table + t
        assert!(rep.num_tables >= 2);
        assert!(rep.sram_bytes > 0);
    }

    #[test]
    fn tcam_grows_with_alt_count() {
        // tblReadX-style: 5-tuple ternary + malleable exact read.
        fn usage(alts: usize, occupancy: u32) -> u64 {
            let alt_list: Vec<String> = (0..alts).map(|i| format!("hdr.f{i}")).collect();
            let fields: String = (0..alts.max(2))
                .map(|i| format!("f{i} : 32;"))
                .collect::<Vec<_>>()
                .join(" ");
            let src = format!(
                r#"
header_type h_t {{ fields {{ {fields} sip : 32; dip : 32; }} }}
header h_t hdr;
malleable field x {{
    width : 32; init : hdr.f0;
    alts {{ {alts_joined} }}
}}
action use_x(v) {{ add(hdr.sip, ${{x}}, v); }}
malleable table rd {{
    reads {{ hdr.sip : ternary; hdr.dip : ternary; ${{x}} : exact; }}
    actions {{ use_x; }}
}}
control ingress {{ apply(rd); }}
"#,
                alts_joined = alt_list.join(", "),
            );
            let out = compile_source(&src, &CompilerOptions::default()).unwrap();
            tcam_usage_bits(&out.p4, &out.iface, "rd", "use_x", occupancy)
        }
        let u2 = usage(2, 512);
        let u4 = usage(4, 512);
        let u8 = usage(8, 512);
        assert!(u2 < u4 && u4 < u8, "{u2} {u4} {u8}");
        // Asymptotically quadratic in A (entries ×A and key grows by A
        // columns): growing A 2→8 must grow usage by more than 4×.
        assert!(u8 > u2 * 4, "u8={u8} u2={u2}");
        // Linear in occupancy.
        assert_eq!(usage(4, 1024), usage(4, 512) * 2);
    }
}
