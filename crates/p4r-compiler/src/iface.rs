//! The control interface: everything the Mantis agent needs to know about a
//! compiled program — where each malleable lives, how user-visible table
//! entries map onto physical entries, and which generated registers hold
//! measurements.
//!
//! This is the Rust analogue of the generated C header the paper's compiler
//! emits alongside the transformed P4.

use p4_ast::{FieldRef, MatchKind, Pipeline, Value};
use serde::{Deserialize, Serialize};

/// Name of the generated P4R metadata header type.
pub const META_TYPE: &str = "p4r_meta_t_";
/// Name of the generated P4R metadata instance.
pub const META: &str = "p4r_meta_";
/// Field carrying the table-version bit (§5.1.2).
pub const VV: &str = "vv";
/// Field carrying the measurement-version bit (§5.2).
pub const MV: &str = "mv";

/// A malleable value slot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueSlot {
    pub name: String,
    pub width: u16,
    pub init: Value,
    /// Which init table carries this slot and at which parameter position.
    pub init_table: usize,
    pub param_idx: usize,
    /// Generated metadata field name.
    pub meta_field: String,
}

/// A malleable field slot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSlot {
    pub name: String,
    pub width: u16,
    pub alts: Vec<FieldRef>,
    pub selector_bits: u16,
    /// Index of the initial alternative.
    pub init_index: usize,
    pub init_table: usize,
    pub param_idx: usize,
    /// Generated selector metadata field name (`<name>_alt`).
    pub selector_field: String,
    /// If the field is used in a `field_list`, the compiler applies the
    /// load-value optimization (§4.1 end): a table copies the selected
    /// alternative into this metadata field at the start of the pipeline.
    pub load: Option<LoadInfo>,
}

/// Load-value optimization artifacts for a malleable field.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadInfo {
    /// Generated table matching on the selector.
    pub table: String,
    /// Generated value-holding metadata field.
    pub value_field: String,
    /// Generated action per alternative.
    pub actions: Vec<String>,
}

/// One init table (master carries vv and mv as its first two params).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InitTable {
    pub table: String,
    pub action: String,
    /// Parameter widths in order (master: [vv, mv, slots...]).
    pub param_widths: Vec<u16>,
    pub is_master: bool,
}

/// How one user-visible key column of a table maps to physical columns.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UserKey {
    /// A concrete field: one physical column at `phys_idx`.
    Concrete {
        field: FieldRef,
        kind: MatchKind,
        width: u16,
        phys_idx: usize,
    },
    /// A malleable field match (Fig. 6): `alt_count` ternary columns at
    /// `alt_phys_start..alt_phys_start+alt_count`, selected by the
    /// malleable's selector column.
    MblField {
        mbl: String,
        width: u16,
        alt_count: usize,
        alt_phys_start: usize,
    },
}

/// An action available on a table, with its specialization variants.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionVariants {
    /// Original (user-visible) action name.
    pub orig: String,
    /// Malleable fields used inside the action, in combination order.
    pub mbls: Vec<String>,
    /// Alternative counts per malleable in `mbls`.
    pub alt_counts: Vec<usize>,
    /// Variant action names, indexed by mixed-radix combination of the alt
    /// assignment over `mbls` (row-major: first mbl varies slowest). For
    /// actions using no malleable fields this is the single original name.
    pub variants: Vec<String>,
}

impl ActionVariants {
    /// Variant name for the given per-mbl alternative assignment.
    pub fn variant(&self, assignment: &[usize]) -> &str {
        debug_assert_eq!(assignment.len(), self.mbls.len());
        let mut idx = 0usize;
        for (a, n) in assignment.iter().zip(self.alt_counts.iter()) {
            idx = idx * n + a;
        }
        &self.variants[idx]
    }
}

/// Control-interface description of one (possibly transformed) table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableInfo {
    pub name: String,
    /// User-visible key layout and its mapping to physical columns.
    pub user_key: Vec<UserKey>,
    /// Selector columns appended to the key: `(mbl name, phys_idx)`.
    pub selector_cols: Vec<(String, usize)>,
    /// Physical column index of the `vv` bit (malleable tables only).
    pub vv_col: Option<usize>,
    /// Total physical key columns.
    pub phys_cols: usize,
    pub actions: Vec<ActionVariants>,
    pub malleable: bool,
}

impl TableInfo {
    pub fn action(&self, orig: &str) -> Option<&ActionVariants> {
        self.actions.iter().find(|a| a.orig == orig)
    }

    /// Number of physical entries one logical entry expands to, given the
    /// action it uses.
    pub fn expansion_factor(&self, action: &str) -> usize {
        let read_mbls: Vec<(&str, usize)> = self
            .user_key
            .iter()
            .filter_map(|k| match k {
                UserKey::MblField { mbl, alt_count, .. } => Some((mbl.as_str(), *alt_count)),
                _ => None,
            })
            .collect();
        let act = self.action(action);
        let mut union: Vec<(&str, usize)> = read_mbls;
        if let Some(a) = act {
            for (m, n) in a.mbls.iter().zip(a.alt_counts.iter()) {
                if !union.iter().any(|(u, _)| u == m) {
                    union.push((m.as_str(), *n));
                }
            }
        }
        union.iter().map(|(_, n)| n).product()
    }
}

/// A measured field argument of a reaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasuredField {
    /// Binding name visible inside the reaction body.
    pub binding: String,
    /// The measured field (post-transformation — malleable refs resolve to
    /// the generated metadata field).
    pub field: FieldRef,
    pub width: u16,
    pub pipeline: Pipeline,
    /// Generated 2-entry register holding working/checkpoint copies.
    pub register: String,
}

/// A measured user register argument of a reaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasuredRegister {
    pub binding: String,
    /// Original register name.
    pub register: String,
    pub lo: u32,
    pub hi: u32,
    pub width: u16,
    /// Generated double-buffered duplicate (`2 * stride` entries).
    pub dup_register: String,
    /// Generated write-counter register (same layout).
    pub ts_register: String,
    /// log2 of the copy stride: working copy of index `i` lives at
    /// `(mv << stride_log2) | i`.
    pub stride_log2: u32,
    /// True if the original register was never read in the data plane and
    /// was elided (§5.2 optimization).
    pub original_elided: bool,
    /// True if the data plane never writes the register (it is fed
    /// externally, e.g. the traffic manager's queue-depth mirror). Such
    /// registers have no duplicate/counter pair; the agent polls them
    /// directly.
    #[serde(default)]
    pub external: bool,
}

/// Reaction bindings.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReactionBinding {
    pub name: String,
    pub fields: Vec<MeasuredField>,
    pub registers: Vec<MeasuredRegister>,
    /// Bit widths of this reaction's field args, for Fig. 10a-style packed
    /// word accounting.
    pub packed_words: usize,
    /// The C-like body source (parsed by `p4r_lang::creact`).
    pub body_src: String,
}

/// A static entry the agent must install during the prologue (load tables
/// for the field-list optimization).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrologueEntry {
    pub table: String,
    /// Exact selector value to match.
    pub selector: u64,
    pub action: String,
}

/// The complete control interface of a compiled program.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ControlInterface {
    pub values: Vec<ValueSlot>,
    pub fields: Vec<FieldSlot>,
    pub init_tables: Vec<InitTable>,
    pub tables: Vec<TableInfo>,
    pub reactions: Vec<ReactionBinding>,
    pub prologue_entries: Vec<PrologueEntry>,
}

impl ControlInterface {
    pub fn value(&self, name: &str) -> Option<&ValueSlot> {
        self.values.iter().find(|v| v.name == name)
    }

    pub fn field(&self, name: &str) -> Option<&FieldSlot> {
        self.fields.iter().find(|f| f.name == name)
    }

    pub fn table(&self, name: &str) -> Option<&TableInfo> {
        self.tables.iter().find(|t| t.name == name)
    }

    pub fn reaction(&self, name: &str) -> Option<&ReactionBinding> {
        self.reactions.iter().find(|r| r.name == name)
    }

    /// The master init table (carries vv/mv).
    pub fn master_init(&self) -> Option<&InitTable> {
        self.init_tables.iter().find(|t| t.is_master)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_variants_mixed_radix() {
        let av = ActionVariants {
            orig: "a".into(),
            mbls: vec!["f".into(), "g".into()],
            alt_counts: vec![2, 3],
            variants: (0..6).map(|i| format!("a_v{i}")).collect(),
        };
        assert_eq!(av.variant(&[0, 0]), "a_v0");
        assert_eq!(av.variant(&[0, 2]), "a_v2");
        assert_eq!(av.variant(&[1, 0]), "a_v3");
        assert_eq!(av.variant(&[1, 2]), "a_v5");
    }

    #[test]
    fn expansion_factor_unions_reads_and_actions() {
        let t = TableInfo {
            name: "t".into(),
            user_key: vec![UserKey::MblField {
                mbl: "f".into(),
                width: 32,
                alt_count: 2,
                alt_phys_start: 0,
            }],
            selector_cols: vec![("f".into(), 2)],
            vv_col: None,
            phys_cols: 3,
            actions: vec![
                ActionVariants {
                    orig: "uses_f".into(),
                    mbls: vec!["f".into()],
                    alt_counts: vec![2],
                    variants: vec!["uses_f_0".into(), "uses_f_1".into()],
                },
                ActionVariants {
                    orig: "uses_g".into(),
                    mbls: vec!["g".into()],
                    alt_counts: vec![3],
                    variants: vec!["g0".into(), "g1".into(), "g2".into()],
                },
                ActionVariants {
                    orig: "plain".into(),
                    mbls: vec![],
                    alt_counts: vec![],
                    variants: vec!["plain".into()],
                },
            ],
            malleable: false,
        };
        // Same mbl in reads and action: union, not product.
        assert_eq!(t.expansion_factor("uses_f"), 2);
        // Different mbls multiply.
        assert_eq!(t.expansion_factor("uses_g"), 6);
        // No action mbls: reads only.
        assert_eq!(t.expansion_factor("plain"), 2);
    }
}
