//! The typed mid-level IR (`P4rIr`) shared by every lowering.
//!
//! The staged pipeline is:
//!
//! ```text
//! source ──p4r-lang──▶ AST ──build()──▶ P4rIr ──┬─▶ lower.rs   (rmt-sim DataPlaneSpec backend)
//!                      (validate)               ├─▶ tree-walker (reaction-interp::Interpreter)
//!                                               └─▶ bytecode VM (reaction-interp::CompiledReaction)
//! ```
//!
//! `build()` performs name resolution and type/width checking over the parts
//! of a P4R program that `p4_ast::validate` cannot see — chiefly reaction
//! bodies, which the AST carries as raw text — and produces typed
//! descriptors with *pre-resolved slots*: every reaction's body is parsed
//! exactly once, its `static` slots are assigned once (via
//! [`ReactionSlots`], the same map the VM compiles against), and its
//! malleable/argument/table references are checked against the program.
//! Downstream consumers therefore agree on what the program means by
//! construction instead of re-deriving it from the AST independently.
//!
//! IR invariants (checked by `build`, relied on by the lowerings):
//!
//! * every reaction body parses, and every `${mbl}` it references names a
//!   declared malleable value or field;
//! * every method-call receiver in a body names a declared table;
//! * every variable a body reads is an argument binding, a declared local
//!   or `static`, or a whole-header expansion of an argument;
//! * cast builtins are well-formed (`__cast_{u,i}{1..=128}` with one
//!   argument), so the VM's "degenerate cast" fallback is unreachable
//!   through this pipeline;
//! * static slots are assigned in pre-order encounter order and shared with
//!   [`reaction_interp::CompiledReaction::compile_with_slots`].

use p4_ast::{FieldOrMbl, FieldRef, Pipeline, Program, ReactionArg, Value};
use p4r_lang::creact::{self, Body, Expr, LValue, Stmt};
use p4r_lang::lexer::{caret_snippet, lex, Tok};
use reaction_interp::ReactionSlots;
use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;

/// A typecheck diagnostic with a source position and caret snippet.
///
/// Positions inside reaction bodies are relative to the body text (the
/// `context` field names the reaction); program-level positions are relative
/// to the full source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub message: String,
    /// Where the diagnostic arose, e.g. `in reaction \`my_reaction\``.
    pub context: String,
    /// 1-based line (0 when unknown).
    pub line: u32,
    /// 1-based byte column (0 when unknown).
    pub col: u32,
    /// Rendered caret snippet (empty when no position is known).
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.context)?;
        if self.line > 0 {
            write!(f, " at line {}, col {}", self.line, self.col)?;
        }
        write!(f, ": {}", self.message)?;
        if !self.snippet.is_empty() {
            write!(f, "\n{}", self.snippet)?;
        }
        Ok(())
    }
}

/// A typed malleable value descriptor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrMblValue {
    pub name: String,
    pub width: u16,
    pub init: Value,
}

/// A typed malleable field descriptor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrMblField {
    pub name: String,
    pub width: u16,
    pub init: FieldRef,
    pub alts: Vec<FieldRef>,
    /// ceil(log2(|alts|)) — the selector metadata width.
    pub selector_bits: u16,
}

/// A table descriptor: name, key columns, actions, malleability.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrTable {
    pub name: String,
    /// Key columns as `(target, match_kind)` rendered strings.
    pub keys: Vec<(String, String)>,
    pub actions: Vec<String>,
    pub size: Option<u32>,
    pub malleable: bool,
}

/// An action descriptor with the malleable fields its body reads/writes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrAction {
    pub name: String,
    pub params: Vec<String>,
    /// Malleable *fields* referenced anywhere in the body, in first-use
    /// order. Each entry multiplies the action's specialization count by
    /// its alt count.
    pub mbl_fields: Vec<String>,
    /// Malleable *values* read by the body (lowered to metadata refs).
    pub mbl_values: Vec<String>,
}

/// One reaction argument with its resolved width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrReactionArg {
    /// A sampled field (or malleable ref); `binding` is the name the body
    /// uses. `width` is the declared field width (0 if unresolvable, which
    /// validation has already rejected).
    Field {
        binding: String,
        pipeline: Pipeline,
        width: u16,
        masked: bool,
    },
    /// A register slice `reg name[lo:hi]`.
    Register {
        name: String,
        lo: u32,
        hi: u32,
        width: u16,
    },
    /// A whole header: expands to one scalar binding per field.
    Header {
        instance: String,
        pipeline: Pipeline,
        bindings: Vec<(String, u16)>,
    },
}

/// A reaction with its body parsed once and all slots pre-resolved.
#[derive(Clone, Debug, PartialEq)]
pub struct IrReaction {
    pub name: String,
    pub args: Vec<IrReactionArg>,
    /// The parsed body — the walker and the VM both consume this, never the
    /// raw text.
    pub body: Body,
    /// Pre-resolved `static` slots, shared with the VM.
    pub statics: ReactionSlots,
    /// Malleables the body reads or writes, sorted.
    pub mbls_used: Vec<String>,
    /// Tables the body drives via method calls, sorted.
    pub tables_used: Vec<String>,
}

/// The typed mid-level IR for one P4R program.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct P4rIr {
    pub mbl_values: Vec<IrMblValue>,
    pub mbl_fields: Vec<IrMblField>,
    pub tables: Vec<IrTable>,
    pub actions: Vec<IrAction>,
    pub reactions: Vec<IrReaction>,
}

impl P4rIr {
    /// Look up a reaction by name.
    pub fn reaction(&self, name: &str) -> Option<&IrReaction> {
        self.reactions.iter().find(|r| r.name == name)
    }

    /// Stable, human-readable dump for golden-snapshot tests. The format is
    /// deterministic: declaration order for top-level items, sorted sets for
    /// derived name lists.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for v in &self.mbl_values {
            let _ = writeln!(
                s,
                "mbl_value {} : {}w init={}",
                v.name,
                v.width,
                v.init.bits()
            );
        }
        for f in &self.mbl_fields {
            let alts: Vec<String> = f
                .alts
                .iter()
                .map(|a| format!("{}.{}", a.instance, a.field))
                .collect();
            let _ = writeln!(
                s,
                "mbl_field {} : {}w sel={}b init={}.{} alts=[{}]",
                f.name,
                f.width,
                f.selector_bits,
                f.init.instance,
                f.init.field,
                alts.join(", ")
            );
        }
        for t in &self.tables {
            let keys: Vec<String> = t.keys.iter().map(|(k, m)| format!("{k}:{m}")).collect();
            let _ = writeln!(
                s,
                "table {}{} keys=[{}] actions=[{}] size={:?}",
                t.name,
                if t.malleable { " (malleable)" } else { "" },
                keys.join(", "),
                t.actions.join(", "),
                t.size
            );
        }
        for a in &self.actions {
            let _ = writeln!(
                s,
                "action {}({}) mbl_fields=[{}] mbl_values=[{}]",
                a.name,
                a.params.join(", "),
                a.mbl_fields.join(", "),
                a.mbl_values.join(", ")
            );
        }
        for r in &self.reactions {
            let _ = writeln!(s, "reaction {} {{", r.name);
            for arg in &r.args {
                match arg {
                    IrReactionArg::Field {
                        binding,
                        pipeline,
                        width,
                        masked,
                    } => {
                        let _ = writeln!(
                            s,
                            "  arg field {binding} : {width}w pipe={pipeline:?}{}",
                            if *masked { " masked" } else { "" }
                        );
                    }
                    IrReactionArg::Register {
                        name,
                        lo,
                        hi,
                        width,
                    } => {
                        let _ = writeln!(s, "  arg reg {name}[{lo}:{hi}] : {width}w");
                    }
                    IrReactionArg::Header {
                        instance,
                        pipeline,
                        bindings,
                    } => {
                        let fields: Vec<String> =
                            bindings.iter().map(|(b, w)| format!("{b}:{w}w")).collect();
                        let _ = writeln!(
                            s,
                            "  arg header {instance} pipe={pipeline:?} fields=[{}]",
                            fields.join(", ")
                        );
                    }
                }
            }
            for (name, slot) in r.statics.iter() {
                let _ = writeln!(s, "  static[{slot}] {name}");
            }
            if !r.mbls_used.is_empty() {
                let _ = writeln!(s, "  mbls=[{}]", r.mbls_used.join(", "));
            }
            if !r.tables_used.is_empty() {
                let _ = writeln!(s, "  tables=[{}]", r.tables_used.join(", "));
            }
            let _ = writeln!(s, "  stmts={}", r.body.stmts.len());
            let _ = writeln!(s, "}}");
        }
        s
    }
}

/// Build and typecheck the IR for a validated program. Returns every
/// diagnostic found (not just the first).
pub fn build(prog: &Program) -> Result<P4rIr, Vec<Diagnostic>> {
    let mut ir = P4rIr::default();
    let mut diags = Vec::new();

    for v in &prog.mbl_values {
        if v.init.width() != v.width || (v.width < 128 && v.init.bits() >> v.width != 0) {
            // The parser constructs inits at the declared width, so a
            // mismatch can only come from hand-built ASTs — still a
            // diagnostic, not a panic.
            diags.push(Diagnostic {
                message: format!(
                    "malleable value `{}` init {} does not fit width {}",
                    v.name,
                    v.init.bits(),
                    v.width
                ),
                context: format!("in malleable value `{}`", v.name),
                line: 0,
                col: 0,
                snippet: String::new(),
            });
        }
        ir.mbl_values.push(IrMblValue {
            name: v.name.clone(),
            width: v.width,
            init: v.init,
        });
    }

    for f in &prog.mbl_fields {
        ir.mbl_fields.push(IrMblField {
            name: f.name.clone(),
            width: f.width,
            init: f.init.clone(),
            alts: f.alts.clone(),
            selector_bits: f.selector_bits(),
        });
    }

    for t in &prog.tables {
        ir.tables.push(IrTable {
            name: t.name.clone(),
            keys: t
                .reads
                .iter()
                .map(|r| {
                    let target = match &r.target {
                        FieldOrMbl::Field(fr) => format!("{}.{}", fr.instance, fr.field),
                        FieldOrMbl::Mbl(m) => format!("${{{m}}}"),
                    };
                    (target, format!("{:?}", r.kind).to_lowercase())
                })
                .collect(),
            actions: t.actions.clone(),
            size: t.size,
            malleable: t.malleable,
        });
    }

    for a in &prog.actions {
        let mut mbl_fields = Vec::new();
        let mut mbl_values = BTreeSet::new();
        for call in &a.body {
            for m in mbl_refs(call) {
                if prog.mbl_field(&m).is_some() {
                    if !mbl_fields.contains(&m) {
                        mbl_fields.push(m);
                    }
                } else if prog.mbl_value(&m).is_some() {
                    mbl_values.insert(m);
                }
            }
        }
        ir.actions.push(IrAction {
            name: a.name.clone(),
            params: a.params.clone(),
            mbl_fields,
            mbl_values: mbl_values.into_iter().collect(),
        });
    }

    for r in &prog.reactions {
        match build_reaction(prog, r, &mut diags) {
            Some(ir_r) => ir.reactions.push(ir_r),
            None => continue,
        }
    }

    if diags.is_empty() {
        Ok(ir)
    } else {
        Err(diags)
    }
}

fn build_reaction(
    prog: &Program,
    r: &p4_ast::ReactionDecl,
    diags: &mut Vec<Diagnostic>,
) -> Option<IrReaction> {
    let context = format!("in reaction `{}`", r.name);

    let body = match creact::parse_body(&r.body_src) {
        Ok(b) => b,
        Err(e) => {
            diags.push(Diagnostic {
                message: e.message,
                context,
                line: e.line,
                col: e.col,
                snippet: e.snippet,
            });
            return None;
        }
    };

    let statics = match ReactionSlots::collect(&body) {
        Ok(s) => s,
        Err(e) => {
            diags.push(Diagnostic {
                message: e.to_string(),
                context,
                line: 0,
                col: 0,
                snippet: String::new(),
            });
            return None;
        }
    };

    // Resolve argument bindings and widths.
    let mut args = Vec::new();
    let mut scalars: BTreeSet<String> = BTreeSet::new();
    let mut arrays: BTreeSet<String> = BTreeSet::new();
    for a in &r.args {
        match a {
            ReactionArg::Field {
                pipeline,
                target,
                mask,
            } => {
                let binding = a.binding_name();
                let width = match target {
                    FieldOrMbl::Field(fr) => prog.field_width(fr).unwrap_or(0),
                    FieldOrMbl::Mbl(m) => prog
                        .mbl_value(m)
                        .map(|v| v.width)
                        .or_else(|| prog.mbl_field(m).map(|f| f.width))
                        .unwrap_or(0),
                };
                scalars.insert(binding.clone());
                args.push(IrReactionArg::Field {
                    binding,
                    pipeline: *pipeline,
                    width,
                    masked: mask.is_some(),
                });
            }
            ReactionArg::Register { register, lo, hi } => {
                let width = prog.register(register).map(|d| d.width).unwrap_or(0);
                arrays.insert(register.clone());
                args.push(IrReactionArg::Register {
                    name: register.clone(),
                    lo: *lo,
                    hi: *hi,
                    width,
                });
            }
            ReactionArg::Header { pipeline, instance } => {
                let mut bindings = Vec::new();
                if let Some(inst) = prog.instance(instance) {
                    if let Some(ht) = prog.header_type(&inst.header_type) {
                        for (fname, fwidth) in &ht.fields {
                            let b = format!("{instance}_{fname}");
                            scalars.insert(b.clone());
                            bindings.push((b, *fwidth));
                        }
                    }
                }
                args.push(IrReactionArg::Header {
                    instance: instance.clone(),
                    pipeline: *pipeline,
                    bindings,
                });
            }
        }
    }

    // Typecheck the body: name resolution for variables, malleables, table
    // methods, and cast builtins.
    let mut ck = BodyCheck {
        prog,
        src: &r.body_src,
        context: &context,
        scalars: &scalars,
        arrays: &arrays,
        declared: collect_declared(&body),
        diags,
        mbls_used: BTreeSet::new(),
        tables_used: BTreeSet::new(),
    };
    let before = ck.diags.len();
    for s in &body.stmts {
        ck.stmt(s);
    }
    let mbls_used = ck.mbls_used.into_iter().collect();
    let tables_used = ck.tables_used.into_iter().collect();
    if diags.len() > before {
        return None;
    }

    Some(IrReaction {
        name: r.name.clone(),
        args,
        body,
        statics,
        mbls_used,
        tables_used,
    })
}

/// Every name declared anywhere in the body (locals and statics). Strict
/// resolution accepts args ∪ declared; anything else is a compile-time
/// unknown-variable diagnostic instead of the walker's runtime error.
fn collect_declared(body: &Body) -> BTreeSet<String> {
    fn visit(s: &Stmt, out: &mut BTreeSet<String>) {
        match s {
            Stmt::Decl { decls, .. } => {
                for d in decls {
                    out.insert(d.name.clone());
                }
            }
            Stmt::Block(inner) => inner.iter().for_each(|s| visit(s, out)),
            Stmt::If { then_, else_, .. } => {
                visit(then_, out);
                if let Some(e) = else_ {
                    visit(e, out);
                }
            }
            Stmt::While { body, .. } => visit(body, out),
            Stmt::For { init, body, .. } => {
                if let Some(i) = init {
                    visit(i, out);
                }
                visit(body, out);
            }
            _ => {}
        }
    }
    let mut out = BTreeSet::new();
    body.stmts.iter().for_each(|s| visit(s, &mut out));
    out
}

struct BodyCheck<'a> {
    prog: &'a Program,
    src: &'a str,
    context: &'a str,
    scalars: &'a BTreeSet<String>,
    arrays: &'a BTreeSet<String>,
    declared: BTreeSet<String>,
    diags: &'a mut Vec<Diagnostic>,
    mbls_used: BTreeSet<String>,
    tables_used: BTreeSet<String>,
}

impl BodyCheck<'_> {
    /// Report `message` pointing at the first occurrence of identifier
    /// `name` in the body text (found by re-lexing; the creact AST carries
    /// no spans).
    fn diag_at_ident(&mut self, name: &str, message: String) {
        let (line, col) = find_ident(self.src, name).unwrap_or((0, 0));
        self.diags.push(Diagnostic {
            message,
            context: self.context.to_string(),
            line,
            col,
            snippet: if line > 0 {
                caret_snippet(self.src, line, col)
            } else {
                String::new()
            },
        });
    }

    fn known_var(&self, name: &str) -> bool {
        self.scalars.contains(name) || self.arrays.contains(name) || self.declared.contains(name)
    }

    fn check_var(&mut self, name: &str) {
        if !self.known_var(name) {
            self.diag_at_ident(
                name,
                format!("unknown variable `{name}` (not an argument or declared local)"),
            );
        }
    }

    fn check_mbl(&mut self, name: &str) {
        if self.prog.mbl_value(name).is_none() && self.prog.mbl_field(name).is_none() {
            self.diag_at_ident(name, format!("unknown malleable `${{{name}}}`"));
        } else {
            self.mbls_used.insert(name.to_string());
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl { decls, .. } => {
                for d in decls {
                    if let Some(init) = &d.init {
                        self.expr(init);
                    }
                }
            }
            Stmt::Expr(e) => self.expr(e),
            Stmt::If { cond, then_, else_ } => {
                self.expr(cond);
                self.stmt(then_);
                if let Some(e) = else_ {
                    self.stmt(e);
                }
            }
            Stmt::While { cond, body } => {
                self.expr(cond);
                self.stmt(body);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                if let Some(st) = step {
                    self.expr(st);
                }
                self.stmt(body);
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    self.expr(e);
                }
            }
            Stmt::Block(inner) => inner.iter().for_each(|s| self.stmt(s)),
            Stmt::Break | Stmt::Continue | Stmt::Empty => {}
        }
    }

    fn lvalue(&mut self, lv: &LValue) {
        match lv {
            LValue::Var(name) => self.check_var(name),
            LValue::Mbl(name) => self.check_mbl(name),
            LValue::Index(name, index) => {
                self.check_var(name);
                self.expr(index);
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Num(_) => {}
            Expr::Var(name) => self.check_var(name),
            Expr::Mbl(name) => self.check_mbl(name),
            Expr::Index(name, index) => {
                self.check_var(name);
                self.expr(index);
            }
            Expr::Unary(_, e) => self.expr(e),
            Expr::Binary(_, lhs, rhs) => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Call(name, args) => {
                self.check_call(name, args.len());
                args.iter().for_each(|a| self.expr(a));
            }
            Expr::Method {
                receiver,
                method: _,
                args,
            } => {
                if self.prog.table(receiver).is_none() {
                    self.diag_at_ident(
                        receiver,
                        format!("method call on `{receiver}`, which is not a declared table"),
                    );
                } else {
                    self.tables_used.insert(receiver.clone());
                }
                args.iter().for_each(|a| self.expr(a));
            }
            Expr::Ternary(cond, then_, else_) => {
                self.expr(cond);
                self.expr(then_);
                self.expr(else_);
            }
            Expr::Assign { target, value, .. } => {
                self.lvalue(target);
                self.expr(value);
            }
            Expr::Incr { target, .. } => self.lvalue(target),
        }
    }

    /// Check cast builtins are well-formed; other calls are environment
    /// builtins resolved at run time, which stay permissive.
    fn check_call(&mut self, name: &str, argc: usize) {
        for prefix in ["__cast_u", "__cast_i"] {
            if let Some(suffix) = name.strip_prefix(prefix) {
                let ok_width = suffix.parse::<u16>().map(|w| (1..=128).contains(&w));
                if ok_width != Ok(true) {
                    self.diag_at_ident(
                        name,
                        format!("malformed cast builtin `{name}` (width must be 1..=128)"),
                    );
                } else if argc != 1 {
                    self.diag_at_ident(
                        name,
                        format!("cast builtin `{name}` takes exactly 1 argument, got {argc}"),
                    );
                }
                return;
            }
        }
    }
}

/// Malleable names referenced by a primitive call (targets then operands,
/// in call order).
fn mbl_refs(call: &p4_ast::PrimitiveCall) -> Vec<String> {
    let mut out = Vec::new();
    for t in crate::lower::primitive_targets(call) {
        if let FieldOrMbl::Mbl(m) = t {
            out.push(m.clone());
        }
    }
    for op in crate::lower::primitive_operands(call) {
        if let p4_ast::Operand::Mbl(m) = op {
            out.push(m.clone());
        }
    }
    out
}

/// Locate the first occurrence of identifier `name` in `src` by re-lexing.
/// Returns (line, col), both 1-based.
fn find_ident(src: &str, name: &str) -> Option<(u32, u32)> {
    let toks = lex(src).ok()?;
    toks.iter()
        .find(|t| matches!(&t.tok, Tok::Ident(s) if s == name))
        .map(|t| (t.line, t.col))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(src: &str) -> Program {
        let mut p = p4r_lang::parse_program(src).unwrap();
        p4_ast::intrinsics::inject(&mut p);
        p
    }

    const BASE: &str = r#"
header_type h_t { fields { foo : 32; bar : 16; } }
header h_t hdr;
register counts { width : 32; instance_count : 8; }
malleable value threshold { width : 32; init : 7; }
action a() { modify_field(hdr.foo, ${threshold}); }
table t { reads { hdr.foo : exact; } actions { a; } size : 4; }
control ingress { apply(t); }
"#;

    fn with_reaction(body: &str) -> String {
        format!("{BASE}\nreaction r(ing hdr.foo, reg counts[0:7]) {{ {body} }}\n")
    }

    #[test]
    fn builds_ir_for_valid_program() {
        let p = prog(&with_reaction(
            "static uint32_t seen = 0; seen += hdr_foo; ${threshold} = seen; \
             int x = counts[0]; t.addEntry(1, x);",
        ));
        let ir = build(&p).unwrap();
        assert_eq!(ir.mbl_values.len(), 1);
        let r = ir.reaction("r").unwrap();
        assert_eq!(r.statics.slot("seen"), Some(0));
        assert_eq!(r.mbls_used, vec!["threshold".to_string()]);
        assert_eq!(r.tables_used, vec!["t".to_string()]);
        assert!(matches!(
            &r.args[0],
            IrReactionArg::Field { binding, width: 32, .. } if binding == "hdr_foo"
        ));
        assert!(matches!(
            &r.args[1],
            IrReactionArg::Register { name, lo: 0, hi: 7, width: 32 } if name == "counts"
        ));
    }

    #[test]
    fn unknown_variable_is_spanned_diagnostic() {
        let p = prog(&with_reaction("int x = ghost + 1;"));
        let diags = build(&p).unwrap_err();
        assert_eq!(diags.len(), 1);
        let d = &diags[0];
        assert!(d.message.contains("ghost"), "{}", d.message);
        assert!(d.line > 0 && d.col > 0, "{d:?}");
        assert!(d.snippet.contains('^'), "{}", d.snippet);
        assert!(d.context.contains("reaction `r`"));
    }

    #[test]
    fn unknown_malleable_rejected() {
        let p = prog(&with_reaction("${nope} = 1;"));
        let diags = build(&p).unwrap_err();
        assert!(diags[0].message.contains("nope"));
    }

    #[test]
    fn method_on_non_table_rejected() {
        let p = prog(&with_reaction("counts.addEntry(1, 2);"));
        let diags = build(&p).unwrap_err();
        assert!(diags[0].message.contains("not a declared table"));
    }

    #[test]
    fn body_parse_error_becomes_diagnostic() {
        let p = prog(&with_reaction("int x = ;"));
        let diags = build(&p).unwrap_err();
        assert!(diags[0].line > 0);
        assert!(diags[0].context.contains("reaction `r`"));
    }

    #[test]
    fn header_arg_expands_bindings() {
        let p = prog(&format!(
            "{BASE}\nreaction r(ing hdr hdr) {{ int x = hdr_foo + hdr_bar; }}\n"
        ));
        let ir = build(&p).unwrap();
        let r = ir.reaction("r").unwrap();
        match &r.args[0] {
            IrReactionArg::Header { bindings, .. } => {
                assert_eq!(
                    bindings,
                    &[("hdr_foo".to_string(), 32), ("hdr_bar".to_string(), 16)]
                );
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn dump_is_stable() {
        let p = prog(&with_reaction("static int n = 0; n++;"));
        let ir = build(&p).unwrap();
        let d1 = ir.dump();
        let d2 = build(&p).unwrap().dump();
        assert_eq!(d1, d2);
        assert!(d1.contains("mbl_value threshold : 32w init=7"));
        assert!(d1.contains("static[0] n"));
    }
}
