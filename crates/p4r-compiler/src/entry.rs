//! Logical→physical table-entry expansion.
//!
//! Users interact with malleable tables in terms of the *original* P4R key
//! (e.g. "match `${read_var} = 0`"). The compiler's transformations (Figs.
//! 5-6) widen the physical key with alternative ternary columns, selector
//! columns, and the `vv` version bit, and replace actions with specialized
//! variants. This module computes the set of physical entries that realize
//! one logical entry — the expansion whose size is
//! `Π |alts|` over the malleables involved (§4.1).

use crate::iface::{TableInfo, UserKey};
use p4_ast::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One user-visible key component.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogicalKey {
    Exact(Value),
    Ternary { value: Value, mask: Value },
    Lpm { value: Value, prefix_len: u16 },
}

/// One physical key column of an expanded entry.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhysKey {
    Exact(Value),
    Ternary {
        value: Value,
        mask: Value,
    },
    Lpm {
        value: Value,
        prefix_len: u16,
    },
    /// Full wildcard (only meaningful on ternary columns).
    Any,
}

/// A fully expanded physical entry.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysEntry {
    pub key: Vec<PhysKey>,
    pub action: String,
    pub action_data: Vec<Value>,
    pub priority: u32,
}

/// Expansion errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExpandError {
    KeyArity {
        expected: usize,
        got: usize,
    },
    UnknownAction(String),
    /// LPM keys are not supported on malleable-field columns.
    LpmOnMblColumn {
        mbl: String,
    },
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::KeyArity { expected, got } => {
                write!(f, "logical key arity {got}, table expects {expected}")
            }
            ExpandError::UnknownAction(a) => write!(f, "action `{a}` not on this table"),
            ExpandError::LpmOnMblColumn { mbl } => {
                write!(f, "lpm match on malleable field `{mbl}` is not supported")
            }
        }
    }
}

impl std::error::Error for ExpandError {}

/// Expand one logical entry into its physical entries.
///
/// `vv` selects the version-bit value for the emitted entries; pass `None`
/// for tables without a vv column (non-malleable).
pub fn expand_entry(
    info: &TableInfo,
    key: &[LogicalKey],
    action: &str,
    action_data: &[Value],
    priority: u32,
    vv: Option<u8>,
) -> Result<Vec<PhysEntry>, ExpandError> {
    if key.len() != info.user_key.len() {
        return Err(ExpandError::KeyArity {
            expected: info.user_key.len(),
            got: key.len(),
        });
    }
    let av = info
        .action(action)
        .ok_or_else(|| ExpandError::UnknownAction(action.to_string()))?;

    // Union of malleables: read malleables (user_key order) then action
    // malleables.
    let mut union: Vec<(String, usize)> = Vec::new();
    for k in &info.user_key {
        if let UserKey::MblField { mbl, alt_count, .. } = k {
            if !union.iter().any(|(m, _)| m == mbl) {
                union.push((mbl.clone(), *alt_count));
            }
        }
    }
    for (m, n) in av.mbls.iter().zip(av.alt_counts.iter()) {
        if !union.iter().any(|(u, _)| u == m) {
            union.push((m.clone(), *n));
        }
    }

    let counts: Vec<usize> = union.iter().map(|(_, n)| *n).collect();
    let mut out = Vec::new();
    for assignment in crate::compiler::assignments(&counts) {
        let sel = |mbl: &str| -> usize {
            union
                .iter()
                .position(|(m, _)| m == mbl)
                .map(|i| assignment[i])
                .unwrap_or(0)
        };

        let mut phys = vec![PhysKey::Any; info.phys_cols];
        for (lk, uk) in key.iter().zip(info.user_key.iter()) {
            match uk {
                UserKey::Concrete { phys_idx, .. } => {
                    phys[*phys_idx] = match lk {
                        LogicalKey::Exact(v) => PhysKey::Exact(*v),
                        LogicalKey::Ternary { value, mask } => PhysKey::Ternary {
                            value: *value,
                            mask: *mask,
                        },
                        LogicalKey::Lpm { value, prefix_len } => PhysKey::Lpm {
                            value: *value,
                            prefix_len: *prefix_len,
                        },
                    };
                }
                UserKey::MblField {
                    mbl,
                    width,
                    alt_count,
                    alt_phys_start,
                } => {
                    let chosen = sel(mbl);
                    for i in 0..*alt_count {
                        let col = alt_phys_start + i;
                        phys[col] = if i == chosen {
                            match lk {
                                LogicalKey::Exact(v) => PhysKey::Ternary {
                                    value: v.resize(*width),
                                    mask: Value::ones(*width),
                                },
                                LogicalKey::Ternary { value, mask } => PhysKey::Ternary {
                                    value: *value,
                                    mask: *mask,
                                },
                                LogicalKey::Lpm { .. } => {
                                    return Err(ExpandError::LpmOnMblColumn { mbl: mbl.clone() })
                                }
                            }
                        } else {
                            PhysKey::Any
                        };
                    }
                }
            }
        }
        for (mbl, col) in &info.selector_cols {
            phys[*col] = PhysKey::Exact(Value::new(sel(mbl) as u128, 16));
        }
        if let (Some(col), Some(v)) = (info.vv_col, vv) {
            phys[col] = PhysKey::Exact(Value::new(u128::from(v), 1));
        }

        let act_assignment: Vec<usize> = av.mbls.iter().map(|m| sel(m)).collect();
        out.push(PhysEntry {
            key: phys,
            action: av.variant(&act_assignment).to_string(),
            action_data: action_data.to_vec(),
            priority,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::ActionVariants;
    use p4_ast::{FieldRef, MatchKind};

    /// Table modelled on Fig. 6: reads { ${read_var} : exact (→ 2 ternary
    /// cols + selector); } with an action specialized over the same mbl.
    fn fig6_table() -> TableInfo {
        TableInfo {
            name: "my_table".into(),
            user_key: vec![
                UserKey::Concrete {
                    field: FieldRef::new("hdr", "qux"),
                    kind: MatchKind::Exact,
                    width: 32,
                    phys_idx: 0,
                },
                UserKey::MblField {
                    mbl: "read_var".into(),
                    width: 32,
                    alt_count: 2,
                    alt_phys_start: 1,
                },
            ],
            selector_cols: vec![("read_var".into(), 3)],
            vv_col: Some(4),
            phys_cols: 5,
            actions: vec![ActionVariants {
                orig: "my_action".into(),
                mbls: vec!["read_var".into()],
                alt_counts: vec![2],
                variants: vec!["my_action_hdr_foo_".into(), "my_action_hdr_bar_".into()],
            }],
            malleable: true,
        }
    }

    #[test]
    fn expands_paper_example() {
        // The paper's example: adding an entry for ${read_var} = 0 inserts
        //   (foo=0, bar=*, read_var_alt=0)
        //   (foo=*, bar=0, read_var_alt=1)
        let t = fig6_table();
        let entries = expand_entry(
            &t,
            &[
                LogicalKey::Exact(Value::new(5, 32)),
                LogicalKey::Exact(Value::zero(32)),
            ],
            "my_action",
            &[],
            10,
            Some(1),
        )
        .unwrap();
        assert_eq!(entries.len(), 2);

        let e0 = &entries[0];
        assert_eq!(e0.action, "my_action_hdr_foo_");
        assert_eq!(e0.key[0], PhysKey::Exact(Value::new(5, 32)));
        assert_eq!(
            e0.key[1],
            PhysKey::Ternary {
                value: Value::zero(32),
                mask: Value::ones(32)
            }
        );
        assert_eq!(e0.key[2], PhysKey::Any);
        assert_eq!(e0.key[3], PhysKey::Exact(Value::new(0, 16)));
        assert_eq!(e0.key[4], PhysKey::Exact(Value::new(1, 1)));
        assert_eq!(e0.priority, 10);

        let e1 = &entries[1];
        assert_eq!(e1.action, "my_action_hdr_bar_");
        assert_eq!(e1.key[1], PhysKey::Any);
        assert_eq!(
            e1.key[2],
            PhysKey::Ternary {
                value: Value::zero(32),
                mask: Value::ones(32)
            }
        );
        assert_eq!(e1.key[3], PhysKey::Exact(Value::new(1, 16)));
    }

    #[test]
    fn vv_none_leaves_column_any() {
        let mut t = fig6_table();
        t.vv_col = None;
        t.phys_cols = 4;
        let entries = expand_entry(
            &t,
            &[
                LogicalKey::Exact(Value::new(1, 32)),
                LogicalKey::Exact(Value::new(2, 32)),
            ],
            "my_action",
            &[],
            0,
            None,
        )
        .unwrap();
        assert_eq!(entries[0].key.len(), 4);
    }

    #[test]
    fn arity_and_action_checked() {
        let t = fig6_table();
        assert!(matches!(
            expand_entry(&t, &[], "my_action", &[], 0, Some(0)),
            Err(ExpandError::KeyArity { .. })
        ));
        assert!(matches!(
            expand_entry(
                &t,
                &[
                    LogicalKey::Exact(Value::zero(32)),
                    LogicalKey::Exact(Value::zero(32))
                ],
                "ghost",
                &[],
                0,
                Some(0)
            ),
            Err(ExpandError::UnknownAction(_))
        ));
    }

    #[test]
    fn lpm_on_mbl_column_rejected() {
        let t = fig6_table();
        let err = expand_entry(
            &t,
            &[
                LogicalKey::Exact(Value::zero(32)),
                LogicalKey::Lpm {
                    value: Value::zero(32),
                    prefix_len: 8,
                },
            ],
            "my_action",
            &[],
            0,
            Some(0),
        )
        .unwrap_err();
        assert!(matches!(err, ExpandError::LpmOnMblColumn { .. }));
    }

    #[test]
    fn action_only_mbl_expands_by_action_alts() {
        // Fig. 5 shape: concrete key, action uses a 3-alt malleable.
        let t = TableInfo {
            name: "w".into(),
            user_key: vec![UserKey::Concrete {
                field: FieldRef::new("h", "a"),
                kind: MatchKind::Exact,
                width: 8,
                phys_idx: 0,
            }],
            selector_cols: vec![("wv".into(), 1)],
            vv_col: None,
            phys_cols: 2,
            actions: vec![ActionVariants {
                orig: "act".into(),
                mbls: vec!["wv".into()],
                alt_counts: vec![3],
                variants: vec!["act_0_".into(), "act_1_".into(), "act_2_".into()],
            }],
            malleable: false,
        };
        let entries = expand_entry(
            &t,
            &[LogicalKey::Exact(Value::new(9, 8))],
            "act",
            &[Value::new(5, 16)],
            0,
            None,
        )
        .unwrap();
        assert_eq!(entries.len(), 3);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.key[1], PhysKey::Exact(Value::new(i as u128, 16)));
            assert_eq!(e.action, format!("act_{i}_"));
            assert_eq!(e.action_data, vec![Value::new(5, 16)]);
        }
    }
}
