//! Seeded random P4R program generator for the differential fuzz harness.
//!
//! [`generate`] produces a structured [`GenProgram`] — declarations, one
//! reaction signature, and the reaction body as a list of statements — so
//! the fuzz runner can minimize a failing program with generic ddmin over
//! the statement list and re-[`render`](GenProgram::render) each candidate.
//!
//! The generator deliberately concentrates on the value-domain and
//! control-flow corners the differential tests probe:
//!
//! * widths from 1 to 64 bits, constants at and beyond width boundaries
//!   (wrap-around), negative literals, `__cast_{u,i}N` truncations;
//! * division/modulo with non-constant divisors (division-by-zero paths);
//! * register-array reads with occasionally out-of-bounds indices;
//! * `static` state, nested `if`/`while`/`for`, loops that only terminate
//!   via the engines' step limit;
//! * malleable reads/writes and the interpreted table-method convention
//!   (`addEntry`/`size`/`setDefault`);
//! * with small probability, an undeclared identifier — the program must
//!   then be *rejected with a spanned diagnostic*, never panic.
//!
//! Everything is a pure function of the seed (SplitMix64), so a corpus
//! campaign is reproducible from `results/fuzz.json` alone.

/// SplitMix64: tiny, seedable, no external dependency. Good enough
/// dispersion for program-shape choices; NOT cryptographic.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    /// Uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        let i = self.below(xs.len() as u64) as usize;
        &xs[i]
    }
}

/// Generator knobs.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Upper bound on top-level statements in the reaction body.
    pub max_stmts: usize,
    /// Percent chance that a program references an undeclared identifier
    /// (exercising the typechecker's spanned-rejection path).
    pub invalid_pct: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_stmts: 10,
            invalid_pct: 6,
        }
    }
}

/// A generated program in ddmin-friendly parts: `render()` re-assembles
/// source from any subset of `body`, so statement-level minimization is
/// "drop lines, recompile, re-run".
#[derive(Clone, Debug)]
pub struct GenProgram {
    pub seed: u64,
    /// Header/register/malleable/action/table declarations, in order.
    pub decls: Vec<String>,
    /// `reaction fz(<args>)` argument list.
    pub reaction_args: String,
    /// Reaction body, one statement (possibly nested) per entry.
    pub body: Vec<String>,
    /// The `control ingress { ... }` block.
    pub control: String,
}

impl GenProgram {
    /// Full P4R source for this program.
    pub fn render(&self) -> String {
        Self::render_parts(&self.decls, &self.reaction_args, &self.body, &self.control)
    }

    /// Source with `body` replaced (the ddmin callback path).
    pub fn render_with_body(&self, body: &[String]) -> String {
        Self::render_parts(&self.decls, &self.reaction_args, body, &self.control)
    }

    fn render_parts(decls: &[String], args: &str, body: &[String], control: &str) -> String {
        let mut out = String::new();
        for d in decls {
            out.push_str(d);
            out.push('\n');
        }
        out.push_str(&format!("reaction fz({args}) {{\n"));
        for s in body {
            out.push_str("    ");
            out.push_str(s);
            out.push('\n');
        }
        out.push_str("}\n");
        out.push_str(control);
        out.push('\n');
        out
    }
}

/// State threaded through body generation: what names exist and may be
/// referenced.
struct Scope {
    /// Scalar names readable in expressions (reaction args + locals).
    scalars: Vec<String>,
    /// Writable local/static names.
    writable: Vec<String>,
    /// The register-array argument name.
    array: String,
    /// Array length (indices `0..len` are in bounds).
    array_len: u64,
    /// Malleable value names.
    mbls: Vec<String>,
    /// Declared table names usable as method receivers (with their action
    /// ordinal arity: `(name, key_cols, data_arity_of_action0)`).
    tables: Vec<(String, usize, usize)>,
    /// Fresh-name counter.
    next_id: u32,
    /// Whether this program still owes one undeclared-name reference
    /// (decided once per program, consumed by the first eligible atom).
    pub want_invalid: bool,
}

impl Scope {
    fn fresh(&mut self, prefix: &str) -> String {
        let n = format!("{prefix}{}", self.next_id);
        self.next_id += 1;
        n
    }
}

const WIDTHS: [u16; 4] = [8, 16, 32, 64];
/// Corner constants: identities, width boundaries, negatives.
const CORNERS: [i128; 12] = [0, 1, 2, 3, 5, 7, 255, 256, 65_535, 1 << 20, -1, -128];

/// Generate one program from `seed`.
pub fn generate(seed: u64, cfg: &GenConfig) -> GenProgram {
    let mut rng = Rng::new(seed ^ 0xfa57_f00d);
    let mut decls = Vec::new();

    // Fixed packet header: three fields of varying widths.
    let fw0 = *rng.pick(&WIDTHS);
    let fw1 = *rng.pick(&WIDTHS);
    decls.push(format!(
        "header_type fz_t {{ fields {{ f0 : {fw0}; f1 : {fw1}; f2 : 8; }} }}"
    ));
    decls.push("header fz_t pkt;".to_string());

    // One register file, measured whole by the reaction.
    let reg_len = 4 + rng.below(5); // 4..=8 cells
    decls.push(format!(
        "register regs {{ width : 32; instance_count : {reg_len}; }}"
    ));

    // 1..=3 malleable values.
    let n_mbls = 1 + rng.below(3);
    let mut mbls = Vec::new();
    for i in 0..n_mbls {
        let w = *rng.pick(&WIDTHS);
        let init = rng.below(1 << w.min(16));
        decls.push(format!(
            "malleable value m{i} {{ width : {w}; init : {init}; }}"
        ));
        mbls.push(format!("m{i}"));
    }

    // Actions shared by the tables.
    decls.push("action fwd(port) { modify_field(intr.egress_spec, port); }".to_string());
    decls.push("action nop() { no_op(); }".to_string());

    // A malleable ACL table half the time (method-call receiver).
    let mut tables = Vec::new();
    let mut applies = vec![];
    if rng.chance(60) {
        decls.push(
            "malleable table acl {\n    reads { pkt.f0 : exact; }\n    \
             actions { fwd; nop; }\n    size : 32;\n}"
                .to_string(),
        );
        // addEntry(ordinal, key, data...): ordinal 0 = fwd (1 datum).
        tables.push(("acl".to_string(), 1usize, 1usize));
        applies.push("apply(acl);");
    }
    decls.push("table t0 { actions { nop; } default_action : nop(); }".to_string());
    applies.push("apply(t0);");
    let control = format!("control ingress {{ {} }}", applies.join(" "));

    // Reaction arguments: pkt.f0 always, pkt.f1 sometimes (maybe masked),
    // and the whole register file.
    let mut args = vec!["ing pkt.f0".to_string()];
    let mut scalars = vec!["pkt_f0".to_string()];
    if rng.chance(60) {
        if rng.chance(40) {
            args.push("ing pkt.f1 mask 0xff".to_string());
        } else {
            args.push("ing pkt.f1".to_string());
        }
        scalars.push("pkt_f1".to_string());
    }
    args.push(format!("reg regs[0:{}]", reg_len - 1));

    let mut scope = Scope {
        scalars,
        writable: Vec::new(),
        array: "regs".to_string(),
        array_len: reg_len,
        mbls,
        tables,
        next_id: 0,
        want_invalid: rng.chance(cfg.invalid_pct),
    };

    let n_stmts = 2 + rng.below(cfg.max_stmts.saturating_sub(2).max(1) as u64) as usize;
    let mut body = Vec::new();
    for _ in 0..n_stmts {
        body.push(gen_stmt(&mut rng, &mut scope, cfg, 0));
    }
    // Make every run observable even if earlier statements error out:
    // publish something through a malleable.
    let obs = gen_expr(&mut rng, &mut scope, cfg, 1);
    let m = scope.mbls[0].clone();
    body.push(format!("${{{m}}} = ${{{m}}} + ({obs});"));

    GenProgram {
        seed,
        decls,
        reaction_args: args.join(", "),
        body,
        control,
    }
}

/// One statement; `depth` bounds nesting.
fn gen_stmt(rng: &mut Rng, sc: &mut Scope, cfg: &GenConfig, depth: u32) -> String {
    let roll = rng.below(100);
    match roll {
        // Local declaration (typed or `int`).
        0..=19 => {
            let name = sc.fresh("x");
            let e = gen_expr(rng, sc, cfg, depth + 1);
            let ty = if rng.chance(50) {
                let sign = if rng.chance(50) { "uint" } else { "int" };
                let w = *rng.pick(&WIDTHS);
                format!("{sign}{w}_t")
            } else {
                "int".to_string()
            };
            sc.scalars.push(name.clone());
            sc.writable.push(name.clone());
            format!("{ty} {name} = {e};")
        }
        // Static declaration (persistent across runs).
        20..=29 => {
            let name = sc.fresh("s");
            let init = *rng.pick(&CORNERS[..9]);
            sc.scalars.push(name.clone());
            sc.writable.push(name.clone());
            format!("static uint32_t {name} = {init};")
        }
        // Assignment (plain or compound) to a local or malleable.
        30..=54 => {
            let e = gen_expr(rng, sc, cfg, depth + 1);
            let op = *rng.pick(&["=", "+=", "-=", "*=", "&=", "|=", "^=", "<<=", ">>="]);
            if !sc.writable.is_empty() && rng.chance(60) {
                let t = rng.pick(&sc.writable).clone();
                format!("{t} {op} {e};")
            } else {
                let m = rng.pick(&sc.mbls).clone();
                format!("${{{m}}} {op} {e};")
            }
        }
        // Increment/decrement.
        55..=59 if !sc.writable.is_empty() => {
            let t = rng.pick(&sc.writable).clone();
            (*rng.pick(&[
                format!("{t}++;"),
                format!("{t}--;"),
                format!("++{t};"),
                format!("--{t};"),
            ]))
            .to_string()
        }
        // If / if-else.
        60..=74 if depth < 2 => {
            let c = gen_expr(rng, sc, cfg, depth + 1);
            let then_ = gen_stmt(rng, sc, cfg, depth + 1);
            if rng.chance(40) {
                let else_ = gen_stmt(rng, sc, cfg, depth + 1);
                format!("if ({c}) {{ {then_} }} else {{ {else_} }}")
            } else {
                format!("if ({c}) {{ {then_} }}")
            }
        }
        // Bounded while (occasionally unbounded: the step-limit corner).
        75..=82 if depth < 2 => {
            if rng.chance(12) {
                let inner = gen_stmt(rng, sc, cfg, depth + 1);
                format!("while (1) {{ {inner} }}")
            } else {
                let i = sc.fresh("w");
                let k = 1 + rng.below(6);
                let inner = gen_stmt(rng, sc, cfg, depth + 1);
                sc.scalars.push(i.clone());
                format!("int {i} = 0; while ({i} < {k}) {{ {inner} {i} += 1; }}")
            }
        }
        // For loop.
        83..=88 if depth < 2 => {
            let i = sc.fresh("k");
            let k = 1 + rng.below(5);
            let inner = gen_stmt(rng, sc, cfg, depth + 1);
            format!("for (int {i} = 0; {i} < {k}; {i}++) {{ {inner} }}")
        }
        // Table method call.
        89..=93 if !sc.tables.is_empty() => {
            let (t, keys, data) = rng.pick(&sc.tables).clone();
            match rng.below(3) {
                0 => {
                    // addEntry(ordinal 0 = fwd, key..., port)
                    let mut a = vec!["0".to_string()];
                    for _ in 0..keys {
                        a.push(format!("{}", rng.below(16)));
                    }
                    for _ in 0..data {
                        a.push(format!("{}", 1 + rng.below(4)));
                    }
                    format!("{t}.addEntry({});", a.join(", "))
                }
                1 => {
                    let m = rng.pick(&sc.mbls).clone();
                    format!("${{{m}}} = {t}.size();")
                }
                _ => format!("{t}.setDefault(1);"),
            }
        }
        // Early return.
        94..=95 => {
            let e = gen_expr(rng, sc, cfg, depth + 1);
            format!("return {e};")
        }
        // Fallthrough: publish an expression through a malleable.
        _ => {
            let m = rng.pick(&sc.mbls).clone();
            let e = gen_expr(rng, sc, cfg, depth + 1);
            format!("${{{m}}} = {e};")
        }
    }
}

/// One expression; `depth` bounds recursion.
fn gen_expr(rng: &mut Rng, sc: &mut Scope, cfg: &GenConfig, depth: u32) -> String {
    if depth >= 3 || rng.chance(35) {
        return gen_atom(rng, sc, cfg);
    }
    match rng.below(10) {
        0..=5 => {
            let op = *rng.pick(&[
                "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "<", "<=", ">", ">=", "==",
                "!=", "&&", "||",
            ]);
            let a = gen_expr(rng, sc, cfg, depth + 1);
            let b = gen_expr(rng, sc, cfg, depth + 1);
            format!("({a} {op} {b})")
        }
        6 => {
            let op = *rng.pick(&["-", "!", "~"]);
            let a = gen_expr(rng, sc, cfg, depth + 1);
            format!("({op}{a})")
        }
        7 => {
            let c = gen_expr(rng, sc, cfg, depth + 1);
            let a = gen_expr(rng, sc, cfg, depth + 1);
            let b = gen_expr(rng, sc, cfg, depth + 1);
            format!("({c} ? {a} : {b})")
        }
        8 => {
            // Width-truncating cast.
            let sign = if rng.chance(70) { "u" } else { "i" };
            let w = *rng.pick(&[1u16, 8, 16, 32, 64]);
            let a = gen_expr(rng, sc, cfg, depth + 1);
            format!("__cast_{sign}{w}({a})")
        }
        _ => {
            // Engine-native builtin.
            let a = gen_expr(rng, sc, cfg, depth + 1);
            match rng.below(3) {
                0 => format!("abs({a})"),
                1 => {
                    let b = gen_expr(rng, sc, cfg, depth + 1);
                    format!("min({a}, {b})")
                }
                _ => {
                    let b = gen_expr(rng, sc, cfg, depth + 1);
                    format!("max({a}, {b})")
                }
            }
        }
    }
}

fn gen_atom(rng: &mut Rng, sc: &mut Scope, _cfg: &GenConfig) -> String {
    // Rarely (decided once per program), an undeclared name: the whole
    // program must then be rejected by the typechecker with a span (the
    // proptest asserts this).
    if sc.want_invalid && rng.chance(25) {
        sc.want_invalid = false;
        return "fz_undeclared".to_string();
    }
    match rng.below(10) {
        0..=3 => format!("{}", *rng.pick(&CORNERS)),
        4..=6 => rng.pick(&sc.scalars).clone(),
        7 => {
            let m = rng.pick(&sc.mbls).clone();
            format!("${{{m}}}")
        }
        _ => {
            // Register read; ~1 in 8 deliberately out of bounds.
            let idx = if rng.chance(12) {
                sc.array_len + rng.below(90)
            } else {
                rng.below(sc.array_len)
            };
            format!("{}[{idx}]", sc.array)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate(42, &cfg);
        let b = generate(42, &cfg);
        assert_eq!(a.render(), b.render());
        let c = generate(43, &cfg);
        assert_ne!(a.render(), c.render());
    }

    #[test]
    fn rendered_subset_drops_statements() {
        let p = generate(7, &GenConfig::default());
        let full = p.render();
        let half: Vec<String> = p.body.iter().take(p.body.len() / 2).cloned().collect();
        let sub = p.render_with_body(&half);
        assert!(sub.len() < full.len());
        assert!(sub.contains("reaction fz("));
    }

    #[test]
    fn most_seeds_compile_or_reject_cleanly() {
        // Smoke: the first 40 seeds must never panic the pipeline, and a
        // healthy majority must compile.
        let cfg = GenConfig::default();
        let mut compiled = 0;
        for seed in 0..40 {
            let p = generate(seed, &cfg);
            let src = p.render();
            match crate::compile_source(&src, &crate::CompilerOptions::default()) {
                Ok(_) => compiled += 1,
                Err(e) => {
                    // Rejections must be actionable, not internal.
                    let msg = e.to_string();
                    assert!(!msg.is_empty(), "seed {seed}: empty error");
                }
            }
        }
        assert!(compiled >= 25, "only {compiled}/40 seeds compiled");
    }
}
