//! The Mantis compiler: lowers a P4R program to (1) a plain, *malleable* P4
//! program and (2) a [`ControlInterface`] the agent drives at runtime.
//!
//! Implemented transformations, each mapping to a part of the paper:
//!
//! * malleable values → metadata + init table (Fig. 4),
//! * malleable fields written in actions → selector metadata + action
//!   specialization (Fig. 5),
//! * malleable fields read in actions/table matches → selector + alt
//!   ternary columns + specialization (Fig. 6),
//! * compound usages and init-action bin packing (§4.1),
//! * the load-value optimization for field-list usages (§4.1, end),
//! * measurement registers for reaction field args (§4.2),
//! * isolation scaffolding: `vv`/`mv` bits, vv columns on malleable tables,
//!   double-buffered measurement registers, duplicated user registers with
//!   write counters (§5).

#[cfg(test)]
use crate::iface::*;
use crate::ir::{self, Diagnostic, P4rIr};
use crate::lower;
pub use crate::lower::assignments;
use p4_ast::Program;
#[cfg(test)]
use p4_ast::{ControlStmt, FieldOrMbl, MatchKind, Operand, PrimitiveCall, Value};
use std::fmt;

/// Compiler options (platform constants).
#[derive(Clone, Debug)]
pub struct CompilerOptions {
    /// Maximum total parameter width of a single init action, in bits.
    /// Exceeding this splits the configuration across multiple init tables
    /// (§5.1.1).
    pub max_init_action_bits: u32,
    /// Word size used when packing measurement fields into registers for
    /// cost accounting (Fig. 10a).
    pub measurement_word_bits: u32,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            max_init_action_bits: 512,
            measurement_word_bits: 32,
        }
    }
}

/// Compilation errors.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    Validation(Vec<p4_ast::validate::ValidateError>),
    Parse(String),
    /// A table's default action uses a malleable field; defaults cannot be
    /// specialized because they run on miss (no selector match available).
    DefaultActionUsesMblField {
        table: String,
        action: String,
    },
    /// Internal invariant: the generated program failed validation.
    GeneratedProgramInvalid(Vec<p4_ast::validate::ValidateError>),
    /// Name-resolution / typecheck failures from the IR builder, each with
    /// a source position and caret snippet.
    Diagnostics(Vec<Diagnostic>),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Validation(errs) => {
                write!(f, "P4R program invalid: ")?;
                for e in errs {
                    write!(f, "{e}; ")?;
                }
                Ok(())
            }
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::DefaultActionUsesMblField { table, action } => write!(
                f,
                "table `{table}` default action `{action}` uses a malleable field; \
                 default actions cannot be specialized"
            ),
            CompileError::GeneratedProgramInvalid(errs) => {
                write!(f, "compiler bug — generated program invalid: ")?;
                for e in errs {
                    write!(f, "{e}; ")?;
                }
                Ok(())
            }
            CompileError::Diagnostics(diags) => {
                for (i, d) in diags.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// The compiler output pair (Figure 2 of the paper).
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The transformed, plain-P4 program.
    pub p4: Program,
    /// The runtime interface for the Mantis agent.
    pub iface: crate::iface::ControlInterface,
    /// The typed mid-level IR the program was lowered from. Reaction
    /// engines (walker and VM) are built from its pre-parsed bodies and
    /// pre-resolved slots.
    pub ir: P4rIr,
}

/// Compile P4R source text.
pub fn compile_source(src: &str, opts: &CompilerOptions) -> Result<Compiled, CompileError> {
    let prog = p4r_lang::parse_program(src).map_err(|e| CompileError::Parse(e.to_string()))?;
    compile(&prog, opts)
}

/// Compile a parsed P4R program.
pub fn compile(prog: &Program, opts: &CompilerOptions) -> Result<Compiled, CompileError> {
    let mut src = prog.clone();
    p4_ast::intrinsics::inject(&mut src);
    let errs = p4_ast::validate::validate(&src);
    if !errs.is_empty() {
        return Err(CompileError::Validation(errs));
    }
    let ir = ir::build(&src).map_err(CompileError::Diagnostics)?;
    lower::lower(src, ir, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1 of the paper, with headers declared.
    const FIG1: &str = r#"
header_type h_t {
    fields { foo : 32; bar : 32; baz : 32; qux : 32; }
}
header h_t hdr;

register qdepths { width : 32; instance_count : 16; }

malleable value value_var { width : 32; init : 1; }
malleable field field_var {
    width : 32; init : hdr.foo;
    alts { hdr.foo, hdr.bar }
}
malleable table table_var {
    reads { ${field_var} : exact; }
    actions { my_action; my_drop; }
    size : 64;
}
action my_action() {
    add(${field_var}, hdr.baz, ${value_var});
}
action my_drop() { drop(); }
reaction my_reaction(reg qdepths[1:10]) {
    uint32_t current_max = 0, max_port = 0;
    for (int i = 1; i <= 10; ++i)
        if (qdepths[i] > current_max) {
            current_max = qdepths[i]; max_port = i;
        }
    ${value_var} = max_port;
}
control ingress { apply(table_var); }
"#;

    fn compile_fig1() -> Compiled {
        compile_source(FIG1, &CompilerOptions::default()).unwrap()
    }

    #[test]
    fn fig1_compiles_to_plain_p4() {
        let out = compile_fig1();
        assert!(!out.p4.has_p4r_constructs());
        assert!(out.p4.reactions.is_empty());
        assert!(p4_ast::validate::validate(&out.p4).is_empty());
    }

    #[test]
    fn fig1_meta_header_generated() {
        let out = compile_fig1();
        let ht = out.p4.header_type(META_TYPE).unwrap();
        // vv, mv, value_var (32), field_var_alt (1)
        assert!(ht.field_width(VV) == Some(1));
        assert!(ht.field_width(MV) == Some(1));
        assert_eq!(ht.field_width("value_var"), Some(32));
        assert_eq!(ht.field_width("field_var_alt"), Some(1));
        let inst = out.p4.instance(META).unwrap();
        assert!(inst.is_metadata);
        // vv initializer = 1
        assert_eq!(
            inst.initializers.iter().find(|(n, _)| n == VV).unwrap().1,
            Value::new(1, 1)
        );
    }

    #[test]
    fn fig1_single_init_table_with_default() {
        let out = compile_fig1();
        assert_eq!(out.iface.init_tables.len(), 1);
        let it = out.iface.master_init().unwrap();
        assert_eq!(it.table, "p4r_init_");
        // [vv, mv, value_var, field_var_alt]
        assert_eq!(it.param_widths, vec![1, 1, 32, 1]);
        let t = out.p4.table("p4r_init_").unwrap();
        let (da, args) = t.default_action.as_ref().unwrap();
        assert_eq!(da, "p4r_init_action_");
        assert_eq!(args[0], Value::new(1, 1)); // vv
        assert_eq!(args[1], Value::zero(1)); // mv
        assert_eq!(args[2], Value::new(1, 32)); // value_var init
                                                // init applied first in ingress
        assert_eq!(out.p4.ingress[0], ControlStmt::Apply("p4r_init_".into()));
    }

    #[test]
    fn fig1_action_specialized_per_alt() {
        let out = compile_fig1();
        // my_action uses ${field_var} (2 alts) → two variants; original gone.
        assert!(out.p4.action("my_action").is_none());
        let v0 = out.p4.action("my_action_hdr_foo_").unwrap();
        let v1 = out.p4.action("my_action_hdr_bar_").unwrap();
        // Variant bodies reference the concrete alts and the value metadata.
        match &v0.body[0] {
            PrimitiveCall::Add { dst, b, .. } => {
                assert_eq!(dst, &FieldOrMbl::field("hdr", "foo"));
                assert_eq!(b, &Operand::field(META, "value_var"));
            }
            other => panic!("unexpected: {other:?}"),
        }
        match &v1.body[0] {
            PrimitiveCall::Add { dst, .. } => {
                assert_eq!(dst, &FieldOrMbl::field("hdr", "bar"));
            }
            other => panic!("unexpected: {other:?}"),
        }
        // my_drop untouched.
        assert!(out.p4.action("my_drop").is_some());
    }

    #[test]
    fn fig1_table_transformed() {
        let out = compile_fig1();
        let t = out.p4.table("table_var").unwrap();
        // reads: 2 alt ternary columns + selector + vv
        assert_eq!(t.reads.len(), 4);
        assert_eq!(t.reads[0].kind, MatchKind::Ternary);
        assert_eq!(t.reads[0].target, FieldOrMbl::field("hdr", "foo"));
        assert_eq!(t.reads[1].kind, MatchKind::Ternary);
        assert_eq!(t.reads[1].target, FieldOrMbl::field("hdr", "bar"));
        assert_eq!(t.reads[2].target, FieldOrMbl::field(META, "field_var_alt"));
        assert_eq!(t.reads[2].kind, MatchKind::Exact);
        assert_eq!(t.reads[3].target, FieldOrMbl::field(META, VV));
        // actions: two specialized + my_drop
        assert_eq!(t.actions.len(), 3);
        // physical size: 64 user entries × 2 alts × 2 shadow
        assert_eq!(t.size, Some(256));

        let info = out.iface.table("table_var").unwrap();
        assert!(info.malleable);
        assert_eq!(info.vv_col, Some(3));
        assert_eq!(info.expansion_factor("my_action"), 2);
        assert_eq!(info.expansion_factor("my_drop"), 2); // read mbl still applies
    }

    #[test]
    fn fig1_reaction_binding() {
        let out = compile_fig1();
        let r = out.iface.reaction("my_reaction").unwrap();
        assert_eq!(r.registers.len(), 1);
        let m = &r.registers[0];
        assert_eq!(m.register, "qdepths");
        assert_eq!((m.lo, m.hi), (1, 10));
        // `qdepths` is never written by the data plane (the traffic
        // manager feeds it), so it is polled directly: no duplicate pair.
        assert!(m.external);
        assert!(out.p4.register("p4r_dup_qdepths_").is_none());
        assert!(r.body_src.contains("${value_var}"));
    }

    #[test]
    fn value_slot_in_iface() {
        let out = compile_fig1();
        let v = out.iface.value("value_var").unwrap();
        assert_eq!(v.width, 32);
        assert_eq!(v.init, Value::new(1, 32));
        assert_eq!(v.init_table, 0);
        assert_eq!(v.param_idx, 2); // after vv, mv
        let f = out.iface.field("field_var").unwrap();
        assert_eq!(f.selector_bits, 1);
        assert_eq!(f.init_index, 0);
        assert_eq!(f.param_idx, 3);
    }

    #[test]
    fn dataplane_written_register_gets_dup_pair() {
        let src = r#"
header_type h_t { fields { a : 32; } }
header h_t h;
register samples { width : 32; instance_count : 16; }
action save(i) { register_write(samples, i, h.a); }
action probe() { register_read(h.a, samples, 0); }
table t { actions { save; probe; } default_action : save(0); }
reaction watch(reg samples[1:10]) { int x = samples[1]; }
control ingress { apply(t); }
"#;
        let out = compile_source(src, &CompilerOptions::default()).unwrap();
        let m = &out.iface.reaction("watch").unwrap().registers[0];
        assert!(!m.external);
        assert!(!m.original_elided); // `probe` reads it in the data plane
        assert_eq!(m.dup_register, "p4r_dup_samples_");
        assert_eq!(m.ts_register, "p4r_ts_samples_");
        assert_eq!(m.stride_log2, 4); // 16 instances
                                      // dup register exists with 32 entries (2 << 4).
        let dup = out.p4.register("p4r_dup_samples_").unwrap();
        assert_eq!(dup.instance_count, 32);
    }

    #[test]
    fn measured_fields_generate_registers_and_tables() {
        let src = r#"
header_type ip_t { fields { src : 32; dst : 32; } }
header ip_t ip;
register total { width : 64; instance_count : 1; }
action keep() { register_write(total, 0, intr.pkt_len); }
table t { actions { keep; } default_action : keep(); }
reaction watch(ing ip.src, reg total[0:0]) {
    static uint64_t last = 0;
    last = total[0];
}
control ingress { apply(t); }
"#;
        let out = compile_source(src, &CompilerOptions::default()).unwrap();
        let r = out.iface.reaction("watch").unwrap();
        assert_eq!(r.fields.len(), 1);
        assert_eq!(r.fields[0].binding, "ip_src");
        assert_eq!(r.fields[0].register, "p4r_meas_watch_ip_src_");
        assert_eq!(r.packed_words, 1);
        // Measurement register has two entries gated by mv.
        let reg = out.p4.register("p4r_meas_watch_ip_src_").unwrap();
        assert_eq!(reg.instance_count, 2);
        // Measurement table applied at end of ingress.
        let last = out.p4.ingress.last().unwrap();
        assert_eq!(last, &ControlStmt::Apply("p4r_measure_ing_".into()));
        // The measure action writes at index mv.
        let ma = out.p4.action("p4r_measure_ing_action_").unwrap();
        match &ma.body[0] {
            PrimitiveCall::RegisterWrite {
                register,
                index,
                value,
            } => {
                assert_eq!(register, "p4r_meas_watch_ip_src_");
                assert_eq!(index, &Operand::field(META, MV));
                assert_eq!(value, &Operand::field("ip", "src"));
            }
            other => panic!("unexpected: {other:?}"),
        }
        // `total` is written AND read (reaction only reads via dup); it is
        // register_write-only in the data plane, so it can be elided.
        let m = &r.registers[0];
        assert!(m.original_elided);
        assert!(out.p4.register("total").is_none());
        // The writing action mirrors into the dup register.
        let keep = out.p4.action("keep").unwrap();
        assert!(keep.body.iter().any(|c| matches!(
            c,
            PrimitiveCall::RegisterWrite { register, .. } if register == "p4r_dup_total_"
        )));
        // ts register bumped.
        assert!(keep.body.iter().any(|c| matches!(
            c,
            PrimitiveCall::RegisterWrite { register, .. } if register == "p4r_ts_total_"
        )));
    }

    #[test]
    fn count_register_not_elided() {
        let src = r#"
register hits { width : 64; instance_count : 4; }
action bump() { count(hits, 1); }
table t { actions { bump; } default_action : bump(); }
reaction watch(reg hits[0:3]) { int x = hits[0]; }
control ingress { apply(t); }
"#;
        let out = compile_source(src, &CompilerOptions::default()).unwrap();
        let m = &out.iface.reaction("watch").unwrap().registers[0];
        assert!(!m.original_elided);
        assert!(out.p4.register("hits").is_some());
        // The count action reads back and mirrors.
        let bump = out.p4.action("bump").unwrap();
        assert!(bump.body.iter().any(|c| matches!(
            c,
            PrimitiveCall::RegisterRead { register, .. } if register == "hits"
        )));
    }

    #[test]
    fn init_tables_split_when_over_capacity() {
        // 20 values of 64 bits = 1280 bits > 510-bit capacity → ≥3 bins.
        let mut src = String::new();
        src.push_str("header_type h_t { fields { a : 32; } }\nheader h_t hdr;\n");
        for i in 0..20 {
            src.push_str(&format!(
                "malleable value v{i} {{ width : 64; init : {i}; }}\n"
            ));
        }
        src.push_str("action a() { modify_field(hdr.a, ${v0}); }\n");
        src.push_str("table t { actions { a; } default_action : a(); }\n");
        src.push_str("control ingress { apply(t); }\n");
        let out = compile_source(&src, &CompilerOptions::default()).unwrap();
        assert!(
            out.iface.init_tables.len() >= 3,
            "{}",
            out.iface.init_tables.len()
        );
        assert_eq!(
            out.iface.init_tables.iter().filter(|t| t.is_master).count(),
            1
        );
        // Non-master init tables read vv and are registered as malleable.
        let second = &out.iface.init_tables[1];
        let t = out.p4.table(&second.table).unwrap();
        assert_eq!(t.reads.len(), 1);
        assert!(out.iface.table(&second.table).unwrap().malleable);
        // Every slot maps to a valid table/param.
        for v in &out.iface.values {
            let it = &out.iface.init_tables[v.init_table];
            assert!(v.param_idx < it.param_widths.len());
            assert_eq!(it.param_widths[v.param_idx], v.width);
        }
    }

    #[test]
    fn field_list_gets_load_optimization() {
        let src = r#"
header_type ip_t { fields { src : 32; dst : 32; sport : 32; } }
header ip_t ip;
malleable field hash_in { width : 32; init : ip.src; alts { ip.src, ip.sport } }
field_list fl { ${hash_in}; ip.dst; }
field_list_calculation c { input { fl; } algorithm : crc16; output_width : 16; }
action pick(base) { modify_field_with_hash_based_offset(intr.egress_spec, base, c, 4); }
table t { actions { pick; } default_action : pick(0); }
control ingress { apply(t); }
"#;
        let out = compile_source(src, &CompilerOptions::default()).unwrap();
        let f = out.iface.field("hash_in").unwrap();
        let load = f.load.as_ref().unwrap();
        assert_eq!(load.table, "p4r_load_hash_in_");
        assert_eq!(load.actions.len(), 2);
        // Field list now references the loaded value.
        let fl = out.p4.field_list("fl").unwrap();
        assert_eq!(fl.entries[0], FieldOrMbl::field(META, "hash_in_val_"));
        // Prologue entries installed per alternative.
        assert_eq!(
            out.iface
                .prologue_entries
                .iter()
                .filter(|e| e.table == load.table)
                .count(),
            2
        );
        // Load table applied after init, before user tables.
        let names: Vec<String> = out
            .p4
            .ingress
            .iter()
            .filter_map(|s| match s {
                ControlStmt::Apply(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        let load_pos = names.iter().position(|n| n == &load.table).unwrap();
        let t_pos = names.iter().position(|n| n == "t").unwrap();
        let init_pos = names.iter().position(|n| n == "p4r_init_").unwrap();
        assert!(init_pos < load_pos && load_pos < t_pos);
    }

    #[test]
    fn default_action_with_mbl_field_rejected() {
        let src = r#"
header_type h_t { fields { a : 32; b : 32; } }
header h_t hdr;
malleable field f { width : 32; init : hdr.a; alts { hdr.a, hdr.b } }
action bad() { modify_field(${f}, hdr.a); }
table t { actions { bad; } default_action : bad(); }
control ingress { apply(t); }
"#;
        let err = compile_source(src, &CompilerOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            CompileError::DefaultActionUsesMblField { .. }
        ));
    }

    #[test]
    fn invalid_p4r_rejected() {
        let err = compile_source(
            "action a() { modify_field(ghost.field, 1); }",
            &CompilerOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::Validation(_)));
    }

    #[test]
    fn assignments_mixed_radix() {
        assert_eq!(assignments(&[]), vec![Vec::<usize>::new()]);
        assert_eq!(assignments(&[2]), vec![vec![0], vec![1]]);
        assert_eq!(
            assignments(&[2, 3]),
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
    }

    #[test]
    fn two_mbl_fields_in_one_action_enumerate_permutations() {
        let src = r#"
header_type h_t { fields { a : 32; b : 32; c : 32; d : 32; } }
header h_t hdr;
malleable field f { width : 32; init : hdr.a; alts { hdr.a, hdr.b } }
malleable field g { width : 32; init : hdr.c; alts { hdr.c, hdr.d } }
action mix() { modify_field(${f}, ${g}); }
table t { reads { hdr.a : exact; } actions { mix; } size : 8; }
control ingress { apply(t); }
"#;
        let out = compile_source(src, &CompilerOptions::default()).unwrap();
        let info = out.iface.table("t").unwrap();
        let av = info.action("mix").unwrap();
        assert_eq!(av.variants.len(), 4);
        assert_eq!(info.expansion_factor("mix"), 4);
        // All four variants exist as actions with fully concrete bodies.
        for v in &av.variants {
            let a = out.p4.action(v).unwrap();
            match &a.body[0] {
                PrimitiveCall::ModifyField { dst, src } => {
                    assert!(dst.as_field().is_some());
                    assert!(matches!(src, Operand::Field(_)));
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
        // Physical size: 8 × 2 × 2 = 32.
        assert_eq!(out.p4.table("t").unwrap().size, Some(32));
    }

    #[test]
    fn compiled_program_loc_grows() {
        // Sanity for Table 1's LoC columns: generated P4 is larger than the
        // P4R source.
        let out = compile_fig1();
        let p4r_loc = FIG1.lines().filter(|l| !l.trim().is_empty()).count();
        let p4_loc = p4_ast::pretty::loc(&out.p4);
        assert!(p4_loc > p4r_loc, "{p4_loc} <= {p4r_loc}");
    }
}
