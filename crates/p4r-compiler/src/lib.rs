//! # p4r-compiler
//!
//! The Mantis compiler (the paper's core contribution): translates P4R
//! programs into a pair of artifacts — a valid, *malleable* plain-P4 program
//! and a [`iface::ControlInterface`] that the Mantis agent uses to poll
//! measurements and update malleable entities with serializable isolation.
//!
//! ```
//! use p4r_compiler::{compile_source, CompilerOptions};
//!
//! let src = r#"
//! header_type h_t { fields { foo : 32; bar : 32; baz : 32; } }
//! header h_t hdr;
//! malleable value value_var { width : 16; init : 1; }
//! action my_action() { add_to_field(hdr.foo, ${value_var}); }
//! table t { actions { my_action; } default_action : my_action(); }
//! control ingress { apply(t); }
//! "#;
//! let out = compile_source(src, &CompilerOptions::default()).unwrap();
//! assert!(!out.p4.has_p4r_constructs());
//! assert_eq!(out.iface.values[0].name, "value_var");
//! ```

#![forbid(unsafe_code)]

pub mod compiler;
pub mod entry;
pub mod generate;
pub mod iface;
pub mod ir;
pub(crate) mod lower;
pub mod packing;
pub mod resources;

pub use compiler::{compile, compile_source, CompileError, Compiled, CompilerOptions};
pub use iface::ControlInterface;
