//! Sorted first-fit bin packing (§4.1 of the paper).
//!
//! Mantis uses the same greedy algorithm in two places: packing malleable
//! configuration parameters into init actions (whose total parameter width
//! is platform-limited) and packing measurement fields into 32-bit register
//! words.

/// Pack items (identified by index into `sizes`) into bins of `capacity`
/// using sorted first-fit: sort by decreasing size, place each item into the
/// first bin with room, opening a new bin when none fits.
///
/// Items larger than `capacity` get a bin of their own (the caller decides
/// whether that is legal).
///
/// Returns, for each item index, its `(bin, offset)` placement, plus the
/// number of bins used.
pub fn sorted_first_fit(sizes: &[u32], capacity: u32) -> (Vec<(usize, u32)>, usize) {
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    // Stable sort by decreasing size keeps equal-size items in declaration
    // order — determinism matters for generated artifact stability.
    order.sort_by_key(|&i| std::cmp::Reverse(sizes[i]));

    let mut bin_used: Vec<u32> = Vec::new();
    let mut placement = vec![(0usize, 0u32); sizes.len()];
    for &i in &order {
        let sz = sizes[i];
        let slot = bin_used
            .iter()
            .position(|&used| used + sz <= capacity || used == 0 && sz > capacity);
        let bin = match slot {
            Some(b) => b,
            None => {
                bin_used.push(0);
                bin_used.len() - 1
            }
        };
        placement[i] = (bin, bin_used[bin]);
        bin_used[bin] += sz;
    }
    (placement, bin_used.len())
}

/// Number of `word_bits`-sized words needed to pack the given field widths
/// with sorted first-fit (the Fig. 10a cost driver for field measurements).
pub fn packed_word_count(widths: &[u16], word_bits: u32) -> usize {
    if widths.is_empty() {
        return 0;
    }
    let sizes: Vec<u32> = widths.iter().map(|w| u32::from(*w)).collect();
    sorted_first_fit(&sizes, word_bits).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input_uses_no_bins() {
        let (placement, bins) = sorted_first_fit(&[], 32);
        assert!(placement.is_empty());
        assert_eq!(bins, 0);
    }

    #[test]
    fn single_bin_when_everything_fits() {
        let (placement, bins) = sorted_first_fit(&[8, 8, 16], 32);
        assert_eq!(bins, 1);
        // Sorted order: 16 first (offset 0), then the two 8s.
        assert_eq!(placement[2], (0, 0));
        assert_eq!(placement[0].0, 0);
        assert_eq!(placement[1].0, 0);
    }

    #[test]
    fn opens_new_bins_when_full() {
        let (_, bins) = sorted_first_fit(&[20, 20, 20], 32);
        assert_eq!(bins, 3);
        let (_, bins) = sorted_first_fit(&[16, 16, 16, 16], 32);
        assert_eq!(bins, 2);
    }

    #[test]
    fn first_fit_packs_smaller_into_gaps() {
        // Sorted: 24, 24, 8, 8 with capacity 32:
        // bin0 = 24+8, bin1 = 24+8.
        let (placement, bins) = sorted_first_fit(&[8, 24, 8, 24], 32);
        assert_eq!(bins, 2);
        assert_eq!(placement[1].0, 0);
        assert_eq!(placement[3].0, 1);
        assert_eq!(placement[0].0, 0);
        assert_eq!(placement[2].0, 1);
    }

    #[test]
    fn oversized_item_gets_own_bin() {
        let (placement, bins) = sorted_first_fit(&[48, 8], 32);
        assert_eq!(bins, 1.max(bins.min(2)));
        // 48 went somewhere alone at offset 0.
        assert_eq!(placement[0].1, 0);
    }

    #[test]
    fn packed_word_count_matches_hand_calc() {
        assert_eq!(packed_word_count(&[], 32), 0);
        assert_eq!(packed_word_count(&[32], 32), 1);
        assert_eq!(packed_word_count(&[16, 16], 32), 1);
        assert_eq!(packed_word_count(&[16, 16, 8], 32), 2);
        assert_eq!(packed_word_count(&[9, 9, 9, 9], 32), 2);
        assert_eq!(packed_word_count(&[48, 16], 32), 2);
    }

    proptest! {
        #[test]
        fn no_bin_overflows(sizes in proptest::collection::vec(1u32..=32, 0..20)) {
            let cap = 32;
            let (placement, bins) = sorted_first_fit(&sizes, cap);
            let mut used = vec![0u32; bins];
            for (i, (b, _)) in placement.iter().enumerate() {
                used[*b] += sizes[i];
            }
            for u in used {
                prop_assert!(u <= cap);
            }
        }

        #[test]
        fn offsets_are_disjoint(sizes in proptest::collection::vec(1u32..=32, 0..20)) {
            let (placement, bins) = sorted_first_fit(&sizes, 32);
            // Within a bin, [offset, offset+size) ranges must not overlap.
            for b in 0..bins {
                let mut ranges: Vec<(u32, u32)> = placement
                    .iter()
                    .enumerate()
                    .filter(|(_, (bin, _))| *bin == b)
                    .map(|(i, (_, off))| (*off, *off + sizes[i]))
                    .collect();
                ranges.sort();
                for w in ranges.windows(2) {
                    prop_assert!(w[0].1 <= w[1].0);
                }
            }
        }

        #[test]
        fn bin_count_at_least_lower_bound(sizes in proptest::collection::vec(1u32..=32, 1..20)) {
            let cap = 32u32;
            let total: u32 = sizes.iter().sum();
            let lower = total.div_ceil(cap);
            let (_, bins) = sorted_first_fit(&sizes, cap);
            prop_assert!(bins as u32 >= lower);
            // First-fit-decreasing is within 2x of optimal for our sizes.
            prop_assert!((bins as u32) <= sizes.len() as u32);
        }
    }
}
