//! Lowering: consume the typed IR plus the validated AST and emit the
//! plain-P4 program + [`ControlInterface`] pair.
//!
//! This is the back half of the staged pipeline (see [`crate::ir`] for the
//! stage diagram): `compiler.rs` drives parse → validate → IR build, then
//! hands off here. The passes below are the paper's transformations
//! (Figs. 4–6, §4.1–§4.2, §5); each consumes the IR's typed descriptors
//! where slot/width/selector information is needed and the AST where raw
//! P4 rewriting is needed.

use crate::compiler::{CompileError, Compiled, CompilerOptions};
use crate::iface::*;
use crate::ir::P4rIr;
use crate::packing;
use p4_ast::{
    ActionDecl, ControlStmt, FieldOrMbl, FieldRef, HeaderTypeDecl, InstanceDecl, MatchKind,
    MblFieldDecl, Operand, Pipeline, PrimitiveCall, Program, ReactionArg, RegisterDecl, TableDecl,
    TableRead, Value,
};
use std::collections::{BTreeMap, BTreeSet};

/// Run the lowering passes over a validated program and its IR.
pub(crate) fn lower(
    src: Program,
    ir: P4rIr,
    opts: &CompilerOptions,
) -> Result<Compiled, CompileError> {
    let mut cx = Cx::new(src, ir, opts.clone());
    cx.collect_load_set();
    cx.build_slots_and_init_tables();
    cx.transform_actions();
    cx.transform_tables()?;
    cx.gen_load_tables();
    cx.transform_control_conditions()?;
    cx.gen_measurements();
    cx.assemble_control();
    cx.finish()
}

struct Cx {
    src: Program,
    /// The typed IR; slot/width/selector decisions read from here.
    ir: P4rIr,
    out: Program,
    opts: CompilerOptions,
    iface: ControlInterface,
    /// Accumulating fields of `p4r_meta_t_`: (name, width, init).
    meta_fields: Vec<(String, u16, Value)>,
    /// Malleable fields requiring the load-value optimization.
    load_set: BTreeSet<String>,
    /// Generated applies to prepend to ingress.
    pre_ingress: Vec<ControlStmt>,
    /// Generated applies to append per pipeline.
    post_ingress: Vec<ControlStmt>,
    post_egress: Vec<ControlStmt>,
    /// Map from user register name to its dup info (shared across
    /// reactions).
    dup_regs: BTreeMap<String, MeasuredRegister>,
    /// Per-action specialization info (filled by `transform_actions`).
    action_variants: BTreeMap<String, ActionVariants>,
}

impl Cx {
    fn new(src: Program, ir: P4rIr, opts: CompilerOptions) -> Self {
        let out = src.clone();
        Cx {
            src,
            ir,
            out,
            opts,
            iface: ControlInterface::default(),
            meta_fields: vec![
                (VV.into(), 1, Value::new(1, 1)),
                (MV.into(), 1, Value::zero(1)),
            ],
            load_set: BTreeSet::new(),
            pre_ingress: Vec::new(),
            post_ingress: Vec::new(),
            post_egress: Vec::new(),
            dup_regs: BTreeMap::new(),
            action_variants: BTreeMap::new(),
        }
    }

    fn is_mbl_value(&self, name: &str) -> bool {
        self.src.mbl_value(name).is_some()
    }

    fn mbl_field(&self, name: &str) -> Option<&MblFieldDecl> {
        self.src.mbl_field(name)
    }

    // -- step 1: which malleable fields need the load-value table -----------

    fn collect_load_set(&mut self) {
        for fl in &self.src.field_lists {
            for e in &fl.entries {
                if let FieldOrMbl::Mbl(name) = e {
                    if self.mbl_field(name).is_some() {
                        self.load_set.insert(name.clone());
                    }
                }
            }
        }
        // Malleable fields used as reaction args also need their value
        // materialized in metadata.
        for r in &self.src.reactions {
            for a in &r.args {
                if let ReactionArg::Field {
                    target: FieldOrMbl::Mbl(name),
                    ..
                } = a
                {
                    if self.mbl_field(name).is_some() {
                        self.load_set.insert(name.clone());
                    }
                }
            }
        }
    }

    // -- step 2: slots, packing, init tables ---------------------------------

    fn build_slots_and_init_tables(&mut self) {
        // Slot list: values then field selectors, in declaration order.
        struct SlotTmp {
            name: String,
            width: u16,
            is_value: bool,
        }
        let mut slots: Vec<SlotTmp> = Vec::new();
        for v in &self.ir.mbl_values {
            slots.push(SlotTmp {
                name: v.name.clone(),
                width: v.width,
                is_value: true,
            });
        }
        for f in &self.ir.mbl_fields {
            slots.push(SlotTmp {
                name: f.name.clone(),
                width: f.selector_bits,
                is_value: false,
            });
        }

        // Reserve 2 bits in the master bin for vv and mv.
        let cap = self.opts.max_init_action_bits.saturating_sub(2).max(8);
        let sizes: Vec<u32> = slots.iter().map(|s| u32::from(s.width)).collect();
        let (placement, nbins) = packing::sorted_first_fit(&sizes, cap);
        let nbins = nbins.max(1);

        // Per-bin slot lists ordered by packing offset.
        let mut bins: Vec<Vec<usize>> = vec![Vec::new(); nbins];
        for (i, (b, _)) in placement.iter().enumerate() {
            bins[*b].push(i);
        }
        for b in &mut bins {
            b.sort_by_key(|&i| placement[i].1);
        }

        // Generate an init table per bin.
        for (bi, bin) in bins.iter().enumerate() {
            let is_master = bi == 0;
            let table_name = if is_master {
                "p4r_init_".to_string()
            } else {
                format!("p4r_init{}_", bi + 1)
            };
            let action_name = if is_master {
                "p4r_init_action_".to_string()
            } else {
                format!("p4r_init{}_action_", bi + 1)
            };

            let mut params: Vec<String> = Vec::new();
            let mut param_widths: Vec<u16> = Vec::new();
            let mut body: Vec<PrimitiveCall> = Vec::new();
            let mut init_data: Vec<Value> = Vec::new();
            if is_master {
                for (p, w, init) in [(VV, 1u16, 1u128), (MV, 1u16, 0u128)] {
                    params.push(p.into());
                    param_widths.push(w);
                    init_data.push(Value::new(init, w));
                    body.push(PrimitiveCall::ModifyField {
                        dst: FieldOrMbl::Field(meta_ref(p)),
                        src: Operand::Param(p.into()),
                    });
                }
            }
            for &si in bin {
                let s = &slots[si];
                let (meta_field, init) = if s.is_value {
                    let decl = self.src.mbl_value(&s.name).unwrap();
                    (s.name.clone(), decl.init)
                } else {
                    let decl = self.src.mbl_field(&s.name).unwrap();
                    let idx = decl.init_index().unwrap_or(0);
                    (format!("{}_alt", s.name), Value::new(idx as u128, s.width))
                };
                self.meta_fields.push((meta_field.clone(), s.width, init));
                let param = format!("{}_", meta_field);
                params.push(param.clone());
                param_widths.push(s.width);
                init_data.push(init);
                body.push(PrimitiveCall::ModifyField {
                    dst: FieldOrMbl::Field(meta_ref(&meta_field)),
                    src: Operand::Param(param),
                });
                let param_idx = params.len() - 1;
                if s.is_value {
                    let decl = self.src.mbl_value(&s.name).unwrap().clone();
                    self.iface.values.push(ValueSlot {
                        name: s.name.clone(),
                        width: s.width,
                        init: decl.init,
                        init_table: bi,
                        param_idx,
                        meta_field,
                    });
                } else {
                    let decl = self.src.mbl_field(&s.name).unwrap().clone();
                    self.iface.fields.push(FieldSlot {
                        name: s.name.clone(),
                        width: decl.width,
                        alts: decl.alts.clone(),
                        selector_bits: s.width,
                        init_index: decl.init_index().unwrap_or(0),
                        init_table: bi,
                        param_idx,
                        selector_field: meta_field,
                        load: None, // filled by gen_load_tables
                    });
                }
            }

            self.out.actions.push(ActionDecl {
                name: action_name.clone(),
                params,
                body,
            });
            let reads = if is_master {
                vec![]
            } else {
                vec![TableRead {
                    target: FieldOrMbl::Field(meta_ref(VV)),
                    kind: MatchKind::Exact,
                    mask: None,
                }]
            };
            // The master carries the configuration as its default action so
            // the program is functional even before an agent attaches;
            // non-master init tables hold vv=0/vv=1 entries installed by the
            // agent prologue (until then the metadata initializers supply
            // the declared init values).
            let default_action = is_master.then(|| (action_name.clone(), init_data));
            self.out.tables.push(TableDecl {
                name: table_name.clone(),
                reads,
                actions: vec![action_name.clone()],
                default_action,
                size: Some(4),
                malleable: false,
            });
            self.iface.init_tables.push(InitTable {
                table: table_name,
                action: action_name,
                param_widths,
                is_master,
            });
        }
    }

    // -- step 3: action transformation (Figs. 4-6) ---------------------------

    /// Ordered malleable fields referenced in an action body.
    fn action_mbl_fields(&self, a: &ActionDecl) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut push = |name: &str, cx: &Cx| {
            if cx.mbl_field(name).is_some() && !out.iter().any(|n| n == name) {
                out.push(name.to_string());
            }
        };
        for call in &a.body {
            for t in primitive_targets(call) {
                if let FieldOrMbl::Mbl(n) = t {
                    push(n, self);
                }
            }
            for o in primitive_operands(call) {
                if let Operand::Mbl(n) = o {
                    push(n, self);
                }
            }
        }
        out
    }

    fn transform_actions(&mut self) {
        let originals: Vec<ActionDecl> = self.src.actions.clone();
        let mut new_actions: Vec<ActionDecl> = Vec::new();
        let mut variants_by_action: BTreeMap<String, ActionVariants> = BTreeMap::new();

        for a in &originals {
            // First replace malleable-value reads with metadata refs.
            let mut a2 = a.clone();
            for call in &mut a2.body {
                for o in primitive_operands_mut(call) {
                    if let Operand::Mbl(n) = o {
                        if self.is_mbl_value(n) {
                            *o = Operand::Field(meta_ref(n));
                        }
                    }
                }
            }
            let mbls = self.action_mbl_fields(&a2);
            if mbls.is_empty() {
                variants_by_action.insert(
                    a2.name.clone(),
                    ActionVariants {
                        orig: a2.name.clone(),
                        mbls: vec![],
                        alt_counts: vec![],
                        variants: vec![a2.name.clone()],
                    },
                );
                new_actions.push(a2);
                continue;
            }
            // Specialize: one variant per combination of alternatives.
            let alt_counts: Vec<usize> = mbls
                .iter()
                .map(|m| self.mbl_field(m).unwrap().alts.len())
                .collect();
            let mut variants = Vec::new();
            for assignment in assignments(&alt_counts) {
                let mut v = a2.clone();
                let mut name = a2.name.clone();
                for (mi, &ai) in assignment.iter().enumerate() {
                    let decl = self.mbl_field(&mbls[mi]).unwrap();
                    let alt = decl.alts[ai].clone();
                    name = format!("{name}_{}_{}", alt.instance, alt.field);
                    substitute_mbl_field(&mut v.body, &mbls[mi], &alt);
                }
                name.push('_');
                v.name = name.clone();
                variants.push(name);
                new_actions.push(v);
            }
            variants_by_action.insert(
                a2.name.clone(),
                ActionVariants {
                    orig: a2.name.clone(),
                    mbls,
                    alt_counts,
                    variants,
                },
            );
        }

        // Replace original user actions; keep generated (init) actions.
        let generated: Vec<ActionDecl> = self
            .out
            .actions
            .iter()
            .filter(|a| self.src.action(&a.name).is_none())
            .cloned()
            .collect();
        self.out.actions = new_actions;
        self.out.actions.extend(generated);
        // Stash variants for table transformation via iface-side lookup.
        self.action_variants = variants_by_action;
    }

    // -- step 4: table transformation ----------------------------------------

    fn transform_tables(&mut self) -> Result<(), CompileError> {
        let user_tables: Vec<TableDecl> = self.src.tables.clone();
        for t in &user_tables {
            let mut reads: Vec<TableRead> = Vec::new();
            let mut user_key: Vec<UserKey> = Vec::new();
            // Malleable fields needing a selector column on this table.
            let mut selector_mbls: Vec<String> = Vec::new();

            for r in &t.reads {
                match &r.target {
                    FieldOrMbl::Field(fr) => {
                        user_key.push(UserKey::Concrete {
                            field: fr.clone(),
                            kind: r.kind,
                            width: self.src.field_width(fr).unwrap_or(0),
                            phys_idx: reads.len(),
                        });
                        reads.push(r.clone());
                    }
                    FieldOrMbl::Mbl(name) if self.is_mbl_value(name) => {
                        // Malleable value in a match: becomes a metadata
                        // field match.
                        let fr = meta_ref(name);
                        user_key.push(UserKey::Concrete {
                            field: fr.clone(),
                            kind: r.kind,
                            width: self.src.mbl_value(name).unwrap().width,
                            phys_idx: reads.len(),
                        });
                        reads.push(TableRead {
                            target: FieldOrMbl::Field(fr),
                            kind: r.kind,
                            mask: r.mask,
                        });
                    }
                    FieldOrMbl::Mbl(name) => {
                        // Fig. 6: |alts| ternary columns + selector.
                        let decl = self.mbl_field(name).unwrap().clone();
                        user_key.push(UserKey::MblField {
                            mbl: name.clone(),
                            width: decl.width,
                            alt_count: decl.alts.len(),
                            alt_phys_start: reads.len(),
                        });
                        for alt in &decl.alts {
                            reads.push(TableRead {
                                target: FieldOrMbl::Field(alt.clone()),
                                kind: MatchKind::Ternary,
                                mask: r.mask,
                            });
                        }
                        if !selector_mbls.contains(name) {
                            selector_mbls.push(name.clone());
                        }
                    }
                }
            }

            // Selector columns for malleables used by this table's actions.
            let mut action_variants: Vec<ActionVariants> = Vec::new();
            for an in &t.actions {
                let av = self
                    .action_variants
                    .get(an)
                    .cloned()
                    .unwrap_or_else(|| ActionVariants {
                        orig: an.clone(),
                        mbls: vec![],
                        alt_counts: vec![],
                        variants: vec![an.clone()],
                    });
                for m in &av.mbls {
                    if !selector_mbls.contains(m) {
                        selector_mbls.push(m.clone());
                    }
                }
                action_variants.push(av);
            }

            let mut selector_cols = Vec::new();
            for m in &selector_mbls {
                selector_cols.push((m.clone(), reads.len()));
                reads.push(TableRead {
                    target: FieldOrMbl::Field(meta_ref(&format!("{m}_alt"))),
                    kind: MatchKind::Exact,
                    mask: None,
                });
            }

            // vv column for malleable tables (§5.1.2).
            let vv_col = if t.malleable {
                let idx = reads.len();
                reads.push(TableRead {
                    target: FieldOrMbl::Field(meta_ref(VV)),
                    kind: MatchKind::Exact,
                    mask: None,
                });
                Some(idx)
            } else {
                None
            };

            // Default action must not require specialization.
            if let Some((da, _)) = &t.default_action {
                if let Some(av) = self.action_variants.get(da) {
                    if !av.mbls.is_empty() {
                        return Err(CompileError::DefaultActionUsesMblField {
                            table: t.name.clone(),
                            action: da.clone(),
                        });
                    }
                }
            }

            // Physical action list: all variants.
            let mut actions: Vec<String> = Vec::new();
            for av in &action_variants {
                actions.extend(av.variants.iter().cloned());
            }

            // Physical capacity: worst-case expansion × 2 for the shadow
            // copy of malleable tables.
            let expansion: u32 = selector_mbls
                .iter()
                .map(|m| self.mbl_field(m).unwrap().alts.len() as u32)
                .product();
            let user_size = t.size.unwrap_or(1024);
            let phys_size = user_size
                .saturating_mul(expansion.max(1))
                .saturating_mul(if t.malleable { 2 } else { 1 });

            let out_t = self.out.table_mut(&t.name).unwrap();
            out_t.reads = reads.clone();
            out_t.actions = actions;
            out_t.size = Some(phys_size);
            out_t.malleable = false; // lowered to plain P4

            self.iface.tables.push(TableInfo {
                name: t.name.clone(),
                user_key,
                selector_cols,
                vv_col,
                phys_cols: reads.len(),
                actions: action_variants,
                malleable: t.malleable,
            });
        }

        // Non-master init tables are managed with the same vv mechanism:
        // expose them as keyless malleable tables.
        for (bi, it) in self.iface.init_tables.clone().iter().enumerate() {
            if it.is_master {
                continue;
            }
            let _ = bi;
            self.iface.tables.push(TableInfo {
                name: it.table.clone(),
                user_key: vec![],
                selector_cols: vec![],
                vv_col: Some(0),
                phys_cols: 1,
                actions: vec![ActionVariants {
                    orig: it.action.clone(),
                    mbls: vec![],
                    alt_counts: vec![],
                    variants: vec![it.action.clone()],
                }],
                malleable: true,
            });
        }
        Ok(())
    }

    // -- step 5: load-value tables (field_list optimization) -----------------

    fn gen_load_tables(&mut self) {
        for name in self.load_set.clone() {
            let decl = self.mbl_field(&name).unwrap().clone();
            let value_field = format!("{name}_val_");
            self.meta_fields
                .push((value_field.clone(), decl.width, Value::zero(decl.width)));

            let mut load_actions = Vec::new();
            for (i, alt) in decl.alts.iter().enumerate() {
                let an = format!("p4r_load_{name}_{i}_");
                self.out.actions.push(ActionDecl {
                    name: an.clone(),
                    params: vec![],
                    body: vec![PrimitiveCall::ModifyField {
                        dst: FieldOrMbl::Field(meta_ref(&value_field)),
                        src: Operand::Field(alt.clone()),
                    }],
                });
                load_actions.push(an);
            }
            let table = format!("p4r_load_{name}_");
            self.out.tables.push(TableDecl {
                name: table.clone(),
                reads: vec![TableRead {
                    target: FieldOrMbl::Field(meta_ref(&format!("{name}_alt"))),
                    kind: MatchKind::Exact,
                    mask: None,
                }],
                actions: load_actions.clone(),
                default_action: None,
                size: Some(decl.alts.len().max(1) as u32 * 2),
                malleable: false,
            });
            for (i, an) in load_actions.iter().enumerate() {
                self.iface.prologue_entries.push(PrologueEntry {
                    table: table.clone(),
                    selector: i as u64,
                    action: an.clone(),
                });
            }
            self.pre_ingress.push(ControlStmt::Apply(table.clone()));

            // Replace ${name} in field lists with the value field.
            for fl in &mut self.out.field_lists {
                for e in &mut fl.entries {
                    if matches!(e, FieldOrMbl::Mbl(n) if n == &name) {
                        *e = FieldOrMbl::Field(meta_ref(&value_field));
                    }
                }
            }
            if let Some(slot) = self.iface.fields.iter_mut().find(|f| f.name == name) {
                slot.load = Some(LoadInfo {
                    table,
                    value_field,
                    actions: load_actions,
                });
            }
        }
        // Any remaining malleable *value* refs in field lists become
        // metadata refs directly.
        let value_names: BTreeSet<String> =
            self.src.mbl_values.iter().map(|v| v.name.clone()).collect();
        for fl in &mut self.out.field_lists {
            for e in &mut fl.entries {
                if let FieldOrMbl::Mbl(n) = e {
                    if value_names.contains(n.as_str()) {
                        *e = FieldOrMbl::Field(meta_ref(n));
                    }
                }
            }
        }
    }

    // -- step 5b: malleable refs in control-flow conditions -------------------

    /// Replace `${...}` operands inside `if` conditions of the control
    /// blocks: malleable values become their metadata field; malleable
    /// fields use the load-value optimization (their loaded value field).
    fn transform_control_conditions(&mut self) -> Result<(), CompileError> {
        // Collect replacements first (immutable pass over src).
        let value_names: BTreeSet<String> =
            self.src.mbl_values.iter().map(|v| v.name.clone()).collect();
        let field_names: BTreeSet<String> =
            self.src.mbl_fields.iter().map(|f| f.name.clone()).collect();
        // Any malleable field referenced in a condition must have a loaded
        // value; require it to be in the load set (field_list/reaction use)
        // — conditions alone do not trigger load-table generation, so we
        // treat a non-loaded field here as an error the user can fix by
        // also listing it in a field_list.
        let load_set = self.load_set.clone();
        fn walk(
            stmts: &mut [ControlStmt],
            f: &mut impl FnMut(&mut Operand) -> Result<(), CompileError>,
        ) -> Result<(), CompileError> {
            for s in stmts {
                if let ControlStmt::If { cond, then_, else_ } = s {
                    walk_bool(cond, f)?;
                    walk(then_, f)?;
                    walk(else_, f)?;
                }
            }
            Ok(())
        }
        fn walk_bool(
            e: &mut p4_ast::BoolExpr,
            f: &mut impl FnMut(&mut Operand) -> Result<(), CompileError>,
        ) -> Result<(), CompileError> {
            match e {
                p4_ast::BoolExpr::Cmp { lhs, rhs, .. } => {
                    f(lhs)?;
                    f(rhs)?;
                }
                p4_ast::BoolExpr::And(a, b) | p4_ast::BoolExpr::Or(a, b) => {
                    walk_bool(a, f)?;
                    walk_bool(b, f)?;
                }
                p4_ast::BoolExpr::Not(a) => walk_bool(a, f)?,
                p4_ast::BoolExpr::Valid(_) => {}
            }
            Ok(())
        }
        let mut replace = |op: &mut Operand| -> Result<(), CompileError> {
            if let Operand::Mbl(name) = op {
                if value_names.contains(name.as_str()) {
                    *op = Operand::Field(meta_ref(name));
                } else if field_names.contains(name.as_str()) {
                    if load_set.contains(name.as_str()) {
                        *op = Operand::Field(meta_ref(&format!("{name}_val_")));
                    } else {
                        return Err(CompileError::Parse(format!(
                            "malleable field `{name}` used in a control condition must \
                             also appear in a field_list (load-value optimization)"
                        )));
                    }
                }
            }
            Ok(())
        };
        let mut ingress = std::mem::take(&mut self.out.ingress);
        let mut egress = std::mem::take(&mut self.out.egress);
        walk(&mut ingress, &mut replace)?;
        walk(&mut egress, &mut replace)?;
        self.out.ingress = ingress.clone();
        self.out.egress = egress.clone();
        // `assemble_control` re-reads from src; keep src in sync.
        self.src.ingress = ingress;
        self.src.egress = egress;
        Ok(())
    }

    // -- step 6: measurements (§4.2, §5.2) ------------------------------------

    fn gen_measurements(&mut self) {
        // Per-pipeline measured fields across all reactions (for the
        // measurement tables).
        let mut ing_writes: Vec<(String, FieldRef)> = Vec::new();
        let mut egr_writes: Vec<(String, FieldRef)> = Vec::new();
        // Masking instructions prepended to the measurement actions.
        let mut mask_preludes: Vec<(Pipeline, PrimitiveCall)> = Vec::new();

        for r in self.src.reactions.clone() {
            let mut fields = Vec::new();
            let mut registers = Vec::new();
            let mut widths = Vec::new();
            for arg in &r.args {
                match arg {
                    ReactionArg::Field {
                        pipeline,
                        target,
                        mask,
                    } => {
                        let (binding, field, width) = match target {
                            FieldOrMbl::Field(fr) => (
                                format!("{}_{}", fr.instance, fr.field),
                                fr.clone(),
                                self.src.field_width(fr).unwrap_or(32),
                            ),
                            FieldOrMbl::Mbl(name) => {
                                if self.is_mbl_value(name) {
                                    (
                                        name.clone(),
                                        meta_ref(name),
                                        self.src.mbl_value(name).unwrap().width,
                                    )
                                } else {
                                    // Malleable field: measure its loaded
                                    // value field.
                                    let decl = self.mbl_field(name).unwrap();
                                    (name.clone(), meta_ref(&format!("{name}_val_")), decl.width)
                                }
                            }
                        };
                        let reg = format!("p4r_meas_{}_{}_", r.name, binding);
                        self.out.registers.push(RegisterDecl {
                            name: reg.clone(),
                            width,
                            instance_count: 2,
                            pipeline: *pipeline,
                        });
                        // Masked args (`ing f mask 0x..`): stage the masked
                        // value into generated metadata and measure that.
                        let measured_field = match mask {
                            None => field.clone(),
                            Some(m) => {
                                let mfld = format!("{}_mskd_", binding);
                                self.meta_fields
                                    .push((mfld.clone(), width, Value::zero(width)));
                                let masked_ref = meta_ref(&mfld);
                                let write = PrimitiveCall::BitAnd {
                                    dst: FieldOrMbl::Field(masked_ref.clone()),
                                    a: Operand::Field(field.clone()),
                                    b: Operand::Const(m.resize(width)),
                                };
                                mask_preludes.push((*pipeline, write));
                                masked_ref
                            }
                        };
                        match pipeline {
                            Pipeline::Ingress => {
                                ing_writes.push((reg.clone(), measured_field.clone()))
                            }
                            Pipeline::Egress => {
                                egr_writes.push((reg.clone(), measured_field.clone()))
                            }
                        }
                        widths.push(width);
                        fields.push(MeasuredField {
                            binding,
                            field,
                            width,
                            pipeline: *pipeline,
                            register: reg,
                        });
                    }
                    ReactionArg::Register { register, lo, hi } => {
                        let info = self.ensure_dup_register(register);
                        registers.push(MeasuredRegister {
                            binding: register.clone(),
                            lo: *lo,
                            hi: *hi,
                            ..info
                        });
                    }
                    ReactionArg::Header { pipeline, instance } => {
                        // Fig. 3's `header_ref`: measure every field of the
                        // instance, bound as `<instance>_<field>`.
                        let inst = self.src.instance(instance).expect("validated instance");
                        let ht = self
                            .src
                            .header_type(&inst.header_type)
                            .expect("validated header type")
                            .clone();
                        for (fname, width) in &ht.fields {
                            let field = FieldRef::new(instance.clone(), fname.clone());
                            let binding = format!("{instance}_{fname}");
                            let reg = format!("p4r_meas_{}_{}_", r.name, binding);
                            self.out.registers.push(RegisterDecl {
                                name: reg.clone(),
                                width: *width,
                                instance_count: 2,
                                pipeline: *pipeline,
                            });
                            match pipeline {
                                Pipeline::Ingress => ing_writes.push((reg.clone(), field.clone())),
                                Pipeline::Egress => egr_writes.push((reg.clone(), field.clone())),
                            }
                            widths.push(*width);
                            fields.push(MeasuredField {
                                binding,
                                field,
                                width: *width,
                                pipeline: *pipeline,
                                register: reg,
                            });
                        }
                    }
                }
            }
            let packed_words = packing::packed_word_count(&widths, self.opts.measurement_word_bits);
            self.iface.reactions.push(ReactionBinding {
                name: r.name.clone(),
                fields,
                registers,
                packed_words,
                body_src: r.body_src.clone(),
            });
        }

        // Measurement tables: one per pipeline with measured fields.
        for (pipeline, writes) in [
            (Pipeline::Ingress, ing_writes),
            (Pipeline::Egress, egr_writes),
        ] {
            if writes.is_empty() {
                continue;
            }
            let suffix = match pipeline {
                Pipeline::Ingress => "ing",
                Pipeline::Egress => "egr",
            };
            let action_name = format!("p4r_measure_{suffix}_action_");
            let mut body: Vec<PrimitiveCall> = mask_preludes
                .iter()
                .filter(|(p, _)| *p == pipeline)
                .map(|(_, c)| c.clone())
                .collect();
            body.extend(
                writes
                    .iter()
                    .map(|(reg, field)| PrimitiveCall::RegisterWrite {
                        register: reg.clone(),
                        index: Operand::Field(meta_ref(MV)),
                        value: Operand::Field(field.clone()),
                    }),
            );
            self.out.actions.push(ActionDecl {
                name: action_name.clone(),
                params: vec![],
                body,
            });
            let table_name = format!("p4r_measure_{suffix}_");
            self.out.tables.push(TableDecl {
                name: table_name.clone(),
                reads: vec![],
                actions: vec![action_name.clone()],
                default_action: Some((action_name, vec![])),
                size: Some(1),
                malleable: false,
            });
            match pipeline {
                Pipeline::Ingress => self.post_ingress.push(ControlStmt::Apply(table_name)),
                Pipeline::Egress => self.post_egress.push(ControlStmt::Apply(table_name)),
            }
        }
    }

    /// Generate (once) the double-buffered duplicate + write counter for a
    /// measured user register, and rewrite every action writing it (§5.2).
    fn ensure_dup_register(&mut self, reg: &str) -> MeasuredRegister {
        if let Some(info) = self.dup_regs.get(reg) {
            return info.clone();
        }
        let decl = self.src.register(reg).unwrap().clone();

        // Registers never written by the data plane (e.g. the traffic
        // manager's queue-depth mirror) have nothing to double-buffer: the
        // agent polls them directly.
        let written = self.out.actions.iter().any(|a| {
            a.body.iter().any(|c| match c {
                PrimitiveCall::RegisterWrite { register, .. } => register == reg,
                PrimitiveCall::Count { counter, .. } => counter == reg,
                _ => false,
            })
        });
        if !written {
            let info = MeasuredRegister {
                binding: reg.to_string(),
                register: reg.to_string(),
                lo: 0,
                hi: decl.instance_count.saturating_sub(1),
                width: decl.width,
                dup_register: reg.to_string(),
                ts_register: String::new(),
                stride_log2: 0,
                original_elided: false,
                external: true,
            };
            self.dup_regs.insert(reg.to_string(), info.clone());
            return info;
        }

        let stride_log2 = ceil_log2(decl.instance_count.max(1));
        let dup_count = 2u32 << stride_log2;
        let dup = format!("p4r_dup_{reg}_");
        let ts = format!("p4r_ts_{reg}_");
        self.out.registers.push(RegisterDecl {
            name: dup.clone(),
            width: decl.width,
            instance_count: dup_count,
            pipeline: decl.pipeline,
        });
        self.out.registers.push(RegisterDecl {
            name: ts.clone(),
            width: 32,
            instance_count: dup_count,
            pipeline: decl.pipeline,
        });

        // Scratch metadata fields.
        let idx_field = format!("{reg}_didx_");
        let val_field = format!("{reg}_dval_");
        let tsc_field = format!("{reg}_tsc_");
        self.meta_fields
            .push((idx_field.clone(), 32, Value::zero(32)));
        self.meta_fields
            .push((val_field.clone(), decl.width, Value::zero(decl.width)));
        self.meta_fields
            .push((tsc_field.clone(), 32, Value::zero(32)));

        // Analyze usage: reads or `count` on the register anywhere?
        let mut has_read = false;
        let mut has_count = false;
        for a in &self.out.actions {
            for c in &a.body {
                match c {
                    PrimitiveCall::RegisterRead { register, .. } if register == reg => {
                        has_read = true
                    }
                    PrimitiveCall::Count { counter, .. } if counter == reg => has_count = true,
                    _ => {}
                }
            }
        }
        let original_elided = !has_read && !has_count;

        // Rewrite every action that writes the register.
        for a in &mut self.out.actions {
            let mut new_body: Vec<PrimitiveCall> = Vec::new();
            for call in a.body.drain(..) {
                match &call {
                    PrimitiveCall::RegisterWrite {
                        register,
                        index,
                        value,
                    } if register == reg => {
                        let index = index.clone();
                        let value = value.clone();
                        if !original_elided {
                            new_body.push(call.clone());
                        }
                        // didx = (mv << stride) | index
                        mirror_index(&mut new_body, &idx_field, &index, stride_log2);
                        new_body.push(PrimitiveCall::RegisterWrite {
                            register: dup.clone(),
                            index: Operand::Field(meta_ref(&idx_field)),
                            value,
                        });
                        bump_ts(&mut new_body, &ts, &idx_field, &tsc_field);
                    }
                    PrimitiveCall::Count { counter, index } if counter == reg => {
                        let index = index.clone();
                        new_body.push(call.clone());
                        // Read back the counter value to mirror it.
                        new_body.push(PrimitiveCall::RegisterRead {
                            dst: FieldOrMbl::Field(meta_ref(&val_field)),
                            register: reg.to_string(),
                            index: index.clone(),
                        });
                        mirror_index(&mut new_body, &idx_field, &index, stride_log2);
                        new_body.push(PrimitiveCall::RegisterWrite {
                            register: dup.clone(),
                            index: Operand::Field(meta_ref(&idx_field)),
                            value: Operand::Field(meta_ref(&val_field)),
                        });
                        bump_ts(&mut new_body, &ts, &idx_field, &tsc_field);
                    }
                    _ => new_body.push(call),
                }
            }
            a.body = new_body;
        }
        if original_elided {
            self.out.registers.retain(|r2| r2.name != reg);
        }

        let info = MeasuredRegister {
            binding: reg.to_string(),
            register: reg.to_string(),
            lo: 0,
            hi: decl.instance_count.saturating_sub(1),
            width: decl.width,
            dup_register: dup,
            ts_register: ts,
            stride_log2,
            original_elided,
            external: false,
        };
        self.dup_regs.insert(reg.to_string(), info.clone());
        info
    }

    // -- step 7: final assembly ----------------------------------------------

    fn assemble_control(&mut self) {
        let mut ingress: Vec<ControlStmt> = Vec::new();
        for it in &self.iface.init_tables {
            ingress.push(ControlStmt::Apply(it.table.clone()));
        }
        ingress.extend(self.pre_ingress.clone());
        ingress.extend(self.src.ingress.clone());
        ingress.extend(self.post_ingress.clone());
        self.out.ingress = ingress;

        let mut egress = self.src.egress.clone();
        egress.extend(self.post_egress.clone());
        self.out.egress = egress;
    }

    fn finish(mut self) -> Result<Compiled, CompileError> {
        // Emit the P4R metadata header.
        self.out.header_types.push(HeaderTypeDecl {
            name: META_TYPE.into(),
            fields: self
                .meta_fields
                .iter()
                .map(|(n, w, _)| (n.clone(), *w))
                .collect(),
        });
        self.out.instances.push(InstanceDecl {
            header_type: META_TYPE.into(),
            name: META.into(),
            is_metadata: true,
            initializers: self
                .meta_fields
                .iter()
                .map(|(n, _, init)| (n.clone(), *init))
                .collect(),
        });

        // Strip P4R constructs.
        self.out.mbl_values.clear();
        self.out.mbl_fields.clear();
        self.out.reactions.clear();

        let errs = p4_ast::validate::validate(&self.out);
        if !errs.is_empty() {
            return Err(CompileError::GeneratedProgramInvalid(errs));
        }
        Ok(Compiled {
            p4: self.out,
            iface: self.iface,
            ir: self.ir,
        })
    }
}

fn meta_ref(field: &str) -> FieldRef {
    FieldRef::new(META, field)
}

/// didx = (mv << stride_log2) | index
fn mirror_index(body: &mut Vec<PrimitiveCall>, idx_field: &str, index: &Operand, stride_log2: u32) {
    body.push(PrimitiveCall::ModifyField {
        dst: FieldOrMbl::Field(meta_ref(idx_field)),
        src: Operand::Field(meta_ref(MV)),
    });
    body.push(PrimitiveCall::ShiftLeft {
        dst: FieldOrMbl::Field(meta_ref(idx_field)),
        a: Operand::Field(meta_ref(idx_field)),
        amount: Operand::Const(Value::new(u128::from(stride_log2), 32)),
    });
    body.push(PrimitiveCall::BitOr {
        dst: FieldOrMbl::Field(meta_ref(idx_field)),
        a: Operand::Field(meta_ref(idx_field)),
        b: index.clone(),
    });
}

/// ts[didx] += 1
fn bump_ts(body: &mut Vec<PrimitiveCall>, ts_reg: &str, idx_field: &str, tsc_field: &str) {
    body.push(PrimitiveCall::RegisterRead {
        dst: FieldOrMbl::Field(meta_ref(tsc_field)),
        register: ts_reg.to_string(),
        index: Operand::Field(meta_ref(idx_field)),
    });
    body.push(PrimitiveCall::AddToField {
        dst: FieldOrMbl::Field(meta_ref(tsc_field)),
        v: Operand::Const(Value::new(1, 32)),
    });
    body.push(PrimitiveCall::RegisterWrite {
        register: ts_reg.to_string(),
        index: Operand::Field(meta_ref(idx_field)),
        value: Operand::Field(meta_ref(tsc_field)),
    });
}

fn ceil_log2(n: u32) -> u32 {
    let mut b = 0;
    while (1u32 << b) < n {
        b += 1;
    }
    b
}

/// Enumerate mixed-radix assignments, first position varying slowest.
pub fn assignments(counts: &[usize]) -> Vec<Vec<usize>> {
    let total: usize = counts.iter().product();
    let mut out = Vec::with_capacity(total);
    if counts.is_empty() {
        out.push(vec![]);
        return out;
    }
    let mut cur = vec![0usize; counts.len()];
    loop {
        out.push(cur.clone());
        // increment from the last position
        let mut i = counts.len();
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            cur[i] += 1;
            if cur[i] < counts[i] {
                break;
            }
            cur[i] = 0;
        }
    }
}

/// Destination targets of a primitive call.
pub(crate) fn primitive_targets(call: &PrimitiveCall) -> Vec<&FieldOrMbl> {
    use PrimitiveCall::*;
    match call {
        ModifyField { dst, .. }
        | Add { dst, .. }
        | AddToField { dst, .. }
        | Subtract { dst, .. }
        | SubtractFromField { dst, .. }
        | BitAnd { dst, .. }
        | BitOr { dst, .. }
        | BitXor { dst, .. }
        | ShiftLeft { dst, .. }
        | ShiftRight { dst, .. }
        | RegisterRead { dst, .. }
        | ModifyFieldWithHash { dst, .. } => vec![dst],
        _ => vec![],
    }
}

/// Operand references of a primitive call.
pub(crate) fn primitive_operands(call: &PrimitiveCall) -> Vec<&Operand> {
    use PrimitiveCall::*;
    match call {
        ModifyField { src, .. } => vec![src],
        Add { a, b, .. }
        | Subtract { a, b, .. }
        | BitAnd { a, b, .. }
        | BitOr { a, b, .. }
        | BitXor { a, b, .. } => vec![a, b],
        ShiftLeft { a, amount, .. } | ShiftRight { a, amount, .. } => vec![a, amount],
        AddToField { v, .. } | SubtractFromField { v, .. } => vec![v],
        RegisterWrite { index, value, .. } => vec![index, value],
        RegisterRead { index, .. } | Count { index, .. } => vec![index],
        ModifyFieldWithHash { base, size, .. } => vec![base, size],
        Drop | NoOp => vec![],
    }
}

fn primitive_operands_mut(call: &mut PrimitiveCall) -> Vec<&mut Operand> {
    use PrimitiveCall::*;
    match call {
        ModifyField { src, .. } => vec![src],
        Add { a, b, .. }
        | Subtract { a, b, .. }
        | BitAnd { a, b, .. }
        | BitOr { a, b, .. }
        | BitXor { a, b, .. } => vec![a, b],
        ShiftLeft { a, amount, .. } | ShiftRight { a, amount, .. } => vec![a, amount],
        AddToField { v, .. } | SubtractFromField { v, .. } => vec![v],
        RegisterWrite { index, value, .. } => vec![index, value],
        RegisterRead { index, .. } | Count { index, .. } => vec![index],
        ModifyFieldWithHash { base, size, .. } => vec![base, size],
        Drop | NoOp => vec![],
    }
}

/// Replace `${mbl}` references in an action body with a concrete field.
fn substitute_mbl_field(body: &mut [PrimitiveCall], mbl: &str, alt: &FieldRef) {
    for call in body.iter_mut() {
        for t in primitive_targets_mut(call) {
            if matches!(t, FieldOrMbl::Mbl(n) if n == mbl) {
                *t = FieldOrMbl::Field(alt.clone());
            }
        }
        for o in primitive_operands_mut(call) {
            if matches!(o, Operand::Mbl(n) if n == mbl) {
                *o = Operand::Field(alt.clone());
            }
        }
    }
}

fn primitive_targets_mut(call: &mut PrimitiveCall) -> Vec<&mut FieldOrMbl> {
    use PrimitiveCall::*;
    match call {
        ModifyField { dst, .. }
        | Add { dst, .. }
        | AddToField { dst, .. }
        | Subtract { dst, .. }
        | SubtractFromField { dst, .. }
        | BitAnd { dst, .. }
        | BitOr { dst, .. }
        | BitXor { dst, .. }
        | ShiftLeft { dst, .. }
        | ShiftRight { dst, .. }
        | RegisterRead { dst, .. }
        | ModifyFieldWithHash { dst, .. } => vec![dst],
        _ => vec![],
    }
}
