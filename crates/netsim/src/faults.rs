//! Deterministic link-fault scheduling: turn the [`LinkFlap`] entries of
//! a [`FaultPlan`] into simulator events that force ports down and back
//! up at fixed virtual times.
//!
//! A flap is an *environment* fault, not a driver fault: the switch port
//! goes down underneath the control plane, exactly like the failover
//! use case's induced link failure (§7.2), so reactions observe it
//! through their measurements and must steer traffic around it.

use crate::sim::Simulator;
use mantis_faults::{FaultPlan, LinkFlap};
use mantis_telemetry::Scope;
use rmt_sim::PortId;

/// Schedule every link flap in `plan` on the simulator's event queue.
///
/// Ports outside the switch's port range are ignored (the plan may be
/// written against a larger topology).
pub fn schedule_link_flaps(sim: &mut Simulator, plan: &FaultPlan) {
    for flap in plan.link_flaps.clone() {
        schedule_link_flap(sim, flap);
    }
}

/// Schedule one down/up pair.
///
/// When the flapped port is one end of an inter-switch link, *both*
/// endpoints go down and come back together — the fault lives on the
/// wire, so heartbeats and data crossing it die in either direction.
pub fn schedule_link_flap(sim: &mut Simulator, flap: LinkFlap) {
    let switch = flap.switch as usize;
    let port = flap.port as PortId;
    if switch >= sim.num_switches() {
        return; // plan written against a larger fabric
    }
    sim.schedule(flap.down_at, move |s| set_link(s, switch, port, false));
    sim.schedule(flap.up_at, move |s| set_link(s, switch, port, true));
}

fn set_link(sim: &mut Simulator, switch: usize, port: PortId, up: bool) {
    set_port(sim, switch, port, up);
    if let Some((peer, _)) = sim.topology().peer_of(switch, port) {
        set_port(sim, peer.switch, peer.port, up);
    }
}

fn set_port(sim: &mut Simulator, switch: usize, port: PortId, up: bool) {
    let ok = sim
        .switch_at(switch)
        .borrow_mut()
        .port_set_up(port, up)
        .is_ok();
    if !ok {
        return;
    }
    let tel = sim.telemetry();
    if tel.is_enabled() {
        let name = if up { "link_up" } else { "link_down" };
        // Single-switch testbeds keep the historical one-attribute shape
        // (telemetry goldens are byte-identical).
        if sim.num_switches() > 1 {
            tel.instant(
                Scope::Switch,
                name,
                sim.now(),
                &[("port", i128::from(port)), ("switch", switch as i128)],
            );
        } else {
            tel.instant(
                Scope::Switch,
                name,
                sim.now(),
                &[("port", i128::from(port))],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_sim::{switch_from_source, Clock, SharedSwitch, SwitchConfig};

    const PROG: &str = r#"
header_type ip_t { fields { src : 32; } }
header ip_t ip;
action fwd() { modify_field(intr.egress_spec, 2); }
table t { actions { fwd; } default_action : fwd(); }
control ingress { apply(t); }
"#;

    #[test]
    fn flaps_toggle_ports_at_their_scheduled_times() {
        let clock = Clock::new();
        let sw = switch_from_source(PROG, SwitchConfig::default(), clock).unwrap();
        let mut sim = Simulator::new(SharedSwitch::new(sw));
        let plan = FaultPlan::new().flap(2, 1_000, 5_000);
        schedule_link_flaps(&mut sim, &plan);

        sim.run_until(500);
        assert!(sim.switch().borrow().port(2).unwrap().up);
        sim.run_until(2_000);
        assert!(!sim.switch().borrow().port(2).unwrap().up, "down at 1000");
        sim.run_until(6_000);
        assert!(sim.switch().borrow().port(2).unwrap().up, "back up at 5000");
    }

    #[test]
    fn flapping_an_inter_switch_link_downs_both_endpoints() {
        use crate::topo::{Endpoint, Topology};
        let clock = Clock::new();
        let a = switch_from_source(PROG, SwitchConfig::default(), clock.clone()).unwrap();
        let b = switch_from_source(PROG, SwitchConfig::default(), clock).unwrap();
        let topo = Topology::new(2).link(Endpoint::new(0, 5), Endpoint::new(1, 6));
        let mut sim = Simulator::fabric(vec![SharedSwitch::new(a), SharedSwitch::new(b)], topo);
        let plan = FaultPlan::new().flap_on(0, 5, 1_000, 5_000);
        schedule_link_flaps(&mut sim, &plan);

        sim.run_until(2_000);
        assert!(!sim.switch_at(0).borrow().port(5).unwrap().up);
        assert!(
            !sim.switch_at(1).borrow().port(6).unwrap().up,
            "the peer endpoint goes down with the wire"
        );
        sim.run_until(6_000);
        assert!(sim.switch_at(0).borrow().port(5).unwrap().up);
        assert!(sim.switch_at(1).borrow().port(6).unwrap().up);
    }

    #[test]
    fn out_of_range_ports_are_ignored() {
        let clock = Clock::new();
        let sw = switch_from_source(PROG, SwitchConfig::default(), clock).unwrap();
        let mut sim = Simulator::new(SharedSwitch::new(sw));
        let plan = FaultPlan::new().flap(60_000, 10, 20);
        schedule_link_flaps(&mut sim, &plan);
        sim.run_until(100); // must not panic
    }
}
