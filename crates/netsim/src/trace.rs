//! Synthetic CAIDA-like trace generation.
//!
//! The paper's Fig. 14 replays a CAIDA ISP-backbone trace (proprietary
//! download; ~8.9 M packets and ~370 K flows per 20 s block). We substitute
//! a seeded synthetic trace with the same statistical structure the
//! experiment depends on: heavy-tailed (Pareto) per-sender volumes spanning
//! several orders of magnitude, Poisson flow arrivals, and a realistic
//! packet-size mix. DESIGN.md documents the substitution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmt_sim::Nanos;
use std::collections::HashMap;

/// One trace packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TracePacket {
    pub at: Nanos,
    /// Sender identifier (used as the source IP).
    pub src: u32,
    pub dst: u32,
    pub bytes: u32,
}

/// Trace generation parameters.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    pub seed: u64,
    /// Number of distinct senders (flows).
    pub flows: usize,
    /// Trace duration.
    pub duration_ns: Nanos,
    /// Pareto shape for per-flow packet counts (≈1.1-1.3 for internet
    /// traffic).
    pub pareto_alpha: f64,
    /// Minimum packets per flow (Pareto scale).
    pub min_pkts_per_flow: f64,
    /// Cap on packets per flow (keeps the tail finite).
    pub max_pkts_per_flow: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            seed: 7,
            flows: 2_000,
            duration_ns: 100_000_000, // 100 ms
            pareto_alpha: 1.2,
            min_pkts_per_flow: 1.0,
            max_pkts_per_flow: 100_000,
        }
    }
}

/// A generated trace plus its ground truth.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Packets sorted by arrival time.
    pub packets: Vec<TracePacket>,
    /// Ground-truth bytes per sender.
    pub truth_bytes: HashMap<u32, u64>,
    /// Ground-truth packets per sender.
    pub truth_pkts: HashMap<u32, u64>,
}

impl Trace {
    pub fn total_bytes(&self) -> u64 {
        self.truth_bytes.values().sum()
    }

    pub fn total_pkts(&self) -> u64 {
        self.packets.len() as u64
    }
}

/// Draw a packet size from a bimodal ACK/MTU mix (typical of backbone
/// traces).
fn packet_size(rng: &mut StdRng) -> u32 {
    let r: f64 = rng.gen();
    if r < 0.45 {
        40
    } else if r < 0.6 {
        576
    } else {
        1_500
    }
}

/// Generate a trace.
pub fn generate(cfg: &TraceConfig) -> Trace {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut packets = Vec::new();
    let mut truth_bytes = HashMap::new();
    let mut truth_pkts = HashMap::new();

    for f in 0..cfg.flows {
        // Sender IPs: 10.x.y.z spread deterministically.
        let src = 0x0a00_0000u32 + f as u32;
        let dst = 0xC0A8_0001u32 + (f as u32 % 255);

        // Pareto packet count.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let pkts = (cfg.min_pkts_per_flow * u.powf(-1.0 / cfg.pareto_alpha))
            .round()
            .min(cfg.max_pkts_per_flow as f64) as u64;
        let pkts = pkts.max(1);

        // Flow active window: starts uniformly, spans a random fraction of
        // the remaining trace.
        let start = rng.gen_range(0..cfg.duration_ns.max(2) / 2);
        let span = rng.gen_range(cfg.duration_ns / 20..=cfg.duration_ns - start);
        let mut bytes_total = 0u64;
        for _ in 0..pkts {
            let at = start + rng.gen_range(0..span.max(1));
            let bytes = packet_size(&mut rng);
            bytes_total += u64::from(bytes);
            packets.push(TracePacket {
                at,
                src,
                dst,
                bytes,
            });
        }
        truth_bytes.insert(src, bytes_total);
        truth_pkts.insert(src, pkts);
    }

    packets.sort_by_key(|p| p.at);
    Trace {
        packets,
        truth_bytes,
        truth_pkts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&TraceConfig::default());
        let b = generate(&TraceConfig::default());
        assert_eq!(a.packets, b.packets);
        let c = generate(&TraceConfig {
            seed: 8,
            ..Default::default()
        });
        assert_ne!(a.packets, c.packets);
    }

    #[test]
    fn flow_sizes_are_heavy_tailed() {
        let t = generate(&TraceConfig {
            flows: 5_000,
            ..Default::default()
        });
        let mut sizes: Vec<u64> = t.truth_pkts.values().copied().collect();
        sizes.sort_unstable();
        let p50 = sizes[sizes.len() / 2];
        let max = *sizes.last().unwrap();
        // Heavy tail: max flow orders of magnitude above the median.
        assert!(max > p50 * 100, "median {p50}, max {max}");
        // Most flows are tiny.
        assert!(p50 <= 3, "median {p50}");
    }

    #[test]
    fn ground_truth_matches_packets() {
        let t = generate(&TraceConfig {
            flows: 200,
            ..Default::default()
        });
        let mut bytes: HashMap<u32, u64> = HashMap::new();
        for p in &t.packets {
            *bytes.entry(p.src).or_default() += u64::from(p.bytes);
        }
        assert_eq!(bytes, t.truth_bytes);
        assert_eq!(t.total_pkts(), t.packets.len() as u64);
    }

    #[test]
    fn packets_sorted_and_within_duration() {
        let cfg = TraceConfig::default();
        let t = generate(&cfg);
        assert!(t.packets.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(t.packets.iter().all(|p| p.at <= cfg.duration_ns));
    }

    #[test]
    fn packet_sizes_are_mixed() {
        let t = generate(&TraceConfig {
            flows: 3_000,
            ..Default::default()
        });
        let mut counts = HashMap::new();
        for p in &t.packets {
            *counts.entry(p.bytes).or_insert(0u64) += 1;
        }
        assert!(counts.len() >= 3);
        assert!(counts.contains_key(&40));
        assert!(counts.contains_key(&1_500));
    }
}
