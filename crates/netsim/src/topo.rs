//! Fabric topology: which `(switch, port)` endpoints are wired together.
//!
//! A [`Topology`] is a graph of `N` switches connected by bidirectional
//! [`Link`]s. The [`Simulator`](crate::sim::Simulator) consults it after
//! every event: a packet transmitted out a linked port is scheduled as an
//! rx event on the peer switch after the wire delay, while packets leaving
//! unlinked ports exit the fabric (they are the end-to-end deliveries an
//! experiment observes).
//!
//! Port conventions of the built-in constructors: every switch keeps its
//! first [`HOST_PORTS`] ports for hosts/external traffic, and inter-switch
//! links start at port [`HOST_PORTS`]. In a [`Topology::leaf_spine`]
//! fabric, leaf `i`'s uplink to spine `j` is port `HOST_PORTS + j` and
//! spine `j`'s downlink to leaf `i` is port `HOST_PORTS + i` — the same
//! `4..` neighbor-port band the failover use case has always monitored.

use rmt_sim::{Nanos, PortId};

/// Ports `0..HOST_PORTS` are host-facing on every built-in topology;
/// inter-switch links occupy `HOST_PORTS..`.
pub const HOST_PORTS: PortId = 4;

/// Default one-way propagation delay of a built-in link (500 ns — a few
/// hundred meters of fiber, a rack-scale number).
pub const DEFAULT_LINK_LATENCY_NS: Nanos = 500;

/// One side of a link: a port on a switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Endpoint {
    /// Switch index within the fabric (`0..num_switches`).
    pub switch: usize,
    pub port: PortId,
}

impl Endpoint {
    pub fn new(switch: usize, port: PortId) -> Self {
        Endpoint { switch, port }
    }
}

/// A bidirectional wire between two `(switch, port)` endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Link {
    pub a: Endpoint,
    pub b: Endpoint,
    /// One-way propagation delay added on top of the sender's wire
    /// serialization time.
    pub latency_ns: Nanos,
    /// Link bandwidth in bits/s; `0` means "not the bottleneck" (the
    /// sending port's rate already serialized the packet).
    pub bandwidth_bps: u64,
}

impl Link {
    /// Arrival delay for `bytes` over this link (propagation plus the
    /// link-rate transfer time when the link is slower than the port).
    pub fn wire_delay(&self, bytes: u32) -> Nanos {
        let transfer = if self.bandwidth_bps == 0 {
            0
        } else {
            let ns = u128::from(bytes) * 8 * 1_000_000_000 / u128::from(self.bandwidth_bps);
            Nanos::try_from(ns).unwrap_or(Nanos::MAX)
        };
        // Saturating: a delivery at the u64 horizon stays at the horizon
        // instead of wrapping into the simulation's past.
        self.latency_ns.saturating_add(transfer)
    }
}

/// The fabric graph: `num_switches` switches plus the links between them.
///
/// Each `(switch, port)` endpoint may appear in at most one link
/// (enforced by [`Topology::link`]).
#[derive(Clone, Debug, Default)]
pub struct Topology {
    num_switches: usize,
    links: Vec<Link>,
}

impl Topology {
    /// The degenerate 1-switch fabric every single-switch `Testbed` is a
    /// special case of: no links, every port exits the fabric.
    pub fn single() -> Self {
        Topology {
            num_switches: 1,
            links: Vec::new(),
        }
    }

    /// `n` unconnected switches; wire them up with [`Topology::link`].
    pub fn new(num_switches: usize) -> Self {
        assert!(num_switches > 0, "a fabric needs at least one switch");
        Topology {
            num_switches,
            links: Vec::new(),
        }
    }

    /// A chain `0 — 1 — … — n-1`: switch `i`'s port `HOST_PORTS + 1`
    /// connects to switch `i+1`'s port `HOST_PORTS` (i.e. "east" is
    /// `HOST_PORTS + 1`, "west" is `HOST_PORTS`).
    pub fn line(n: usize) -> Self {
        let mut topo = Topology::new(n);
        for i in 0..n.saturating_sub(1) {
            topo = topo.link(
                Endpoint::new(i, HOST_PORTS + 1),
                Endpoint::new(i + 1, HOST_PORTS),
            );
        }
        topo
    }

    /// A 2-tier Clos fabric: switches `0..leaves` are leaves, switches
    /// `leaves..leaves+spines` are spines, and every leaf connects to
    /// every spine. Leaf `i` reaches spine `j` via port `HOST_PORTS + j`;
    /// spine `j` reaches leaf `i` via port `HOST_PORTS + i`.
    pub fn leaf_spine(leaves: usize, spines: usize) -> Self {
        assert!(leaves > 0 && spines > 0, "leaf-spine needs both tiers");
        let mut topo = Topology::new(leaves + spines);
        for i in 0..leaves {
            for j in 0..spines {
                topo = topo.link(
                    Endpoint::new(i, HOST_PORTS + j as PortId),
                    Endpoint::new(leaves + j, HOST_PORTS + i as PortId),
                );
            }
        }
        topo
    }

    /// Add a link with the default latency and unconstrained bandwidth
    /// (builder style).
    pub fn link(self, a: Endpoint, b: Endpoint) -> Self {
        self.link_with(a, b, DEFAULT_LINK_LATENCY_NS, 0)
    }

    /// Add a link with explicit latency/bandwidth (builder style).
    ///
    /// # Panics
    /// Panics if an endpoint names a switch outside the fabric or is
    /// already part of another link (a port has one wire).
    pub fn link_with(
        mut self,
        a: Endpoint,
        b: Endpoint,
        latency_ns: Nanos,
        bandwidth_bps: u64,
    ) -> Self {
        assert!(
            a.switch < self.num_switches && b.switch < self.num_switches,
            "link endpoint names switch outside the fabric ({a:?} — {b:?}, {} switches)",
            self.num_switches
        );
        assert!(a != b, "a link cannot connect an endpoint to itself");
        for ep in [a, b] {
            assert!(
                self.peer_of(ep.switch, ep.port).is_none(),
                "endpoint {ep:?} is already linked (a port has one wire)"
            );
        }
        self.links.push(Link {
            a,
            b,
            latency_ns,
            bandwidth_bps,
        });
        self
    }

    pub fn num_switches(&self) -> usize {
        self.num_switches
    }

    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The endpoint wired to `(switch, port)` plus its link, or `None`
    /// when the port exits the fabric.
    pub fn peer_of(&self, switch: usize, port: PortId) -> Option<(Endpoint, &Link)> {
        let ep = Endpoint::new(switch, port);
        self.links.iter().find_map(|l| {
            if l.a == ep {
                Some((l.b, l))
            } else if l.b == ep {
                Some((l.a, l))
            } else {
                None
            }
        })
    }

    /// Leaf `i`'s uplink port to spine `j` under the
    /// [`leaf_spine`](Topology::leaf_spine) convention.
    pub fn leaf_uplink_port(spine: usize) -> PortId {
        HOST_PORTS + spine as PortId
    }

    /// Spine `j`'s downlink port to leaf `i` under the
    /// [`leaf_spine`](Topology::leaf_spine) convention.
    pub fn spine_downlink_port(leaf: usize) -> PortId {
        HOST_PORTS + leaf as PortId
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_has_no_links() {
        let t = Topology::single();
        assert_eq!(t.num_switches(), 1);
        assert!(t.peer_of(0, 0).is_none());
    }

    #[test]
    fn line_wires_east_to_west() {
        let t = Topology::line(3);
        assert_eq!(t.num_switches(), 3);
        assert_eq!(t.links().len(), 2);
        let (peer, link) = t.peer_of(0, HOST_PORTS + 1).expect("0 east — 1 west");
        assert_eq!(peer, Endpoint::new(1, HOST_PORTS));
        assert_eq!(link.latency_ns, DEFAULT_LINK_LATENCY_NS);
        // Symmetric lookup.
        let (back, _) = t.peer_of(1, HOST_PORTS).unwrap();
        assert_eq!(back, Endpoint::new(0, HOST_PORTS + 1));
        // Host ports and the chain ends exit the fabric.
        assert!(t.peer_of(0, 0).is_none());
        assert!(t.peer_of(0, HOST_PORTS).is_none());
        assert!(t.peer_of(2, HOST_PORTS + 1).is_none());
    }

    #[test]
    fn leaf_spine_is_a_full_bipartite_mesh() {
        let t = Topology::leaf_spine(2, 2);
        assert_eq!(t.num_switches(), 4);
        assert_eq!(t.links().len(), 4);
        for leaf in 0..2 {
            for spine in 0..2 {
                let (peer, _) = t
                    .peer_of(leaf, Topology::leaf_uplink_port(spine))
                    .expect("leaf uplink wired");
                assert_eq!(
                    peer,
                    Endpoint::new(2 + spine, Topology::spine_downlink_port(leaf))
                );
            }
        }
        // Host ports stay free on every switch.
        for sw in 0..4 {
            for port in 0..HOST_PORTS {
                assert!(t.peer_of(sw, port).is_none());
            }
        }
    }

    #[test]
    fn wire_delay_adds_transfer_time_at_finite_bandwidth() {
        let t = Topology::new(2).link_with(
            Endpoint::new(0, 4),
            Endpoint::new(1, 4),
            1_000,
            1_000_000_000, // 1 Gbps
        );
        let (_, link) = t.peer_of(0, 4).unwrap();
        // 1250 B at 1 Gbps = 10 µs transfer + 1 µs propagation.
        assert_eq!(link.wire_delay(1_250), 1_000 + 10_000);
        let unconstrained = Link {
            a: Endpoint::new(0, 0),
            b: Endpoint::new(1, 0),
            latency_ns: 7,
            bandwidth_bps: 0,
        };
        assert_eq!(unconstrained.wire_delay(1_250), 7);
    }

    #[test]
    #[should_panic(expected = "already linked")]
    fn double_wiring_a_port_panics() {
        let _ = Topology::new(3)
            .link(Endpoint::new(0, 4), Endpoint::new(1, 4))
            .link(Endpoint::new(0, 4), Endpoint::new(2, 4));
    }
}
