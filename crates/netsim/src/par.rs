//! The epoch-barrier worker pool behind [`Simulator`](crate::Simulator)'s
//! parallel drain (DESIGN.md §12).
//!
//! Shards are whole switches, statically assigned to workers (switch `i` →
//! worker `i % W` unless the assignment was scrambled for testing). Each
//! drain is one epoch: the coordinator broadcasts a `Go`, every worker
//! pumps its owned switches concurrently — recording telemetry into a
//! fresh per-switch staging buffer — and replies with one
//! [`ShardResult`] per switch. The coordinator then merges stagings and
//! routes transmit batches in canonical switch-index order, which is what
//! makes the output byte-identical to the sequential engine at any worker
//! count.
//!
//! Workers never touch the event heap, the topology, or each other's
//! switches; cross-shard effects (wire deliveries, fabric-exit packets)
//! travel through `ShardResult::batch` and are applied serially at the
//! barrier.

use mantis_telemetry::Telemetry;
use rmt_sim::{SharedSwitch, TxPacket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// What one switch produced during one epoch's pump.
pub(crate) struct ShardResult {
    /// Fabric index of the switch this came from.
    pub switch: usize,
    /// Packets served (the deterministic work unit for scaling stats).
    pub work: u64,
    /// Transmitted packets with their frame length, in transmit order.
    pub batch: Vec<(TxPacket, u32)>,
    /// Packets still waiting in the switch's TM after the pump; the
    /// coordinator uses it to refresh the busy flag.
    pub queued: u64,
    /// The staging telemetry buffer recorded during the pump; folded into
    /// the main registry in switch-index order at the barrier.
    pub staging: Arc<Telemetry>,
}

enum Msg {
    Go,
    Shutdown,
}

struct Worker {
    go_tx: mpsc::Sender<Msg>,
    reply_rx: mpsc::Receiver<Vec<ShardResult>>,
    join: Option<JoinHandle<()>>,
}

/// A fixed pool of pump workers with static shard ownership.
pub(crate) struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// Spawn one thread per entry of `shards`; `shards[w]` is the list of
    /// `(switch_index, handle)` pairs worker `w` owns for the pool's
    /// lifetime. `busy` is the coordinator's per-switch activity flags:
    /// workers skip owned switches whose flag is clear (an idle pump has
    /// no side effects, so skipping is byte-exact). The coordinator only
    /// writes the flags outside epochs; the `Go` channel send orders
    /// those writes before the workers' relaxed reads.
    pub fn new(shards: Vec<Vec<(usize, SharedSwitch)>>, busy: Arc<Vec<AtomicBool>>) -> Self {
        let workers = shards
            .into_iter()
            .enumerate()
            .map(|(w, owned)| {
                let (go_tx, go_rx) = mpsc::channel::<Msg>();
                let (reply_tx, reply_rx) = mpsc::channel::<Vec<ShardResult>>();
                let busy = busy.clone();
                let join = std::thread::Builder::new()
                    .name(format!("mantis-pump-{w}"))
                    .spawn(move || worker_loop(&owned, &busy, &go_rx, &reply_tx))
                    .expect("spawn pump worker");
                Worker {
                    go_tx,
                    reply_rx,
                    join: Some(join),
                }
            })
            .collect();
        WorkerPool { workers }
    }

    /// Run one epoch: pump every shard concurrently, gather every worker's
    /// results. `out[w]` holds worker `w`'s shard results in its ownership
    /// order — the caller re-sorts by switch index for the canonical merge.
    pub fn run_epoch(&self) -> Vec<Vec<ShardResult>> {
        for w in &self.workers {
            w.go_tx.send(Msg::Go).expect("pump worker alive");
        }
        self.workers
            .iter()
            .map(|w| w.reply_rx.recv().expect("pump worker reply"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.go_tx.send(Msg::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(join) = w.join.take() {
                let _ = join.join();
            }
        }
    }
}

fn worker_loop(
    owned: &[(usize, SharedSwitch)],
    busy: &[AtomicBool],
    go_rx: &mpsc::Receiver<Msg>,
    reply_tx: &mpsc::Sender<Vec<ShardResult>>,
) {
    while let Ok(Msg::Go) = go_rx.recv() {
        let results = owned
            .iter()
            .filter(|(idx, _)| busy[*idx].load(Ordering::Relaxed))
            .filter_map(|(idx, handle)| {
                let mut sw = handle.borrow_mut();
                // Same provable-no-op skip as the serial drain: queued
                // packets none of which can serve yet leave the switch
                // busy for a later epoch.
                if sw.tm_queued() > 0 && !sw.tx_ready() {
                    return None;
                }
                // Record this pump into a private staging buffer so
                // concurrent shards never interleave writes to the shared
                // registry; the coordinator merges in switch-index order.
                let main = sw.telemetry().clone();
                let staging = main.staging_for(format!("staging shard for switch {idx}"));
                sw.set_telemetry(staging.clone());
                let work = sw.pump();
                sw.set_telemetry(main);
                let queued = sw.tm_queued();
                let batch = sw
                    .take_transmitted()
                    .into_iter()
                    .map(|pkt| {
                        let bytes = pkt.phv.frame_len(sw.spec());
                        (pkt, bytes)
                    })
                    .collect();
                Some(ShardResult {
                    switch: *idx,
                    work,
                    batch,
                    queued,
                    staging,
                })
            })
            .collect();
        if reply_tx.send(results).is_err() {
            break;
        }
    }
}
