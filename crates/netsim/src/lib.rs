//! # netsim
//!
//! A deterministic discrete-event network simulator around the `rmt-sim`
//! switch — the stand-in for the paper's 25 Gbps server testbed:
//!
//! * [`sim`] — event queue on the shared virtual clock,
//! * [`topo`] — the fabric graph: `(switch, port)` endpoints wired by
//!   latency/bandwidth links,
//! * [`faults`] — deterministic link flaps scheduled from a fault plan,
//! * [`flows`] — TCP-like AIMD flows, CBR UDP senders (the DoS attacker),
//!   and heartbeat generators,
//! * [`trace`] — seeded synthetic CAIDA-like traces with ground truth,
//! * [`metrics`] — time-bucketed series, median/MAD/percentiles,
//! * [`wheel`] — the hierarchical timing wheel behind the event queue.

#![forbid(unsafe_code)]

pub mod faults;
pub mod flows;
pub mod metrics;
mod par;
pub mod sim;
pub mod topo;
pub mod trace;
pub mod wheel;

pub use faults::{schedule_link_flap, schedule_link_flaps};
pub use flows::{
    ports_across_pipes, publish_scale_telemetry, scale_totals, spawn_heartbeats,
    spawn_heartbeats_on, spawn_scale_flows, spawn_tcp, spawn_tcp_across_pipes, spawn_tcp_on,
    spawn_udp, spawn_udp_on, HeartbeatConfig, ScaleConfig, ScaleHost, ScaleTotals, TcpConfig,
    TcpState, UdpConfig, UdpState,
};
pub use metrics::{mad, mean, mean_abs_dev, median, percentile, BucketSeries};
pub use sim::{ParStats, Simulator};
pub use topo::{Endpoint, Link, Topology, DEFAULT_LINK_LATENCY_NS, HOST_PORTS};
pub use trace::{generate, Trace, TraceConfig, TracePacket};
pub use wheel::TimingWheel;
