//! The discrete-event simulator core.
//!
//! A [`Simulator`] owns the shared virtual clock, the switch, and an event
//! queue of scheduled closures. Traffic sources (TCP/UDP flows, heartbeat
//! generators) schedule their own next events; experiment harnesses
//! schedule agent dialogue iterations the same way. Execution is fully
//! deterministic: ties break by schedule order.

use mantis_telemetry::Telemetry;
use rmt_sim::{Clock, Nanos, Switch, TxPacket};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

type EventFn = Box<dyn FnOnce(&mut Simulator)>;

struct Scheduled {
    at: Nanos,
    seq: u64,
    run: EventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The event-driven simulator.
pub struct Simulator {
    clock: Clock,
    switch: Rc<RefCell<Switch>>,
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
    /// Transmitted packets drained from the switch after every event; kept
    /// until taken by the experiment (capped to avoid unbounded growth when
    /// unused).
    tx_log: Vec<TxPacket>,
    /// Cap on `tx_log` length; older packets are discarded first.
    pub tx_log_cap: usize,
    /// Count of all packets ever transmitted (not capped).
    pub tx_count: u64,
    pub tx_bytes: u64,
    next_flow_id: u64,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.clock.now())
            .field("pending_events", &self.heap.len())
            .finish()
    }
}

impl Simulator {
    pub fn new(switch: Rc<RefCell<Switch>>) -> Self {
        let clock = switch.borrow().clock().clone();
        Simulator {
            clock,
            switch,
            heap: BinaryHeap::new(),
            next_seq: 0,
            tx_log: Vec::new(),
            tx_log_cap: 1 << 20,
            tx_count: 0,
            tx_bytes: 0,
            next_flow_id: 0,
        }
    }

    /// The switch's telemetry handle (disabled unless a testbed attached
    /// one via `Switch::set_telemetry`). Flow sources use it to publish
    /// per-flow rate gauges and drop events.
    pub fn telemetry(&self) -> Rc<Telemetry> {
        self.switch.borrow().telemetry().clone()
    }

    /// Allocate a stable id for a spawned flow (used in telemetry names).
    pub fn alloc_flow_id(&mut self) -> u64 {
        let id = self.next_flow_id;
        self.next_flow_id += 1;
        id
    }

    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    pub fn now(&self) -> Nanos {
        self.clock.now()
    }

    pub fn switch(&self) -> &Rc<RefCell<Switch>> {
        &self.switch
    }

    /// Schedule a one-shot event at absolute time `at` (events in the past
    /// run at the current time).
    pub fn schedule(&mut self, at: Nanos, f: impl FnOnce(&mut Simulator) + 'static) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled {
            at,
            seq,
            run: Box::new(f),
        }));
    }

    /// Schedule `f` every `interval` starting at `start`; stops when `f`
    /// returns `false`.
    ///
    /// The period is *nominal*: the next firing is scheduled at
    /// `previous_nominal + interval` even if event execution lagged behind
    /// (e.g. a long control-plane operation advanced the clock). This
    /// models traffic sources that keep their rate while the switch CPU is
    /// busy — lagging firings execute back-to-back to catch up.
    pub fn schedule_periodic(
        &mut self,
        start: Nanos,
        interval: Nanos,
        f: impl FnMut(&mut Simulator) -> bool + 'static,
    ) {
        fn step(
            sim: &mut Simulator,
            mut f: impl FnMut(&mut Simulator) -> bool + 'static,
            interval: Nanos,
            nominal: Nanos,
        ) {
            if f(sim) {
                let next = nominal + interval.max(1);
                sim.schedule(next, move |s| step(s, f, interval, next));
            }
        }
        self.schedule(start, move |s| step(s, f, interval, start));
    }

    /// Run all events with `at <= until`, then advance the clock to
    /// `until`.
    pub fn run_until(&mut self, until: Nanos) {
        // peek-then-pop (not `while let`): the event stays queued when it
        // lies beyond the horizon.
        #[allow(clippy::while_let_loop)]
        loop {
            let Some(Reverse(head)) = self.heap.peek() else {
                break;
            };
            if head.at > until {
                break;
            }
            let Reverse(ev) = self.heap.pop().unwrap();
            self.clock.advance_to(ev.at);
            (ev.run)(self);
            self.drain_switch();
        }
        self.clock.advance_to(until);
        self.drain_switch();
    }

    /// Run for `dur` from the current time.
    pub fn run_for(&mut self, dur: Nanos) {
        let until = self.now() + dur;
        self.run_until(until);
    }

    /// Service switch queues and collect transmitted packets.
    pub fn drain_switch(&mut self) {
        let mut sw = self.switch.borrow_mut();
        sw.pump();
        for pkt in sw.take_transmitted() {
            self.tx_count += 1;
            self.tx_bytes += u64::from(pkt.phv.frame_len(sw.spec()));
            if self.tx_log.len() < self.tx_log_cap {
                self.tx_log.push(pkt);
            }
        }
    }

    /// Take the transmitted-packet log.
    pub fn take_tx(&mut self) -> Vec<TxPacket> {
        std::mem::take(&mut self.tx_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_sim::{switch_from_source, PacketDesc, SwitchConfig};

    const FWD_ALL: &str = r#"
header_type ip_t { fields { src : 32; dst : 32; } }
header ip_t ip;
action fwd() { modify_field(intr.egress_spec, 2); }
table t { actions { fwd; } default_action : fwd(); }
control ingress { apply(t); }
"#;

    fn mk() -> Simulator {
        let clock = Clock::new();
        let sw = switch_from_source(FWD_ALL, SwitchConfig::default(), clock).unwrap();
        Simulator::new(Rc::new(RefCell::new(sw)))
    }

    #[test]
    fn events_run_in_time_order_with_fifo_ties() {
        let mut sim = mk();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (t, tag) in [(50u64, "b"), (10, "a"), (50, "c"), (99, "d")] {
            let log = log.clone();
            sim.schedule(t, move |s| log.borrow_mut().push((s.now(), tag)));
        }
        sim.run_until(100);
        assert_eq!(
            *log.borrow(),
            vec![(10, "a"), (50, "b"), (50, "c"), (99, "d")]
        );
        assert_eq!(sim.now(), 100);
    }

    #[test]
    fn events_scheduled_from_events_run() {
        let mut sim = mk();
        let hits = Rc::new(RefCell::new(0));
        let h = hits.clone();
        sim.schedule(10, move |s| {
            let h2 = h.clone();
            s.schedule(20, move |_| *h2.borrow_mut() += 1);
        });
        sim.run_until(100);
        assert_eq!(*hits.borrow(), 1);
    }

    #[test]
    fn periodic_stops_on_false() {
        let mut sim = mk();
        let count = Rc::new(RefCell::new(0));
        let c = count.clone();
        sim.schedule_periodic(0, 10, move |_| {
            *c.borrow_mut() += 1;
            *c.borrow() < 5
        });
        sim.run_until(1_000);
        assert_eq!(*count.borrow(), 5);
    }

    #[test]
    fn injected_packets_get_transmitted_and_logged() {
        let mut sim = mk();
        for i in 0..3 {
            sim.schedule(i * 1_000, move |s| {
                s.switch().borrow_mut().inject(
                    &PacketDesc::new(0)
                        .field("ip", "src", i as u128)
                        .payload(100),
                );
            });
        }
        sim.run_until(1_000_000);
        let tx = sim.take_tx();
        assert_eq!(tx.len(), 3);
        assert_eq!(sim.tx_count, 3);
        assert!(tx.iter().all(|p| p.port == 2));
        // Timestamps are monotone.
        assert!(tx.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn events_beyond_horizon_stay_queued() {
        let mut sim = mk();
        let hits = Rc::new(RefCell::new(0));
        let h = hits.clone();
        sim.schedule(500, move |_| *h.borrow_mut() += 1);
        sim.run_until(100);
        assert_eq!(*hits.borrow(), 0);
        sim.run_until(1_000);
        assert_eq!(*hits.borrow(), 1);
    }
}
