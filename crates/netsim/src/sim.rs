//! The discrete-event simulator core.
//!
//! A [`Simulator`] owns the shared virtual clock, the fabric's switches,
//! and an event queue — a hierarchical timing wheel
//! ([`crate::wheel::TimingWheel`]) of typed [`EventKind`]s. The hot
//! packet/flow/wire events are enum variants (no per-event allocation);
//! arbitrary closures remain as the cold-path variant for experiment
//! harnesses. Execution is fully deterministic: events tie-break by
//! schedule order exactly as the historical `BinaryHeap` core did, and
//! the per-event transmit drain visits switches in index order, so link
//! deliveries are totally ordered by `(time, switch_id, seq)`.
//!
//! With a multi-switch [`Topology`], a packet transmitted out a linked
//! port becomes an rx event on the peer switch after the link's wire
//! delay; packets leaving unlinked ports exit the fabric into the
//! transmit log. Wire deliveries move the transmitted PHV itself and
//! re-materialize it on the peer through a cached
//! [`TransferMap`] — no per-hop name round-trip.

use crate::flows::FlowRegistry;
use crate::par::{ShardResult, WorkerPool};
use crate::topo::{Endpoint, Link, Topology};
use crate::wheel::TimingWheel;
use mantis_telemetry::Telemetry;
use rmt_sim::{Clock, Nanos, Phv, PortId, SharedSwitch, TransferMap, TxPacket};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

pub(crate) type EventFn = Box<dyn FnOnce(&mut Simulator)>;

/// A scheduled event. The hot packet/flow/wire events are typed variants
/// dispatched without allocation or indirection; everything else rides in
/// [`EventKind::Closure`].
pub(crate) enum EventKind {
    /// Cold path: an arbitrary boxed closure.
    Closure(EventFn),
    /// A packet on a fabric link: `phv` (frozen at transmit time) travels
    /// from switch `src` to `dest`, entering at `port` at `arrival`.
    WireDeliver {
        src: usize,
        dest: usize,
        port: PortId,
        arrival: Nanos,
        phv: Phv,
    },
    /// One TCP flow's next packet-send (`gen` guards stale reschedules).
    TcpSend { flow: u32, gen: u64 },
    /// One TCP flow's periodic AIMD rate tick.
    TcpTick { flow: u32, nominal: Nanos },
    /// One UDP flow's periodic constant-rate send.
    UdpSend { flow: u32, nominal: Nanos },
    /// One heartbeat source's periodic send.
    HbSend { flow: u32, nominal: Nanos },
    /// Drain every due arrival of scale-flow shard `shard` in one batch.
    FlowWake { shard: u32 },
}

/// Verbatim replica of the pre-refactor event-queue entry — one boxed
/// closure per event, totally ordered by `(time, seq)` in a
/// `BinaryHeap<Reverse<_>>`. Kept so `legacy_compat` measures the old
/// engine's real scheduling cost (deep-heap percolation over boxed
/// closures) instead of letting the baseline ride the timing wheel.
struct LegacyScheduled {
    at: Nanos,
    seq: u64,
    f: EventFn,
}

impl PartialEq for LegacyScheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for LegacyScheduled {}
impl PartialOrd for LegacyScheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LegacyScheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Deterministic scaling accounting for the parallel drain.
///
/// The work unit is one packet served by a pump. `critical_units` is the
/// epoch-by-epoch makespan: per drain, each worker's load is the sum of
/// work over the switches it owns, and the makespan is the slowest
/// worker's load (the whole drain's work when running serially). So
/// `speedup() = work / makespan` is the parallel speedup the shard
/// schedule achieves on ≥ `workers` cores — measured, not modelled, and
/// byte-reproducible across runs and host core counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParStats {
    /// Worker count this simulator is configured for.
    pub workers: usize,
    /// Total drains executed (serial + parallel).
    pub drains: u64,
    /// Drains that went through the worker pool.
    pub parallel_drains: u64,
    /// Total packets served by pumps.
    pub work_units: u64,
    /// Sum over drains of the slowest worker's load.
    pub critical_units: u64,
}

impl ParStats {
    /// Critical-path speedup over a serial run (1.0 when serial or idle).
    pub fn speedup(&self) -> f64 {
        if self.critical_units == 0 {
            1.0
        } else {
            self.work_units as f64 / self.critical_units as f64
        }
    }
}

/// The event-driven simulator.
pub struct Simulator {
    clock: Clock,
    switches: Vec<SharedSwitch>,
    topo: Topology,
    wheel: TimingWheel<EventKind>,
    next_seq: u64,
    /// Per-switch registry of typed flow state (TCP/UDP/heartbeat/scale),
    /// indexed by the ids carried in flow [`EventKind`]s.
    pub(crate) flows: FlowRegistry,
    /// `peer_cache[i][port]` resolves a transmit to the peer endpoint and
    /// link without scanning the topology per packet. Direct-indexed by
    /// port (fabric port numbers are small and dense) — a hash lookup
    /// here was measurable at millions of packets per second.
    peer_cache: Vec<Vec<Option<(Endpoint, Link)>>>,
    /// Lazily built `(src, dest)` → transfer map cache for wire
    /// deliveries.
    xfer: Vec<Vec<Option<Arc<TransferMap>>>>,
    /// One flag per switch: set when the switch may have queued packets,
    /// cleared when a pump leaves its TM empty. A pump of an idle switch
    /// has zero side effects, so drains skip non-busy switches — the
    /// shared `Arc` lets pool workers read the flags (the epoch barrier's
    /// channel handoff orders the coordinator's writes before them).
    busy: Arc<Vec<AtomicBool>>,
    /// Serial-drain mirror of `busy` as a bitmask (word `i/64`, bit
    /// `i%64`): the drain visits only flagged switches in index order
    /// instead of scanning the whole fabric after every event. May hold
    /// stale extra bits after a parallel drain (workers clear `busy`
    /// only); a spurious visit is a no-op pump, never a correctness
    /// issue.
    dirty: Vec<u64>,
    /// Packets that exited the fabric (transmitted out an *unlinked*
    /// port), tagged with the switch that emitted them; kept until taken
    /// by the experiment (capped to avoid unbounded growth when unused).
    tx_log: VecDeque<(usize, TxPacket)>,
    /// Cap on `tx_log` length; older packets are discarded first.
    pub tx_log_cap: usize,
    /// Benchmark-only compatibility mode replicating the pre-refactor
    /// engine's per-packet mechanics: wire hops re-describe the PHV into
    /// string-keyed fields and rebuild it from scratch at delivery via a
    /// boxed closure, every drain pumps every switch (no busy-flag
    /// skip), and each switch runs its own historical cost shape (see
    /// [`Switch::set_legacy_compat`](rmt_sim::Switch::set_legacy_compat)).
    /// Semantically identical output, historically slow — the
    /// `figures -- scale` baseline measures against it. Set via
    /// [`Simulator::set_legacy_compat`] so the whole fabric flips
    /// together. Not for normal use.
    legacy_compat: bool,
    /// Compat mode's event queue: the pre-refactor `BinaryHeap` of boxed
    /// closures. Empty (and never touched) outside `legacy_compat`.
    legacy_heap: BinaryHeap<Reverse<LegacyScheduled>>,
    /// Reusable transmit-batch buffer for the serial drain; cleared and
    /// refilled per pump so the pump → route handoff never allocates at
    /// steady state.
    batch_scratch: Vec<(TxPacket, u32)>,
    /// Count of all packets ever transmitted by any switch, including
    /// hops over internal fabric links (not capped).
    pub tx_count: u64,
    pub tx_bytes: u64,
    /// Per-switch transmit accounting (same units as `tx_count`/`tx_bytes`).
    tx_count_per_switch: Vec<u64>,
    tx_bytes_per_switch: Vec<u64>,
    next_flow_id: u64,
    /// Configured worker count (1 = serial drain, the default).
    workers: usize,
    /// Lazily spawned worker pool; dropped (threads joined) whenever the
    /// worker count or shard assignment changes.
    pool: Option<WorkerPool>,
    /// Switch → worker map. `None` means the canonical `i % workers`;
    /// tests scramble it to prove the barrier merge alone fixes the
    /// output order.
    assignment: Option<Vec<usize>>,
    par_stats: ParStats,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.clock.now())
            .field("switches", &self.switches.len())
            .field("pending_events", &self.wheel.len())
            .finish()
    }
}

impl Simulator {
    /// A single-switch simulator — the 1-node special case of
    /// [`Simulator::fabric`] with the trivial topology.
    pub fn new(switch: SharedSwitch) -> Self {
        Simulator::fabric(vec![switch], Topology::single())
    }

    /// A multi-switch fabric: `switches[i]` is switch `i` of `topo`. All
    /// switches must share one virtual clock (fabric builders construct
    /// them that way).
    ///
    /// # Panics
    /// Panics when the switch count does not match the topology.
    pub fn fabric(switches: Vec<SharedSwitch>, topo: Topology) -> Self {
        assert!(
            switches.len() == topo.num_switches(),
            "fabric has {} switches but the topology names {}",
            switches.len(),
            topo.num_switches()
        );
        let clock = switches[0].borrow().clock().clone();
        let n = switches.len();
        let mut peer_cache: Vec<Vec<Option<(Endpoint, Link)>>> = vec![Vec::new(); n];
        for link in topo.links() {
            for (me, peer) in [(link.a, link.b), (link.b, link.a)] {
                let slots = &mut peer_cache[me.switch];
                let idx = usize::from(me.port);
                if slots.len() <= idx {
                    slots.resize(idx + 1, None);
                }
                slots[idx] = Some((peer, *link));
            }
        }
        Simulator {
            clock,
            switches,
            topo,
            wheel: TimingWheel::new(),
            next_seq: 0,
            flows: FlowRegistry::default(),
            peer_cache,
            xfer: vec![vec![None; n]; n],
            busy: Arc::new((0..n).map(|_| AtomicBool::new(true)).collect()),
            dirty: (0..n.div_ceil(64))
                .map(|w| {
                    let bits = n - w * 64;
                    if bits >= 64 {
                        !0
                    } else {
                        (1u64 << bits) - 1
                    }
                })
                .collect(),
            tx_log: VecDeque::new(),
            tx_log_cap: 1 << 20,
            legacy_compat: false,
            legacy_heap: BinaryHeap::new(),
            batch_scratch: Vec::new(),
            tx_count: 0,
            tx_bytes: 0,
            tx_count_per_switch: vec![0; n],
            tx_bytes_per_switch: vec![0; n],
            next_flow_id: 0,
            workers: 1,
            pool: None,
            assignment: None,
            par_stats: ParStats {
                workers: 1,
                ..ParStats::default()
            },
        }
    }

    /// Set the pump worker count. `1` (the default) keeps the historical
    /// serial drain; `> 1` pumps switch shards on a fixed worker pool with
    /// an epoch barrier per drain. Output is byte-identical either way —
    /// see DESIGN.md §12. Values are clamped to `[1, num_switches]`
    /// (a worker without a shard would just idle).
    pub fn set_workers(&mut self, workers: usize) {
        let w = workers.clamp(1, self.switches.len().max(1));
        if w != self.workers {
            self.pool = None;
            self.workers = w;
        }
        self.par_stats.workers = w;
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enable (or disable) the pre-refactor cost-replication mode — see
    /// the `legacy_compat` field. Propagates to every switch so the
    /// per-switch hot paths flip to their historical form together.
    pub fn set_legacy_compat(&mut self, on: bool) {
        self.legacy_compat = on;
        for sw in &self.switches {
            sw.borrow_mut().set_legacy_compat(on);
        }
    }

    /// Replace the canonical `i % workers` shard assignment with a seeded
    /// pseudo-random permutation. A test hook: the barrier merge is what
    /// guarantees determinism, so any assignment must produce byte-
    /// identical output — the stress suite proves it by scrambling.
    pub fn scramble_assignment(&mut self, seed: u64) {
        let n = self.switches.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Deterministic Fisher–Yates off a splitmix-style stream.
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let w = self.workers.max(1);
        let mut assignment = vec![0usize; n];
        for (slot, &sw) in order.iter().enumerate() {
            assignment[sw] = slot % w;
        }
        self.assignment = Some(assignment);
        self.pool = None;
    }

    /// Scaling accounting accumulated so far (work units, per-epoch
    /// makespan, derived speedup).
    pub fn par_stats(&self) -> ParStats {
        self.par_stats
    }

    /// The fabric's telemetry handle (disabled unless a testbed attached
    /// one via `Switch::set_telemetry`). Flow sources use it to publish
    /// per-flow rate gauges and drop events.
    pub fn telemetry(&self) -> Arc<Telemetry> {
        self.switches[0].borrow().telemetry().clone()
    }

    /// Allocate a stable id for a spawned flow (used in telemetry names).
    pub fn alloc_flow_id(&mut self) -> u64 {
        let id = self.next_flow_id;
        self.next_flow_id += 1;
        id
    }

    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    pub fn now(&self) -> Nanos {
        self.clock.now()
    }

    /// Switch 0 — *the* switch of a single-switch testbed.
    pub fn switch(&self) -> &SharedSwitch {
        &self.switches[0]
    }

    /// Switch `i` of the fabric.
    pub fn switch_at(&self, i: usize) -> &SharedSwitch {
        &self.switches[i]
    }

    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Packets transmitted by switch `i` (including over fabric links).
    pub fn tx_count_on(&self, i: usize) -> u64 {
        self.tx_count_per_switch[i]
    }

    /// Bytes transmitted by switch `i` (including over fabric links).
    pub fn tx_bytes_on(&self, i: usize) -> u64 {
        self.tx_bytes_per_switch[i]
    }

    /// Schedule a one-shot event at absolute time `at` (events in the past
    /// run at the current time).
    pub fn schedule(&mut self, at: Nanos, f: impl FnOnce(&mut Simulator) + 'static) {
        if self.legacy_compat {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.legacy_heap.push(Reverse(LegacyScheduled {
                at,
                seq,
                f: Box::new(f),
            }));
            return;
        }
        self.schedule_kind(at, EventKind::Closure(Box::new(f)));
    }

    /// Schedule a typed event (the allocation-free hot path).
    pub(crate) fn schedule_kind(&mut self, at: Nanos, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.wheel.schedule(at, seq, kind);
    }

    /// Schedule `f` every `interval` starting at `start`; stops when `f`
    /// returns `false`.
    ///
    /// The period is *nominal*: the next firing is scheduled at
    /// `previous_nominal + interval` even if event execution lagged behind
    /// (e.g. a long control-plane operation advanced the clock). This
    /// models traffic sources that keep their rate while the switch CPU is
    /// busy — lagging firings execute back-to-back to catch up.
    pub fn schedule_periodic(
        &mut self,
        start: Nanos,
        interval: Nanos,
        f: impl FnMut(&mut Simulator) -> bool + 'static,
    ) {
        fn step(
            sim: &mut Simulator,
            mut f: impl FnMut(&mut Simulator) -> bool + 'static,
            interval: Nanos,
            nominal: Nanos,
        ) {
            if f(sim) {
                // A nominal period that would pass the u64 horizon ends
                // the chain: rescheduling at a clamped time would fire
                // the same instant forever.
                let Some(next) = nominal.checked_add(interval.max(1)) else {
                    return;
                };
                sim.schedule(next, move |s| step(s, f, interval, next));
            }
        }
        self.schedule(start, move |s| step(s, f, interval, start));
    }

    /// Run all events with `at <= until`, then advance the clock to
    /// `until`.
    pub fn run_until(&mut self, until: Nanos) {
        // External code may have injected packets directly between runs.
        self.mark_all_busy();
        loop {
            while let Some((at, kind)) = self.pop_due(until) {
                self.clock.advance_to(at);
                self.dispatch(kind);
                self.drain_tracked();
            }
            self.clock.advance_to(until);
            self.drain_tracked();
            // The horizon drain may itself have put packets on a fabric
            // link with an arrival inside the horizon — deliver those too
            // before handing control back.
            if !self.has_due(until) {
                break;
            }
        }
    }

    /// Pop the earliest event due by `until` from whichever queue holds
    /// it. Outside `legacy_compat` the heap is empty and this is a plain
    /// wheel pop; in compat mode the wheel and the replica heap merge by
    /// the shared `(time, seq)` order.
    fn pop_due(&mut self, until: Nanos) -> Option<(Nanos, EventKind)> {
        if self.legacy_heap.is_empty() {
            return self.wheel.pop_due(until).map(|(at, _seq, kind)| (at, kind));
        }
        let heap_due = self
            .legacy_heap
            .peek()
            .map(|Reverse(e)| (e.at, e.seq))
            .filter(|&(at, _)| at <= until);
        let take_heap = match (heap_due, self.wheel.peek_due(until)) {
            (Some(h), Some(w)) => h < w,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_heap {
            let Reverse(e) = self.legacy_heap.pop().expect("peeked");
            Some((e.at, EventKind::Closure(e.f)))
        } else {
            self.wheel.pop_due(until).map(|(at, _seq, kind)| (at, kind))
        }
    }

    /// Whether any event (wheel or compat heap) is due by `until`.
    fn has_due(&mut self, until: Nanos) -> bool {
        self.wheel.has_due(until)
            || self
                .legacy_heap
                .peek()
                .is_some_and(|Reverse(e)| e.at <= until)
    }

    /// Execute one event.
    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Closure(f) => {
                // A closure may inject into any switch.
                self.mark_all_busy();
                f(self);
            }
            EventKind::WireDeliver {
                src,
                dest,
                port,
                arrival,
                phv,
            } => {
                self.mark_busy(dest);
                self.deliver_wire(src, dest, port, arrival, phv);
            }
            EventKind::TcpSend { flow, gen } => crate::flows::tcp_send_event(self, flow, gen),
            EventKind::TcpTick { flow, nominal } => {
                crate::flows::tcp_tick_event(self, flow, nominal)
            }
            EventKind::UdpSend { flow, nominal } => {
                crate::flows::udp_send_event(self, flow, nominal)
            }
            EventKind::HbSend { flow, nominal } => crate::flows::hb_send_event(self, flow, nominal),
            EventKind::FlowWake { shard } => crate::flows::flow_wake_event(self, shard),
        }
    }

    /// Deliver a wire packet: materialize the frozen sender PHV on the
    /// destination switch through the cached transfer map, then recycle
    /// the sender-side buffer.
    fn deliver_wire(&mut self, src: usize, dest: usize, port: PortId, arrival: Nanos, phv: Phv) {
        self.ensure_transfer_map(src, dest);
        let identity = self.xfer[src][dest]
            .as_deref()
            .is_some_and(TransferMap::is_identity);
        if identity {
            // Identical specs on both ends (the common fabric case): the
            // buffer itself crosses the wire. Wiping the metadata and
            // stamping the receiver intrinsics leaves exactly the state a
            // copy into a fresh PHV would have produced, minus the copy —
            // the buffer simply migrates from `src`'s freelist orbit to
            // `dest`'s.
            let mut sw = self.switches[dest].borrow_mut();
            let mut phv = phv;
            {
                let spec = sw.spec();
                phv.reset_metadata(spec);
                let intr = spec.intr_ids().expect("intrinsic field");
                phv.set_u64(intr.ingress_port, u64::from(port));
                let len = phv.frame_len(spec);
                phv.set_u64(intr.pkt_len, u64::from(len));
            }
            sw.inject_phv_at(phv, arrival);
            return;
        }
        let map = self.xfer[src][dest].clone().expect("just built");
        if src == dest {
            // A self-loop link: one switch plays both ends.
            let mut sw = self.switches[dest].borrow_mut();
            let mut dst_phv = sw.pool_take();
            map.apply(&phv, &mut dst_phv, port, sw.spec());
            sw.recycle_phv(phv);
            sw.inject_phv_at(dst_phv, arrival);
        } else {
            let mut dsw = self.switches[dest].borrow_mut();
            let mut dst_phv = dsw.pool_take();
            map.apply(&phv, &mut dst_phv, port, dsw.spec());
            dsw.inject_phv_at(dst_phv, arrival);
            drop(dsw);
            self.switches[src].borrow_mut().recycle_phv(phv);
        }
    }

    /// Build the `(src, dest)` transfer map on first use. Kept separate
    /// from the lookup so the identity fast path can consult the cached
    /// map without cloning the `Arc` per delivery.
    fn ensure_transfer_map(&mut self, src: usize, dest: usize) {
        if self.xfer[src][dest].is_none() {
            let map = if src == dest {
                let sw = self.switches[src].borrow();
                TransferMap::build(sw.spec(), sw.spec())
            } else {
                let s = self.switches[src].borrow();
                let d = self.switches[dest].borrow();
                TransferMap::build(s.spec(), d.spec())
            };
            self.xfer[src][dest] = Some(Arc::new(map));
        }
    }

    fn mark_all_busy(&mut self) {
        for b in self.busy.iter() {
            b.store(true, Ordering::Relaxed);
        }
        let n = self.switches.len();
        for (w, word) in self.dirty.iter_mut().enumerate() {
            let bits = n - w * 64;
            *word = if bits >= 64 { !0 } else { (1u64 << bits) - 1 };
        }
    }

    /// Flag switch `i` as possibly having queued packets so the next
    /// drain pumps it.
    pub(crate) fn mark_busy(&mut self, i: usize) {
        self.busy[i].store(true, Ordering::Relaxed);
        self.dirty[i / 64] |= 1u64 << (i % 64);
    }

    /// Run for `dur` from the current time (clamped to the u64 horizon).
    pub fn run_for(&mut self, dur: Nanos) {
        let until = self.now().saturating_add(dur);
        self.run_until(until);
    }

    /// Service every switch's queues and collect transmitted packets:
    /// linked ports schedule an rx event on the peer switch after the wire
    /// delay, unlinked ports append to the transmit log.
    ///
    /// Transmit batches are always *routed* in switch-index order — that
    /// total `(time, switch_id, seq)` order on deliveries is the fabric
    /// determinism contract. With `workers > 1` the *pumps* run
    /// concurrently on the shard pool and everything merges at the epoch
    /// barrier; output is byte-identical to the serial drain.
    pub fn drain_switch(&mut self) {
        // Public entry: callers may have injected into any switch since
        // the last drain, so the busy flags are stale.
        self.mark_all_busy();
        self.drain_tracked();
    }

    /// The busy-tracked drain `run_until` uses between events: switches
    /// whose TM queues are known-empty are skipped outright (an idle pump
    /// has no side effects, so skipping is byte-exact).
    fn drain_tracked(&mut self) {
        if self.legacy_compat {
            // The pre-refactor drain pumped every switch unconditionally.
            self.mark_all_busy();
        }
        if self.workers > 1 && self.switches.len() > 1 {
            self.drain_parallel();
        } else {
            self.drain_serial();
        }
    }

    /// The historical single-threaded drain (also the workers=1 path).
    fn drain_serial(&mut self) {
        let mut drain_work: u64 = 0;
        // The scratch buffer moves out of `self` for the loop's duration
        // so filling it can overlap the switch borrow; its capacity is
        // retained across drains.
        let mut batch = std::mem::take(&mut self.batch_scratch);
        for w in 0..self.dirty.len() {
            let mut word = std::mem::take(&mut self.dirty[w]);
            while word != 0 {
                let bit = word & word.wrapping_neg();
                let i = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                // Collect this switch's transmissions first: scheduling
                // the deliveries needs `&mut self` again.
                batch.clear();
                {
                    let mut sw = self.switches[i].borrow_mut();
                    // Queued packets whose egress/wire time hasn't
                    // arrived yet make the pump a provable no-op — skip
                    // it (the switch stays dirty and is revisited once
                    // the clock reaches its readiness bound). The
                    // pre-refactor engine pumped unconditionally; compat
                    // mode keeps that.
                    if !self.legacy_compat && sw.tm_queued() > 0 && !sw.tx_ready() {
                        self.dirty[w] |= bit;
                        continue;
                    }
                    drain_work += sw.pump();
                    let queued = sw.tm_queued() > 0;
                    self.busy[i].store(queued, Ordering::Relaxed);
                    if queued {
                        self.dirty[w] |= bit;
                    }
                    if self.legacy_compat {
                        // Pre-refactor collection: take the Vec wholesale
                        // and re-collect with frame lengths (two fresh
                        // allocations per productive pump).
                        let pkts = sw.take_transmitted();
                        batch.extend(pkts.into_iter().map(|pkt| {
                            let bytes = pkt.phv.frame_len_walk(sw.spec());
                            (pkt, bytes)
                        }));
                    } else {
                        sw.drain_transmitted_with_len(&mut batch);
                    }
                }
                if !batch.is_empty() {
                    self.route_batch(i, &mut batch);
                }
            }
        }
        self.batch_scratch = batch;
        self.par_stats.drains += 1;
        self.par_stats.work_units += drain_work;
        // One worker does everything: the critical path is all the work.
        self.par_stats.critical_units += drain_work;
    }

    /// The epoch-barrier drain: pump shards on the worker pool, then merge
    /// telemetry and route batches serially in switch-index order.
    fn drain_parallel(&mut self) {
        if !self.busy.iter().any(|b| b.load(Ordering::Relaxed)) {
            // Nothing can transmit: the epoch would be a fleet of no-op
            // pumps. Still counts as a drain for the scaling stats.
            self.par_stats.drains += 1;
            self.par_stats.parallel_drains += 1;
            return;
        }
        if self.pool.is_none() {
            self.pool = Some(self.build_pool());
        }
        let replies = self.pool.as_ref().expect("pool built").run_epoch();

        let n = self.switches.len();
        let mut per_switch: Vec<Option<ShardResult>> = (0..n).map(|_| None).collect();
        let mut makespan: u64 = 0;
        let mut total: u64 = 0;
        for reply in replies {
            let load: u64 = reply.iter().map(|r| r.work).sum();
            makespan = makespan.max(load);
            total += load;
            for r in reply {
                let slot = r.switch;
                self.busy[slot].store(r.queued > 0, Ordering::Relaxed);
                if r.queued > 0 {
                    self.dirty[slot / 64] |= 1u64 << (slot % 64);
                }
                per_switch[slot] = Some(r);
            }
        }
        self.par_stats.drains += 1;
        self.par_stats.parallel_drains += 1;
        self.par_stats.work_units += total;
        self.par_stats.critical_units += makespan;

        // Barrier merge, phase 1: fold staging telemetry in switch-index
        // order — reproduces the serial recording order byte-for-byte.
        let telemetry = self.telemetry();
        for r in per_switch.iter().flatten() {
            telemetry.merge_from(&r.staging);
        }
        // Phase 2: route cross-shard effects (wire deliveries, fabric
        // exits) in the same canonical order.
        for (i, slot) in per_switch.iter_mut().enumerate() {
            if let Some(mut r) = slot.take() {
                self.route_batch(i, &mut r.batch);
            }
        }
    }

    /// Deliver one switch's transmit batch: linked ports become rx events
    /// on the peer after the wire delay, unlinked ports exit to the log.
    fn route_batch(&mut self, i: usize, batch: &mut Vec<(TxPacket, u32)>) {
        for (pkt, bytes) in batch.drain(..) {
            self.tx_count += 1;
            self.tx_bytes += u64::from(bytes);
            self.tx_count_per_switch[i] += 1;
            self.tx_bytes_per_switch[i] += u64::from(bytes);
            match self.peer_cache[i]
                .get(usize::from(pkt.port))
                .copied()
                .flatten()
            {
                Some((peer, link)) => {
                    let arrival = pkt.time.saturating_add(link.wire_delay(bytes));
                    if self.legacy_compat {
                        // Pre-refactor hop: re-describe the PHV into
                        // string-keyed field assignments, box a closure,
                        // and rebuild the PHV by name resolution at
                        // delivery.
                        let mut desc = {
                            let sw = self.switches[i].borrow();
                            pkt.phv.describe(sw.spec())
                        };
                        desc.port = peer.port;
                        let dest = peer.switch;
                        self.switches[i].borrow_mut().recycle_phv(pkt.phv);
                        self.schedule(arrival, move |s| {
                            let mut sw = s.switches[dest].borrow_mut();
                            let phv = desc.build_lossy(sw.spec());
                            sw.inject_phv_at(phv, arrival);
                        });
                        continue;
                    }
                    // The PHV travels as transmitted (its values are
                    // frozen — nothing mutates an in-flight packet) and
                    // is re-materialized on the peer at dispatch via the
                    // cached transfer map. Injection happens *as of* the
                    // arrival time: the delivery event may be
                    // materialized after the clock moved past `arrival`
                    // (the drain is lazy), and the peer's tx timeline
                    // must not be distorted by that.
                    self.schedule_kind(
                        arrival,
                        EventKind::WireDeliver {
                            src: i,
                            dest: peer.switch,
                            port: peer.port,
                            arrival,
                            phv: pkt.phv,
                        },
                    );
                }
                None => {
                    // Enforce the cap contract: older packets are
                    // discarded first (their buffers go back to the
                    // emitting switch's freelist).
                    while self.tx_log.len() >= self.tx_log_cap.max(1) {
                        if let Some((from, old)) = self.tx_log.pop_front() {
                            self.switches[from].borrow_mut().recycle_phv(old.phv);
                        }
                    }
                    if self.tx_log_cap > 0 {
                        self.tx_log.push_back((i, pkt));
                    }
                }
            }
        }
    }

    /// Build the worker pool from the current assignment (canonical
    /// `i % workers` unless scrambled).
    fn build_pool(&self) -> WorkerPool {
        let n = self.switches.len();
        let w = self.workers;
        let mut shards: Vec<Vec<(usize, SharedSwitch)>> = (0..w).map(|_| Vec::new()).collect();
        for i in 0..n {
            let owner = match &self.assignment {
                Some(a) => a[i] % w,
                None => i % w,
            };
            shards[owner].push((i, self.switches[i].clone()));
        }
        WorkerPool::new(shards, self.busy.clone())
    }

    /// Number of currently occupied timing-wheel slots (a telemetry gauge
    /// for scale scenarios; cheap — counts set occupancy bits).
    pub fn wheel_slots(&self) -> usize {
        self.wheel.occupied_slots()
    }

    /// Pending (scheduled, not yet executed) event count.
    pub fn pending_events(&self) -> usize {
        self.wheel.len() + self.legacy_heap.len()
    }

    /// Heap bytes parked across every switch's PHV freelist (the packet
    /// arena steady-state footprint).
    pub fn arena_bytes(&self) -> u64 {
        self.switches.iter().map(|s| s.borrow().arena_bytes()).sum()
    }

    /// Top up `dst`'s PHV freelist if it has run dry by moving one parked
    /// buffer over from the richest identically shaped freelist in the
    /// fabric. Identity wire transfer migrates buffers toward traffic
    /// sinks — an exiting packet's buffer is recycled where it *exits*,
    /// not where it was injected — so a switch sourcing more traffic than
    /// it sinks slowly drains its pool and injection starts allocating
    /// again. The non-empty check is one cheap borrow on the hot path;
    /// the fabric scan runs only on a would-be pool miss.
    pub(crate) fn rebalance_pool_for(&self, dst: usize) {
        let (nf, nh) = {
            let sw = self.switches[dst].borrow();
            if sw.pool_parked() > 0 {
                return;
            }
            (sw.spec().fields.len(), sw.spec().headers.len())
        };
        let mut best: Option<(usize, usize)> = None; // (parked, index)
        for (i, handle) in self.switches.iter().enumerate() {
            if i == dst {
                continue;
            }
            let sw = handle.borrow();
            let parked = sw.pool_parked();
            if parked > 0
                && sw.spec().fields.len() == nf
                && sw.spec().headers.len() == nh
                && best.is_none_or(|(p, _)| parked > p)
            {
                best = Some((parked, i));
            }
        }
        if let Some((_, donor)) = best {
            let phv = self.switches[donor]
                .borrow_mut()
                .pool_steal()
                .expect("donor pool non-empty under the simulator's borrow");
            self.switches[dst].borrow_mut().recycle_phv(phv);
        }
    }

    /// Take the transmitted-packet log (packets that exited the fabric).
    pub fn take_tx(&mut self) -> Vec<TxPacket> {
        self.tx_log.drain(..).map(|(_, pkt)| pkt).collect()
    }

    /// Like [`take_tx`](Simulator::take_tx), keeping the index of the
    /// switch each packet exited from.
    pub fn take_tx_tagged(&mut self) -> Vec<(usize, TxPacket)> {
        self.tx_log.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::Endpoint;
    use rmt_sim::{switch_from_source, PacketDesc, SwitchConfig};
    use std::cell::RefCell;
    use std::rc::Rc;

    const FWD_ALL: &str = r#"
header_type ip_t { fields { src : 32; dst : 32; } }
header ip_t ip;
action fwd() { modify_field(intr.egress_spec, 2); }
table t { actions { fwd; } default_action : fwd(); }
control ingress { apply(t); }
"#;

    fn mk() -> Simulator {
        let clock = Clock::new();
        let sw = switch_from_source(FWD_ALL, SwitchConfig::default(), clock).unwrap();
        Simulator::new(SharedSwitch::new(sw))
    }

    /// A 2-switch line where switch 0 forwards everything out its linked
    /// port and switch 1 forwards everything out an unlinked one.
    fn mk_pair(latency_ns: Nanos) -> Simulator {
        const TO_LINK: &str = r#"
header_type ip_t { fields { src : 32; dst : 32; } }
header ip_t ip;
action fwd() { modify_field(intr.egress_spec, 5); }
table t { actions { fwd; } default_action : fwd(); }
control ingress { apply(t); }
"#;
        let clock = Clock::new();
        let a = switch_from_source(TO_LINK, SwitchConfig::default(), clock.clone()).unwrap();
        let b = switch_from_source(FWD_ALL, SwitchConfig::default(), clock).unwrap();
        let topo =
            Topology::new(2).link_with(Endpoint::new(0, 5), Endpoint::new(1, 4), latency_ns, 0);
        Simulator::fabric(vec![SharedSwitch::new(a), SharedSwitch::new(b)], topo)
    }

    #[test]
    fn events_run_in_time_order_with_fifo_ties() {
        let mut sim = mk();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (t, tag) in [(50u64, "b"), (10, "a"), (50, "c"), (99, "d")] {
            let log = log.clone();
            sim.schedule(t, move |s| log.borrow_mut().push((s.now(), tag)));
        }
        sim.run_until(100);
        assert_eq!(
            *log.borrow(),
            vec![(10, "a"), (50, "b"), (50, "c"), (99, "d")]
        );
        assert_eq!(sim.now(), 100);
    }

    #[test]
    fn events_scheduled_from_events_run() {
        let mut sim = mk();
        let hits = Rc::new(RefCell::new(0));
        let h = hits.clone();
        sim.schedule(10, move |s| {
            let h2 = h.clone();
            s.schedule(20, move |_| *h2.borrow_mut() += 1);
        });
        sim.run_until(100);
        assert_eq!(*hits.borrow(), 1);
    }

    #[test]
    fn periodic_stops_on_false() {
        let mut sim = mk();
        let count = Rc::new(RefCell::new(0));
        let c = count.clone();
        sim.schedule_periodic(0, 10, move |_| {
            *c.borrow_mut() += 1;
            *c.borrow() < 5
        });
        sim.run_until(1_000);
        assert_eq!(*count.borrow(), 5);
    }

    #[test]
    fn injected_packets_get_transmitted_and_logged() {
        let mut sim = mk();
        for i in 0..3 {
            sim.schedule(i * 1_000, move |s| {
                s.switch().borrow_mut().inject(
                    &PacketDesc::new(0)
                        .field("ip", "src", i as u128)
                        .payload(100),
                );
            });
        }
        sim.run_until(1_000_000);
        let tx = sim.take_tx();
        assert_eq!(tx.len(), 3);
        assert_eq!(sim.tx_count, 3);
        assert_eq!(sim.tx_count_on(0), 3);
        assert!(tx.iter().all(|p| p.port == 2));
        // Timestamps are monotone.
        assert!(tx.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn events_beyond_horizon_stay_queued() {
        let mut sim = mk();
        let hits = Rc::new(RefCell::new(0));
        let h = hits.clone();
        sim.schedule(500, move |_| *h.borrow_mut() += 1);
        sim.run_until(100);
        assert_eq!(*hits.borrow(), 0);
        sim.run_until(1_000);
        assert_eq!(*hits.borrow(), 1);
    }

    #[test]
    fn tx_log_cap_discards_oldest_first() {
        let mut sim = mk();
        sim.tx_log_cap = 2;
        for i in 0..4 {
            sim.schedule(i * 10_000, move |s| {
                s.switch().borrow_mut().inject(
                    &PacketDesc::new(0)
                        .field("ip", "src", i as u128)
                        .payload(100),
                );
            });
        }
        sim.run_until(1_000_000);
        // All four transmissions counted, only the two *newest* kept.
        assert_eq!(sim.tx_count, 4);
        let tx = sim.take_tx();
        assert_eq!(tx.len(), 2);
        let srcs: Vec<u64> = {
            let sw = sim.switch().borrow();
            let id = sw.spec().field_id("ip", "src").unwrap();
            tx.iter().map(|p| p.phv.get(id).as_u64()).collect()
        };
        assert_eq!(srcs, vec![2, 3], "older packets must be discarded first");
    }

    #[test]
    fn linked_ports_deliver_to_the_peer_after_the_wire_delay() {
        let mut sim = mk_pair(5_000);
        sim.schedule(0, |s| {
            s.switch_at(0)
                .borrow_mut()
                .inject(&PacketDesc::new(0).field("ip", "src", 7).payload(100));
        });
        sim.run_until(2_000_000);
        // Hop 1 (switch 0 → link) is not an end-to-end delivery...
        assert_eq!(sim.tx_count_on(0), 1);
        // ...but switch 1 received it and forwarded it out its unlinked
        // port 2.
        assert_eq!(sim.tx_count_on(1), 1);
        assert_eq!(sim.tx_count, 2);
        let tx = sim.take_tx_tagged();
        assert_eq!(tx.len(), 1, "only the fabric exit is logged");
        let (from, pkt) = &tx[0];
        assert_eq!(*from, 1);
        assert_eq!(pkt.port, 2);
        {
            let sw = sim.switch_at(1).borrow();
            let id = sw.spec().field_id("ip", "src").unwrap();
            assert_eq!(pkt.phv.get(id).as_u64(), 7, "header survived the hop");
        }
        // The second hop can only start after the 5 µs wire delay.
        assert!(pkt.time > 5_000, "delivery at {} ns", pkt.time);
    }

    fn pair_fingerprint(
        workers: usize,
        scramble: Option<u64>,
    ) -> (Vec<(usize, u64, u16)>, u64, u64, ParStats) {
        let mut sim = mk_pair(700);
        sim.set_workers(workers);
        if let Some(seed) = scramble {
            sim.scramble_assignment(seed);
        }
        for i in 0..20u64 {
            sim.schedule(i * 777, move |s| {
                s.switch_at(0).borrow_mut().inject(
                    &PacketDesc::new(0)
                        .field("ip", "src", u128::from(i))
                        .payload(64),
                );
            });
        }
        sim.run_until(3_000_000);
        let fingerprint: Vec<(usize, u64, u16)> = sim
            .take_tx_tagged()
            .iter()
            .map(|(sw, p)| (*sw, p.time, p.port))
            .collect();
        (fingerprint, sim.tx_count, sim.tx_bytes, sim.par_stats())
    }

    #[test]
    fn parallel_drain_matches_serial_exactly() {
        let (serial_fp, serial_count, serial_bytes, serial_stats) = pair_fingerprint(1, None);
        let (par_fp, par_count, par_bytes, par_stats) = pair_fingerprint(2, None);
        assert_eq!(serial_fp, par_fp);
        assert_eq!(serial_count, par_count);
        assert_eq!(serial_bytes, par_bytes);
        assert!(par_stats.parallel_drains > 0, "pool path must have run");
        assert_eq!(serial_stats.parallel_drains, 0);
        // Same total work observed regardless of execution mode.
        assert_eq!(serial_stats.work_units, par_stats.work_units);
        assert!(par_stats.critical_units <= par_stats.work_units);
    }

    #[test]
    fn scrambled_assignment_does_not_change_output() {
        let (base_fp, base_count, _, _) = pair_fingerprint(2, None);
        for seed in [1u64, 7, 42] {
            let (fp, count, _, _) = pair_fingerprint(2, Some(seed));
            assert_eq!(base_fp, fp, "seed {seed} changed the output");
            assert_eq!(base_count, count);
        }
    }

    #[test]
    fn worker_count_clamps_to_switch_count() {
        let mut sim = mk();
        sim.set_workers(8);
        assert_eq!(sim.workers(), 1, "single switch cannot shard");
        let mut pair = mk_pair(700);
        pair.set_workers(64);
        assert_eq!(pair.workers(), 2);
        pair.set_workers(0);
        assert_eq!(pair.workers(), 1);
    }

    #[test]
    fn fabric_runs_are_deterministic() {
        let run = || {
            let mut sim = mk_pair(700);
            for i in 0..20u64 {
                sim.schedule(i * 777, move |s| {
                    s.switch_at(0).borrow_mut().inject(
                        &PacketDesc::new(0)
                            .field("ip", "src", u128::from(i))
                            .payload(64),
                    );
                });
            }
            sim.run_until(3_000_000);
            let fingerprint: Vec<(usize, u64, u16)> = sim
                .take_tx_tagged()
                .iter()
                .map(|(sw, p)| (*sw, p.time, p.port))
                .collect();
            (fingerprint, sim.tx_count, sim.tx_bytes)
        };
        assert_eq!(run(), run());
    }

    /// A periodic chain whose next nominal firing would pass the u64
    /// horizon must end instead of clamping — a clamped reschedule would
    /// fire at the same instant forever.
    #[test]
    fn periodic_chain_ends_at_u64_horizon() {
        let mut sim = mk();
        let count = Rc::new(RefCell::new(0u32));
        let c = count.clone();
        sim.schedule_periodic(u64::MAX - 10, 8, move |_| {
            *c.borrow_mut() += 1;
            true
        });
        // Fires at MAX-10 and MAX-2; MAX-2 + 8 overflows, ending the
        // chain. If the add wrapped this loop would never terminate.
        sim.run_until(u64::MAX);
        assert_eq!(*count.borrow(), 2);
        assert_eq!(sim.now(), u64::MAX);
    }

    /// A zero interval degrades to 1 ns instead of rescheduling at the
    /// same instant, so the run still terminates.
    #[test]
    fn periodic_zero_interval_still_advances_time() {
        let mut sim = mk();
        let count = Rc::new(RefCell::new(0u32));
        let c = count.clone();
        sim.schedule_periodic(5, 0, move |_| {
            *c.borrow_mut() += 1;
            true
        });
        sim.run_until(10);
        // Fires at 5, 6, ..., 10.
        assert_eq!(*count.borrow(), 6);
    }

    /// Wire delay near the horizon saturates: the arrival lands at
    /// u64::MAX rather than wrapping into the packet's past.
    #[test]
    fn wire_delay_saturates_at_u64_horizon() {
        let mut sim = mk_pair(u64::MAX);
        sim.schedule(1_000, |s| {
            s.switch_at(0)
                .borrow_mut()
                .inject(&PacketDesc::new(0).field("ip", "src", 1).payload(64));
        });
        sim.run_until(u64::MAX);
        let tx = sim.take_tx_tagged();
        assert_eq!(tx.len(), 1, "packet must still arrive at the horizon");
        let (sw, pkt) = &tx[0];
        assert_eq!(*sw, 1);
        assert!(pkt.time >= 1_000, "arrival wrapped into the past");
        assert_eq!(sim.now(), u64::MAX);
    }

    /// `run_for` with a duration that would pass the horizon clamps to
    /// u64::MAX instead of wrapping to an earlier target.
    #[test]
    fn run_for_saturates_at_u64_horizon() {
        let mut sim = mk();
        sim.run_until(1_000);
        sim.run_for(u64::MAX);
        assert_eq!(sim.now(), u64::MAX);
    }
}
