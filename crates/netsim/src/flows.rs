//! Traffic sources: TCP-like AIMD flows, constant-bit-rate UDP senders, and
//! heartbeat generators.
//!
//! The TCP model is deliberately simple — rate-based AIMD with one
//! multiplicative decrease per RTT on loss — which captures what the
//! paper's experiments depend on: flows back off under drops and recover on
//! the RTT timescale (Fig. 15's ~500 µs return to steady state).

use crate::sim::Simulator;
use mantis_telemetry::Scope;
use rmt_sim::{Nanos, PacketDesc, PortId};
use std::cell::RefCell;
use std::rc::Rc;

/// Header fields to stamp on every generated packet:
/// `(instance, field, value)`.
pub type FieldTemplate = Vec<(String, String, u128)>;

/// Configuration of a TCP-like AIMD flow.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    pub ingress_port: PortId,
    pub fields: FieldTemplate,
    pub payload_bytes: u32,
    pub initial_rate_bps: u64,
    pub min_rate_bps: u64,
    pub max_rate_bps: u64,
    /// Additive increase per RTT.
    pub increase_bps: u64,
    pub rtt_ns: Nanos,
    pub start_ns: Nanos,
    /// Stop sending at this time (None = run forever).
    pub stop_ns: Option<Nanos>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            ingress_port: 0,
            fields: Vec::new(),
            payload_bytes: 1_400,
            initial_rate_bps: 100_000_000,
            min_rate_bps: 1_000_000,
            max_rate_bps: 25_000_000_000,
            increase_bps: 20_000_000,
            rtt_ns: 100_000, // 100 µs data-center RTT
            start_ns: 0,
            stop_ns: None,
        }
    }
}

/// Live state of a TCP flow.
#[derive(Debug)]
pub struct TcpState {
    /// Simulator-assigned id, used in telemetry metric names.
    pub flow_id: u64,
    /// Fabric switch this flow injects into (0 on a single-switch testbed).
    pub switch: usize,
    pub cfg: TcpConfig,
    pub rate_bps: u64,
    pub sent_pkts: u64,
    pub accepted_pkts: u64,
    pub accepted_bytes: u64,
    pub lost_pkts: u64,
    loss_this_rtt: bool,
    /// External back-off request (e.g. ECN feedback computed by an
    /// experiment harness): rate is multiplied by `f` at the next RTT tick.
    pub backoff_factor: Option<f64>,
    pub stopped: bool,
    /// Nominal time of the next send (keeps the rate when the shared clock
    /// jumps ahead during control-plane work).
    next_send_ns: Nanos,
    /// Send-chain generation: bumped when the AIMD tick reschedules an
    /// overslept send loop, invalidating the stale pending event.
    send_gen: u64,
}

impl TcpState {
    /// Interval between packets at the current rate.
    fn send_interval(&self) -> Nanos {
        let bits = u64::from(self.cfg.payload_bytes) * 8;
        (bits * 1_000_000_000 / self.rate_bps.max(1)).max(1)
    }
}

/// Spawn a TCP flow into switch 0; returns a handle to its state.
pub fn spawn_tcp(sim: &mut Simulator, cfg: TcpConfig) -> Rc<RefCell<TcpState>> {
    spawn_tcp_on(sim, 0, cfg)
}

/// Spawn a TCP flow injecting into fabric switch `switch`.
pub fn spawn_tcp_on(sim: &mut Simulator, switch: usize, cfg: TcpConfig) -> Rc<RefCell<TcpState>> {
    let flow_id = sim.alloc_flow_id();
    let state = Rc::new(RefCell::new(TcpState {
        flow_id,
        switch,
        rate_bps: cfg.initial_rate_bps,
        next_send_ns: cfg.start_ns,
        send_gen: 0,
        cfg,
        sent_pkts: 0,
        accepted_pkts: 0,
        accepted_bytes: 0,
        lost_pkts: 0,
        loss_this_rtt: false,
        backoff_factor: None,
        stopped: false,
    }));

    // Send loop.
    {
        let state = state.clone();
        let start = state.borrow().cfg.start_ns;
        sim.schedule(start, move |s| tcp_send(s, state, 0));
    }
    // AIMD tick.
    {
        let state = state.clone();
        let (start, rtt) = {
            let st = state.borrow();
            (st.cfg.start_ns + st.cfg.rtt_ns, st.cfg.rtt_ns)
        };
        sim.schedule_periodic(start, rtt, move |s| {
            let wake = {
                let mut st = state.borrow_mut();
                if st.stopped {
                    return false;
                }
                if let Some(f) = st.backoff_factor.take() {
                    st.rate_bps = ((st.rate_bps as f64 * f) as u64).max(st.cfg.min_rate_bps);
                } else if st.loss_this_rtt {
                    st.rate_bps = (st.rate_bps / 2).max(st.cfg.min_rate_bps);
                } else {
                    st.rate_bps = (st.rate_bps + st.cfg.increase_bps).min(st.cfg.max_rate_bps);
                }
                st.loss_this_rtt = false;
                {
                    let tel = s.telemetry();
                    if tel.is_enabled() {
                        tel.gauge_set(
                            &format!("netsim.flow{}_rate_bps", st.flow_id),
                            i128::from(st.rate_bps),
                        );
                    }
                }
                // If the send loop overslept at a previously tiny rate,
                // reschedule it at the new rate's pace.
                let interval = st.send_interval();
                if st.next_send_ns > s.now() + interval {
                    st.send_gen += 1;
                    st.next_send_ns = s.now() + interval;
                    Some((st.next_send_ns, st.send_gen))
                } else {
                    None
                }
            };
            if let Some((at, gen)) = wake {
                let state = state.clone();
                s.schedule(at, move |s2| tcp_send(s2, state, gen));
            }
            true
        });
    }
    state
}

fn tcp_send(sim: &mut Simulator, state: Rc<RefCell<TcpState>>, gen: u64) {
    let (desc, interval, done, switch) = {
        let st = state.borrow();
        if gen != st.send_gen {
            return; // superseded by a tick-rescheduled chain
        }
        if st.stopped || st.cfg.stop_ns.is_some_and(|t| sim.now() >= t) {
            (None, 0, true, st.switch)
        } else {
            let mut d = PacketDesc::new(st.cfg.ingress_port).payload(st.cfg.payload_bytes);
            for (i, f, v) in &st.cfg.fields {
                d = d.field(i, f, *v);
            }
            (Some(d), st.send_interval(), false, st.switch)
        }
    };
    if done {
        state.borrow_mut().stopped = true;
        return;
    }
    let desc = desc.unwrap();
    let accepted = sim.switch_at(switch).borrow_mut().inject(&desc);
    {
        let mut st = state.borrow_mut();
        st.sent_pkts += 1;
        if accepted {
            st.accepted_pkts += 1;
            st.accepted_bytes += u64::from(st.cfg.payload_bytes);
        } else {
            st.lost_pkts += 1;
            st.loss_this_rtt = true;
            let tel = sim.telemetry();
            if tel.is_enabled() {
                tel.instant(
                    Scope::NetSim,
                    "tcp_drop",
                    sim.now(),
                    &[("flow", i128::from(st.flow_id))],
                );
            }
        }
    }
    let next = {
        let mut st = state.borrow_mut();
        st.next_send_ns += interval;
        st.next_send_ns
    };
    sim.schedule(next, move |s| tcp_send(s, state, gen));
}

/// Ingress ports spread round-robin across the switch's hardware pipes:
/// entry `i` is the `i / num_pipes`-th port of pipe `i % num_pipes`.
/// On a single-pipe switch this degenerates to `0, 1, 2, ...`. Ports past
/// the end of a pipe's contiguous range wrap back into pipe order, so the
/// result always holds `n` valid ports as long as the switch has any.
pub fn ports_across_pipes(sim: &Simulator, n: usize) -> Vec<PortId> {
    let sw = sim.switch().borrow();
    let num_ports = sw.config().num_ports;
    let num_pipes = sw.num_pipes();
    let ports_per_pipe = num_ports.div_ceil(num_pipes);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let pipe = (i as u16) % num_pipes;
        let offset = (i as u16) / num_pipes;
        let port = pipe * ports_per_pipe + offset % ports_per_pipe;
        out.push(port.min(num_ports.saturating_sub(1)));
    }
    out
}

/// Spawn `n` TCP flows from `base`, with ingress ports spread across the
/// switch's hardware pipes via [`ports_across_pipes`] so a multi-pipe run
/// exercises every pipe's packet path concurrently.
pub fn spawn_tcp_across_pipes(
    sim: &mut Simulator,
    base: TcpConfig,
    n: usize,
) -> Vec<Rc<RefCell<TcpState>>> {
    let ports = ports_across_pipes(sim, n);
    ports
        .into_iter()
        .map(|port| {
            let mut cfg = base.clone();
            cfg.ingress_port = port;
            spawn_tcp(sim, cfg)
        })
        .collect()
}

/// Configuration of a constant-bit-rate UDP sender (the Fig. 15 attacker).
#[derive(Clone, Debug)]
pub struct UdpConfig {
    pub ingress_port: PortId,
    pub fields: FieldTemplate,
    pub payload_bytes: u32,
    pub rate_bps: u64,
    pub start_ns: Nanos,
    pub stop_ns: Option<Nanos>,
}

/// Live state of a UDP sender.
#[derive(Debug, Default)]
pub struct UdpState {
    pub sent_pkts: u64,
    pub accepted_pkts: u64,
    pub dropped_pkts: u64,
    pub stopped: bool,
}

/// Spawn a CBR UDP sender into switch 0.
pub fn spawn_udp(sim: &mut Simulator, cfg: UdpConfig) -> Rc<RefCell<UdpState>> {
    spawn_udp_on(sim, 0, cfg)
}

/// Spawn a CBR UDP sender injecting into fabric switch `switch`.
pub fn spawn_udp_on(sim: &mut Simulator, switch: usize, cfg: UdpConfig) -> Rc<RefCell<UdpState>> {
    let state = Rc::new(RefCell::new(UdpState::default()));
    let interval = (u64::from(cfg.payload_bytes) * 8 * 1_000_000_000 / cfg.rate_bps.max(1)).max(1);
    {
        let state = state.clone();
        sim.schedule_periodic(cfg.start_ns, interval, move |s| {
            if state.borrow().stopped || cfg.stop_ns.is_some_and(|t| s.now() >= t) {
                state.borrow_mut().stopped = true;
                return false;
            }
            let mut d = PacketDesc::new(cfg.ingress_port).payload(cfg.payload_bytes);
            for (i, f, v) in &cfg.fields {
                d = d.field(i, f, *v);
            }
            let ok = s.switch_at(switch).borrow_mut().inject(&d);
            let mut st = state.borrow_mut();
            st.sent_pkts += 1;
            if ok {
                st.accepted_pkts += 1;
            } else {
                st.dropped_pkts += 1;
            }
            true
        });
    }
    state
}

/// Heartbeat generator for the gray-failure use case (§8.3.2): one
/// high-priority heartbeat every `interval_ns` into `port`. When the port
/// is administratively down (simulating a link failure), the switch drops
/// the heartbeats and the data plane stops counting them.
#[derive(Clone, Debug)]
pub struct HeartbeatConfig {
    pub port: PortId,
    pub fields: FieldTemplate,
    pub interval_ns: Nanos,
    pub start_ns: Nanos,
    /// Stop generating at this virtual time (`None` = run forever).
    /// Workloads that must fully quiesce — e.g. the chaos soak's counter
    /// conservation check, which needs every injected packet to be either
    /// transmitted or attributed to a drop counter — stop the heartbeats
    /// before the horizon and let the queues drain.
    pub stop_ns: Option<Nanos>,
}

pub fn spawn_heartbeats(sim: &mut Simulator, cfg: HeartbeatConfig) {
    spawn_heartbeats_on(sim, 0, cfg);
}

/// Heartbeat generator injecting into fabric switch `switch`.
pub fn spawn_heartbeats_on(sim: &mut Simulator, switch: usize, cfg: HeartbeatConfig) {
    sim.schedule_periodic(cfg.start_ns, cfg.interval_ns, move |s| {
        if cfg.stop_ns.is_some_and(|t| s.now() >= t) {
            return false;
        }
        let mut d = PacketDesc::new(cfg.port).payload(0);
        for (i, f, v) in &cfg.fields {
            d = d.field(i, f, *v);
        }
        s.switch_at(switch).borrow_mut().inject(&d);
        true
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_sim::{switch_from_source, Clock, SharedSwitch, Switch, SwitchConfig};

    const PROG: &str = r#"
header_type ip_t { fields { src : 32; dst : 32; } }
header ip_t ip;
register hb_count { width : 64; instance_count : 32; }
action fwd() { modify_field(intr.egress_spec, 2); }
action count_hb() { count(hb_count, intr.ingress_port); }
table route { actions { fwd; } default_action : fwd(); }
table hb { actions { count_hb; } default_action : count_hb(); }
control ingress { apply(hb); apply(route); }
"#;

    fn mk(queue_bytes: u32) -> Simulator {
        let clock = Clock::new();
        let sw: Switch = switch_from_source(
            PROG,
            SwitchConfig {
                queue_capacity_bytes: queue_bytes,
                ..Default::default()
            },
            clock,
        )
        .unwrap();
        Simulator::new(SharedSwitch::new(sw))
    }

    fn ip_fields(src: u128) -> FieldTemplate {
        vec![
            ("ip".into(), "src".into(), src),
            ("ip".into(), "dst".into(), 1),
        ]
    }

    #[test]
    fn tcp_flow_sends_at_configured_rate() {
        let mut sim = mk(1 << 20);
        let flow = spawn_tcp(
            &mut sim,
            TcpConfig {
                fields: ip_fields(10),
                initial_rate_bps: 1_000_000_000, // 1 Gbps
                increase_bps: 0,
                payload_bytes: 1_250, // 10 µs per packet at 1 Gbps
                ..Default::default()
            },
        );
        sim.run_until(1_000_000); // 1 ms → ~100 packets
        let st = flow.borrow();
        assert!(
            (90..=110).contains(&st.sent_pkts),
            "sent {} packets",
            st.sent_pkts
        );
        assert_eq!(st.lost_pkts, 0);
    }

    #[test]
    fn tcp_flow_backs_off_on_loss_and_recovers() {
        // Tiny queue with a rate far above the 25 Gbps drain: must drop.
        let mut sim = mk(3_000);
        let flow = spawn_tcp(
            &mut sim,
            TcpConfig {
                fields: ip_fields(10),
                initial_rate_bps: 50_000_000_000,
                max_rate_bps: 50_000_000_000,
                increase_bps: 0,
                ..Default::default()
            },
        );
        sim.run_until(2_000_000);
        let st = flow.borrow();
        assert!(st.lost_pkts > 0, "expected drops");
        assert!(
            st.rate_bps < 50_000_000_000,
            "rate did not back off: {}",
            st.rate_bps
        );
    }

    #[test]
    fn tcp_additive_increase_without_loss() {
        let mut sim = mk(1 << 20);
        let flow = spawn_tcp(
            &mut sim,
            TcpConfig {
                fields: ip_fields(10),
                initial_rate_bps: 100_000_000,
                increase_bps: 50_000_000,
                rtt_ns: 100_000,
                ..Default::default()
            },
        );
        sim.run_until(1_000_000); // 10 RTTs
        let st = flow.borrow();
        assert!(
            st.rate_bps >= 100_000_000 + 8 * 50_000_000,
            "rate {}",
            st.rate_bps
        );
    }

    #[test]
    fn external_backoff_applies_once() {
        let mut sim = mk(1 << 20);
        let flow = spawn_tcp(
            &mut sim,
            TcpConfig {
                fields: ip_fields(10),
                initial_rate_bps: 1_000_000_000,
                increase_bps: 0,
                rtt_ns: 100_000,
                ..Default::default()
            },
        );
        flow.borrow_mut().backoff_factor = Some(0.5);
        sim.run_until(150_000); // one RTT tick
        assert_eq!(flow.borrow().rate_bps, 500_000_000);
        sim.run_until(450_000);
        assert_eq!(flow.borrow().rate_bps, 500_000_000);
    }

    #[test]
    fn udp_sender_ignores_losses() {
        let mut sim = mk(3_000);
        let udp = spawn_udp(
            &mut sim,
            UdpConfig {
                ingress_port: 0,
                fields: ip_fields(66),
                payload_bytes: 1_250,
                rate_bps: 50_000_000_000,
                start_ns: 0,
                stop_ns: None,
            },
        );
        sim.run_until(1_000_000);
        let st = udp.borrow();
        assert!(st.dropped_pkts > 0);
        // Rate never changes: sent count matches the configured rate
        // (1250 B @ 50 Gbps = 200 ns/pkt → ~5000 packets).
        assert!(st.sent_pkts > 4_000, "sent {}", st.sent_pkts);
    }

    #[test]
    fn flow_stops_at_stop_time() {
        let mut sim = mk(1 << 20);
        let flow = spawn_tcp(
            &mut sim,
            TcpConfig {
                fields: ip_fields(10),
                initial_rate_bps: 1_000_000_000,
                payload_bytes: 1_250,
                stop_ns: Some(500_000),
                ..Default::default()
            },
        );
        sim.run_until(2_000_000);
        let st = flow.borrow();
        assert!(st.stopped);
        assert!((40..=60).contains(&st.sent_pkts), "sent {}", st.sent_pkts);
    }

    #[test]
    fn ports_spread_round_robin_across_pipes() {
        let clock = Clock::new();
        let sw: Switch = switch_from_source(
            PROG,
            SwitchConfig {
                num_ports: 8,
                num_pipes: 4,
                ..Default::default()
            },
            clock,
        )
        .unwrap();
        let sim = Simulator::new(SharedSwitch::new(sw));
        let ports = ports_across_pipes(&sim, 8);
        let pipes: Vec<u16> = {
            let sw = sim.switch().borrow();
            ports.iter().map(|p| sw.pipe_of_port(*p)).collect()
        };
        // 4 pipes, 2 ports each: the first four flows land on distinct
        // pipes, then the assignment wraps onto each pipe's second port.
        assert_eq!(pipes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(ports, vec![0, 2, 4, 6, 1, 3, 5, 7]);
    }

    #[test]
    fn heartbeats_counted_in_dataplane_until_port_fails() {
        let mut sim = mk(1 << 20);
        spawn_heartbeats(
            &mut sim,
            HeartbeatConfig {
                port: 7,
                fields: ip_fields(0),
                interval_ns: 1_000, // Ts = 1 µs, as in the paper
                start_ns: 0,
                stop_ns: None,
            },
        );
        sim.run_until(100_000);
        let count_at = |sim: &Simulator| {
            let sw = sim.switch().borrow();
            let r = sw.register_id("hb_count").unwrap();
            sw.register_read_range(r, 7, 7)[0].as_u64()
        };
        let c1 = count_at(&sim);
        assert!((95..=105).contains(&c1), "heartbeats {c1}");
        // Fail the link: counting stops.
        sim.switch().borrow_mut().port_set_up(7, false).unwrap();
        sim.run_until(200_000);
        let c2 = count_at(&sim);
        assert_eq!(c1, c2);
    }
}
