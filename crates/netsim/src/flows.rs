//! Traffic sources: TCP-like AIMD flows, constant-bit-rate UDP senders,
//! heartbeat generators, and the bulk "scale" flow engine behind the
//! unscaled Fig. 14 reproduction.
//!
//! The TCP model is deliberately simple — rate-based AIMD with one
//! multiplicative decrease per RTT on loss — which captures what the
//! paper's experiments depend on: flows back off under drops and recover on
//! the RTT timescale (Fig. 15's ~500 µs return to steady state).
//!
//! All sources run on the typed event hot path: a spawn compiles the
//! flow's [`FieldTemplate`] into an interned
//! [`PacketTemplate`](rmt_sim::PacketTemplate) once, registers the flow in
//! the simulator's [`FlowRegistry`], and schedules a typed
//! [`EventKind`](crate::sim) variant that carries only the registry index.
//! Per-packet work is then a freelist PHV plus id-indexed field writes —
//! no allocation, no name lookups, no boxed closures.

use crate::sim::{EventKind, Simulator};
use mantis_telemetry::Scope;
use rmt_sim::{Nanos, PacketDesc, PacketTemplate, PortId};
use std::cell::RefCell;
use std::rc::Rc;

/// Header fields to stamp on every generated packet:
/// `(instance, field, value)`.
pub type FieldTemplate = Vec<(String, String, u128)>;

/// Typed per-flow state owned by the [`Simulator`], indexed by the ids
/// carried in flow events. One registry per simulator; spawns append,
/// nothing is ever removed (flow ids stay stable for a run's lifetime).
#[derive(Default)]
pub(crate) struct FlowRegistry {
    pub tcp: Vec<Rc<RefCell<TcpState>>>,
    pub udp: Vec<UdpFlow>,
    pub hb: Vec<HbFlow>,
    /// Scale-flow shards, one per injection switch. `None` only while the
    /// shard is checked out by its own wake event.
    pub scale: Vec<Option<FlowShard>>,
}

/// Configuration of a TCP-like AIMD flow.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    pub ingress_port: PortId,
    pub fields: FieldTemplate,
    pub payload_bytes: u32,
    pub initial_rate_bps: u64,
    pub min_rate_bps: u64,
    pub max_rate_bps: u64,
    /// Additive increase per RTT.
    pub increase_bps: u64,
    pub rtt_ns: Nanos,
    pub start_ns: Nanos,
    /// Stop sending at this time (None = run forever).
    pub stop_ns: Option<Nanos>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            ingress_port: 0,
            fields: Vec::new(),
            payload_bytes: 1_400,
            initial_rate_bps: 100_000_000,
            min_rate_bps: 1_000_000,
            max_rate_bps: 25_000_000_000,
            increase_bps: 20_000_000,
            rtt_ns: 100_000, // 100 µs data-center RTT
            start_ns: 0,
            stop_ns: None,
        }
    }
}

/// Live state of a TCP flow.
#[derive(Debug)]
pub struct TcpState {
    /// Simulator-assigned id, used in telemetry metric names.
    pub flow_id: u64,
    /// Fabric switch this flow injects into (0 on a single-switch testbed).
    pub switch: usize,
    pub cfg: TcpConfig,
    pub rate_bps: u64,
    pub sent_pkts: u64,
    pub accepted_pkts: u64,
    pub accepted_bytes: u64,
    pub lost_pkts: u64,
    loss_this_rtt: bool,
    /// External back-off request (e.g. ECN feedback computed by an
    /// experiment harness): rate is multiplied by `f` at the next RTT tick.
    pub backoff_factor: Option<f64>,
    pub stopped: bool,
    /// Nominal time of the next send (keeps the rate when the shared clock
    /// jumps ahead during control-plane work).
    next_send_ns: Nanos,
    /// Send-chain generation: bumped when the AIMD tick reschedules an
    /// overslept send loop, invalidating the stale pending event.
    send_gen: u64,
    /// `cfg.fields` compiled against the target switch's spec at spawn.
    tmpl: PacketTemplate,
}

impl TcpState {
    /// Interval between packets at the current rate.
    fn send_interval(&self) -> Nanos {
        let bits = u64::from(self.cfg.payload_bytes) * 8;
        (bits * 1_000_000_000 / self.rate_bps.max(1)).max(1)
    }
}

/// Compile `(port, fields, payload)` against the spec of fabric switch
/// `switch`, panicking on unknown fields exactly as the historical
/// per-packet [`PacketDesc::build`] did.
fn compile_template(
    sim: &Simulator,
    switch: usize,
    port: PortId,
    fields: &FieldTemplate,
    payload_bytes: u32,
) -> PacketTemplate {
    let mut d = PacketDesc::new(port).payload(payload_bytes);
    for (i, f, v) in fields {
        d = d.field(i, f, *v);
    }
    let sw = sim.switch_at(switch).borrow();
    PacketTemplate::compile(&d, sw.spec()).unwrap_or_else(|e| panic!("{e}"))
}

/// Spawn a TCP flow into switch 0; returns a handle to its state.
pub fn spawn_tcp(sim: &mut Simulator, cfg: TcpConfig) -> Rc<RefCell<TcpState>> {
    spawn_tcp_on(sim, 0, cfg)
}

/// Spawn a TCP flow injecting into fabric switch `switch`.
pub fn spawn_tcp_on(sim: &mut Simulator, switch: usize, cfg: TcpConfig) -> Rc<RefCell<TcpState>> {
    let flow_id = sim.alloc_flow_id();
    let tmpl = compile_template(
        sim,
        switch,
        cfg.ingress_port,
        &cfg.fields,
        cfg.payload_bytes,
    );
    let start = cfg.start_ns;
    let rtt = cfg.rtt_ns;
    let state = Rc::new(RefCell::new(TcpState {
        flow_id,
        switch,
        rate_bps: cfg.initial_rate_bps,
        next_send_ns: start,
        send_gen: 0,
        cfg,
        sent_pkts: 0,
        accepted_pkts: 0,
        accepted_bytes: 0,
        lost_pkts: 0,
        loss_this_rtt: false,
        backoff_factor: None,
        stopped: false,
        tmpl,
    }));
    let flow = u32::try_from(sim.flows.tcp.len()).expect("tcp flow count fits u32");
    sim.flows.tcp.push(state.clone());
    // Send loop, then the AIMD tick — same schedule order as the
    // historical closure pair, so event seqs (and with them every
    // same-instant tie-break) are preserved.
    sim.schedule_kind(start, EventKind::TcpSend { flow, gen: 0 });
    let tick = start.saturating_add(rtt);
    sim.schedule_kind(
        tick,
        EventKind::TcpTick {
            flow,
            nominal: tick,
        },
    );
    state
}

/// One TCP packet send (the `EventKind::TcpSend` handler).
pub(crate) fn tcp_send_event(sim: &mut Simulator, flow: u32, gen: u64) {
    let state = sim.flows.tcp[flow as usize].clone();
    let switch = {
        let st = state.borrow();
        if gen != st.send_gen {
            return; // superseded by a tick-rescheduled chain
        }
        if st.stopped || st.cfg.stop_ns.is_some_and(|t| sim.now() >= t) {
            drop(st);
            state.borrow_mut().stopped = true;
            return;
        }
        st.switch
    };
    sim.mark_busy(switch);
    let accepted = {
        let st = state.borrow();
        sim.switch_at(switch).borrow_mut().inject_template(&st.tmpl)
    };
    let next = {
        let mut st = state.borrow_mut();
        st.sent_pkts += 1;
        if accepted {
            st.accepted_pkts += 1;
            st.accepted_bytes += u64::from(st.cfg.payload_bytes);
        } else {
            st.lost_pkts += 1;
            st.loss_this_rtt = true;
            let tel = sim.telemetry();
            if tel.is_enabled() {
                tel.instant(
                    Scope::NetSim,
                    "tcp_drop",
                    sim.now(),
                    &[("flow", i128::from(st.flow_id))],
                );
            }
        }
        // A nominal send past the u64 horizon ends the chain (a clamped
        // reschedule would fire at the same instant forever).
        let interval = st.send_interval();
        let Some(next) = st.next_send_ns.checked_add(interval) else {
            st.stopped = true;
            return;
        };
        st.next_send_ns = next;
        next
    };
    sim.schedule_kind(next, EventKind::TcpSend { flow, gen });
}

/// One AIMD rate tick (the `EventKind::TcpTick` handler).
pub(crate) fn tcp_tick_event(sim: &mut Simulator, flow: u32, nominal: Nanos) {
    let state = sim.flows.tcp[flow as usize].clone();
    let (wake, rtt) = {
        let mut st = state.borrow_mut();
        if st.stopped {
            return;
        }
        if let Some(f) = st.backoff_factor.take() {
            st.rate_bps = ((st.rate_bps as f64 * f) as u64).max(st.cfg.min_rate_bps);
        } else if st.loss_this_rtt {
            st.rate_bps = (st.rate_bps / 2).max(st.cfg.min_rate_bps);
        } else {
            st.rate_bps = (st.rate_bps + st.cfg.increase_bps).min(st.cfg.max_rate_bps);
        }
        st.loss_this_rtt = false;
        {
            let tel = sim.telemetry();
            if tel.is_enabled() {
                tel.gauge_set(
                    &format!("netsim.flow{}_rate_bps", st.flow_id),
                    i128::from(st.rate_bps),
                );
            }
        }
        // If the send loop overslept at a previously tiny rate,
        // reschedule it at the new rate's pace.
        let interval = st.send_interval();
        let wake = if st.next_send_ns > sim.now().saturating_add(interval) {
            st.send_gen += 1;
            st.next_send_ns = sim.now().saturating_add(interval);
            Some((st.next_send_ns, st.send_gen))
        } else {
            None
        };
        (wake, st.cfg.rtt_ns)
    };
    if let Some((at, gen)) = wake {
        sim.schedule_kind(at, EventKind::TcpSend { flow, gen });
    }
    let Some(next) = nominal.checked_add(rtt.max(1)) else {
        return;
    };
    sim.schedule_kind(
        next,
        EventKind::TcpTick {
            flow,
            nominal: next,
        },
    );
}

/// Ingress ports spread round-robin across the switch's hardware pipes:
/// entry `i` is the `i / num_pipes`-th port of pipe `i % num_pipes`.
/// On a single-pipe switch this degenerates to `0, 1, 2, ...`. Ports past
/// the end of a pipe's contiguous range wrap back into pipe order, so the
/// result always holds `n` valid ports as long as the switch has any.
pub fn ports_across_pipes(sim: &Simulator, n: usize) -> Vec<PortId> {
    let sw = sim.switch().borrow();
    let num_ports = sw.config().num_ports;
    let num_pipes = sw.num_pipes();
    let ports_per_pipe = num_ports.div_ceil(num_pipes);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let pipe = (i as u16) % num_pipes;
        let offset = (i as u16) / num_pipes;
        let port = pipe * ports_per_pipe + offset % ports_per_pipe;
        out.push(port.min(num_ports.saturating_sub(1)));
    }
    out
}

/// Spawn `n` TCP flows from `base`, with ingress ports spread across the
/// switch's hardware pipes via [`ports_across_pipes`] so a multi-pipe run
/// exercises every pipe's packet path concurrently.
pub fn spawn_tcp_across_pipes(
    sim: &mut Simulator,
    base: TcpConfig,
    n: usize,
) -> Vec<Rc<RefCell<TcpState>>> {
    let ports = ports_across_pipes(sim, n);
    ports
        .into_iter()
        .map(|port| {
            let mut cfg = base.clone();
            cfg.ingress_port = port;
            spawn_tcp(sim, cfg)
        })
        .collect()
}

/// Configuration of a constant-bit-rate UDP sender (the Fig. 15 attacker).
#[derive(Clone, Debug)]
pub struct UdpConfig {
    pub ingress_port: PortId,
    pub fields: FieldTemplate,
    pub payload_bytes: u32,
    pub rate_bps: u64,
    pub start_ns: Nanos,
    pub stop_ns: Option<Nanos>,
}

/// Live state of a UDP sender.
#[derive(Debug, Default)]
pub struct UdpState {
    pub sent_pkts: u64,
    pub accepted_pkts: u64,
    pub dropped_pkts: u64,
    pub stopped: bool,
}

/// Registry entry for a CBR UDP sender.
pub(crate) struct UdpFlow {
    switch: usize,
    stop_ns: Option<Nanos>,
    interval: Nanos,
    tmpl: PacketTemplate,
    state: Rc<RefCell<UdpState>>,
}

/// Spawn a CBR UDP sender into switch 0.
pub fn spawn_udp(sim: &mut Simulator, cfg: UdpConfig) -> Rc<RefCell<UdpState>> {
    spawn_udp_on(sim, 0, cfg)
}

/// Spawn a CBR UDP sender injecting into fabric switch `switch`.
pub fn spawn_udp_on(sim: &mut Simulator, switch: usize, cfg: UdpConfig) -> Rc<RefCell<UdpState>> {
    let state = Rc::new(RefCell::new(UdpState::default()));
    let interval = (u64::from(cfg.payload_bytes) * 8 * 1_000_000_000 / cfg.rate_bps.max(1)).max(1);
    let tmpl = compile_template(
        sim,
        switch,
        cfg.ingress_port,
        &cfg.fields,
        cfg.payload_bytes,
    );
    let flow = u32::try_from(sim.flows.udp.len()).expect("udp flow count fits u32");
    sim.flows.udp.push(UdpFlow {
        switch,
        stop_ns: cfg.stop_ns,
        interval,
        tmpl,
        state: state.clone(),
    });
    sim.schedule_kind(
        cfg.start_ns,
        EventKind::UdpSend {
            flow,
            nominal: cfg.start_ns,
        },
    );
    state
}

/// One UDP packet send (the `EventKind::UdpSend` handler).
pub(crate) fn udp_send_event(sim: &mut Simulator, flow: u32, nominal: Nanos) {
    let i = flow as usize;
    let (switch, stop_ns, interval) = {
        let f = &sim.flows.udp[i];
        (f.switch, f.stop_ns, f.interval)
    };
    let state = sim.flows.udp[i].state.clone();
    if state.borrow().stopped || stop_ns.is_some_and(|t| sim.now() >= t) {
        state.borrow_mut().stopped = true;
        return;
    }
    sim.mark_busy(switch);
    let ok = sim
        .switch_at(switch)
        .borrow_mut()
        .inject_template(&sim.flows.udp[i].tmpl);
    {
        let mut st = state.borrow_mut();
        st.sent_pkts += 1;
        if ok {
            st.accepted_pkts += 1;
        } else {
            st.dropped_pkts += 1;
        }
    }
    let Some(next) = nominal.checked_add(interval.max(1)) else {
        return;
    };
    sim.schedule_kind(
        next,
        EventKind::UdpSend {
            flow,
            nominal: next,
        },
    );
}

/// Heartbeat generator for the gray-failure use case (§8.3.2): one
/// high-priority heartbeat every `interval_ns` into `port`. When the port
/// is administratively down (simulating a link failure), the switch drops
/// the heartbeats and the data plane stops counting them.
#[derive(Clone, Debug)]
pub struct HeartbeatConfig {
    pub port: PortId,
    pub fields: FieldTemplate,
    pub interval_ns: Nanos,
    pub start_ns: Nanos,
    /// Stop generating at this virtual time (`None` = run forever).
    /// Workloads that must fully quiesce — e.g. the chaos soak's counter
    /// conservation check, which needs every injected packet to be either
    /// transmitted or attributed to a drop counter — stop the heartbeats
    /// before the horizon and let the queues drain.
    pub stop_ns: Option<Nanos>,
}

/// Registry entry for a heartbeat source.
pub(crate) struct HbFlow {
    switch: usize,
    stop_ns: Option<Nanos>,
    interval: Nanos,
    tmpl: PacketTemplate,
}

pub fn spawn_heartbeats(sim: &mut Simulator, cfg: HeartbeatConfig) {
    spawn_heartbeats_on(sim, 0, cfg);
}

/// Heartbeat generator injecting into fabric switch `switch`.
pub fn spawn_heartbeats_on(sim: &mut Simulator, switch: usize, cfg: HeartbeatConfig) {
    let tmpl = compile_template(sim, switch, cfg.port, &cfg.fields, 0);
    let flow = u32::try_from(sim.flows.hb.len()).expect("hb flow count fits u32");
    sim.flows.hb.push(HbFlow {
        switch,
        stop_ns: cfg.stop_ns,
        interval: cfg.interval_ns,
        tmpl,
    });
    sim.schedule_kind(
        cfg.start_ns,
        EventKind::HbSend {
            flow,
            nominal: cfg.start_ns,
        },
    );
}

/// One heartbeat send (the `EventKind::HbSend` handler).
pub(crate) fn hb_send_event(sim: &mut Simulator, flow: u32, nominal: Nanos) {
    let i = flow as usize;
    let (switch, stop_ns, interval) = {
        let f = &sim.flows.hb[i];
        (f.switch, f.stop_ns, f.interval)
    };
    if stop_ns.is_some_and(|t| sim.now() >= t) {
        return;
    }
    sim.mark_busy(switch);
    sim.switch_at(switch)
        .borrow_mut()
        .inject_template(&sim.flows.hb[i].tmpl);
    let Some(next) = nominal.checked_add(interval.max(1)) else {
        return;
    };
    sim.schedule_kind(
        next,
        EventKind::HbSend {
            flow,
            nominal: next,
        },
    );
}

// ---------------------------------------------------------------------------
// Scale flows — the bulk traffic engine behind the unscaled Fig. 14 run.
// ---------------------------------------------------------------------------

/// Configuration of a bulk scale-flow workload: `flows` Pareto-sized flows
/// between random host pairs, with starts and inter-packet gaps quantized
/// to `tick_ns` so same-tick arrivals across a whole switch batch into one
/// timing-wheel slot (drained by a single wake event).
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    pub seed: u64,
    /// Number of flows to generate.
    pub flows: u32,
    /// Every packet of every flow lands inside `[0, duration_ns)`.
    pub duration_ns: Nanos,
    /// Pareto shape for the per-flow packet count (heavy tail).
    pub pareto_alpha: f64,
    pub min_pkts: u32,
    pub max_pkts: u32,
    pub payload_bytes: u32,
    /// Arrival quantum; larger ticks mean bigger same-slot batches.
    pub tick_ns: Nanos,
    /// Header instance carrying the address fields.
    pub header: String,
    pub src_field: String,
    pub dst_field: String,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            seed: 1,
            flows: 10_000,
            duration_ns: 1_000_000_000,
            pareto_alpha: 1.3,
            min_pkts: 4,
            max_pkts: 512,
            payload_bytes: 700,
            tick_ns: 1_000,
            header: "ip".into(),
            src_field: "src".into(),
            dst_field: "dst".into(),
        }
    }
}

/// One traffic endpoint: a host address behind `(switch, port)`.
#[derive(Clone, Copy, Debug)]
pub struct ScaleHost {
    pub switch: usize,
    pub port: PortId,
    pub addr: u64,
}

/// One packet arrival of the materialized schedule.
struct Arrival {
    at: Nanos,
    src: u64,
    dst: u64,
    port: PortId,
    /// Final packet of its flow (drives the live-flows gauge).
    last: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct ShardStats {
    injected: u64,
    accepted: u64,
    live: u64,
    batches: u64,
    max_batch: u64,
}

/// All scale-flow state of one injection switch: a shared compiled
/// template (slot 0 = src, slot 1 = dst) plus the shard's arrival
/// schedule. Exactly one `FlowWake` event is outstanding per shard — at
/// the schedule head — and its handler drains *every* due arrival in one
/// batch.
///
/// Scale flows are open-loop: every arrival time is `start + k·gap`,
/// fixed at spawn with no feedback from the fabric. That makes the whole
/// schedule static, so it is materialized and sorted once and replayed
/// with a cursor. Steady state is then a sequential, prefetch-friendly
/// scan — no per-packet priority-queue ops and no random flow-table
/// access (a per-shard heap of ~90 K pending arrivals thrashed cache and
/// cost the full Fig. 14 block ~30% of its throughput versus the quick
/// block). Memory is ~32 B per planned packet, bounded by the same
/// Pareto cap that bounds the schedule itself.
pub(crate) struct FlowShard {
    switch: usize,
    tmpl: PacketTemplate,
    /// Materialized schedule, sorted by `(time, flow index)`.
    arrivals: Vec<Arrival>,
    /// Replay cursor into `arrivals`.
    next: usize,
    stats: ShardStats,
}

/// Aggregate scale-engine counters across all shards.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScaleTotals {
    /// Packets handed to a switch so far.
    pub injected_pkts: u64,
    /// Packets the switch accepted (not dropped at ingress admission).
    pub accepted_pkts: u64,
    /// Flows with packets still to send.
    pub active_flows: u64,
    /// Wake events executed (each drains one same-time batch per shard).
    pub batches: u64,
    /// Largest single batch drained by one wake.
    pub max_batch: u64,
    /// Number of shards (injection switches).
    pub shards: usize,
}

/// Generate `cfg.flows` flows over `hosts` and register them with the
/// simulator, sharded by injection switch. Returns the total number of
/// packets the schedule will inject.
///
/// Deterministic: the same `(cfg, hosts)` produces the identical schedule,
/// shard layout, and event order on every run.
pub fn spawn_scale_flows(
    sim: &mut Simulator,
    cfg: &ScaleConfig,
    hosts: &[ScaleHost],
) -> Result<u64, String> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    if hosts.len() < 2 {
        return Err("scale flows need at least two hosts".into());
    }
    let tick = cfg.tick_ns.max(1);
    let duration = cfg.duration_ns.max(tick);
    let min_pkts = cfg.min_pkts.max(1);
    let max_pkts = cfg.max_pkts.max(min_pkts);

    // One shard per injection switch, created in first-appearance order of
    // `hosts` (deterministic given the caller's host list).
    let mut shard_of: Vec<Option<usize>> = vec![None; sim.num_switches()];
    let mut shards: Vec<FlowShard> = Vec::new();
    for h in hosts {
        if shard_of[h.switch].is_none() {
            let desc = PacketDesc::new(0)
                .field(&cfg.header, &cfg.src_field, 0)
                .field(&cfg.header, &cfg.dst_field, 0)
                .payload(cfg.payload_bytes);
            let tmpl = {
                let sw = sim.switch_at(h.switch).borrow();
                PacketTemplate::compile(&desc, sw.spec())?
            };
            shard_of[h.switch] = Some(shards.len());
            shards.push(FlowShard {
                switch: h.switch,
                tmpl,
                arrivals: Vec::new(),
                next: 0,
                stats: ShardStats::default(),
            });
        }
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut total: u64 = 0;
    for _ in 0..cfg.flows {
        let s = rng.gen_range(0..hosts.len());
        let mut d = rng.gen_range(0..hosts.len() - 1);
        if d >= s {
            d += 1; // src ≠ dst
        }
        let (src, dst) = (hosts[s], hosts[d]);
        // Pareto-tailed packet count.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let raw = f64::from(min_pkts) * u.powf(-1.0 / cfg.pareto_alpha.max(0.1));
        let count = if raw >= f64::from(max_pkts) {
            max_pkts
        } else {
            (raw as u32).clamp(min_pkts, max_pkts)
        };
        // Start and gap are tick-quantized, with the gap capped so the
        // whole flow finishes inside the duration.
        let start = rng.gen_range(0..duration) / tick * tick;
        let gap = if count > 1 {
            let span_ticks = (duration - start) / tick / u64::from(count - 1);
            rng.gen_range(1..=span_ticks.max(1)) * tick
        } else {
            tick
        };
        let shard = shard_of[src.switch].expect("host switch has a shard");
        let sh = &mut shards[shard];
        // Materialize the flow's arrivals up front (retiring early at the
        // u64 horizon, like the incremental scheduler did).
        let mut at = start;
        for k in 0..count {
            sh.arrivals.push(Arrival {
                at,
                src: src.addr,
                dst: dst.addr,
                port: src.port,
                last: k + 1 == count,
            });
            match at.checked_add(gap) {
                Some(next) => at = next,
                None => {
                    sh.arrivals.last_mut().expect("just pushed").last = true;
                    break;
                }
            }
        }
        sh.stats.live += 1;
        total += u64::from(count);
    }

    for mut sh in shards {
        // Stable sort: same-time arrivals keep flow-creation order — the
        // same `(time, flow index)` total order a priority queue keyed
        // that way produced.
        sh.arrivals.sort_by_key(|a| a.at);
        let first = sh.arrivals.first().map(|a| a.at);
        let id = u32::try_from(sim.flows.scale.len()).expect("shard count fits u32");
        sim.flows.scale.push(Some(sh));
        if let Some(t) = first {
            sim.schedule_kind(t, EventKind::FlowWake { shard: id });
        }
    }
    Ok(total)
}

/// Drain every due arrival of one shard (the `EventKind::FlowWake`
/// handler): same-tick arrivals across the whole shard inject back-to-back
/// from one event, then a single wake is rescheduled at the next arrival.
pub(crate) fn flow_wake_event(sim: &mut Simulator, shard: u32) {
    let s = shard as usize;
    let mut sh = sim.flows.scale[s]
        .take()
        .expect("scale-shard/wake: shard checked out twice");
    let now = sim.now();
    sim.mark_busy(sh.switch);
    let mut batch: u64 = 0;
    while let Some(a) = sh.arrivals.get(sh.next) {
        if a.at > now {
            break;
        }
        sh.next += 1;
        sh.tmpl.set_value(0, u128::from(a.src));
        sh.tmpl.set_value(1, u128::from(a.dst));
        sh.tmpl.set_port(a.port);
        sim.rebalance_pool_for(sh.switch);
        let ok = sim
            .switch_at(sh.switch)
            .borrow_mut()
            .inject_template(&sh.tmpl);
        sh.stats.injected += 1;
        if ok {
            sh.stats.accepted += 1;
        }
        batch += 1;
        if a.last {
            sh.stats.live -= 1;
        }
    }
    sh.stats.batches += 1;
    sh.stats.max_batch = sh.stats.max_batch.max(batch);
    let next_wake = sh.arrivals.get(sh.next).map(|a| a.at);
    sim.flows.scale[s] = Some(sh);
    if let Some(t) = next_wake {
        sim.schedule_kind(t, EventKind::FlowWake { shard });
    }
}

/// Aggregate scale-engine counters (zeroed when no scale flows spawned).
pub fn scale_totals(sim: &Simulator) -> ScaleTotals {
    let mut t = ScaleTotals::default();
    for sh in sim.flows.scale.iter().flatten() {
        t.injected_pkts += sh.stats.injected;
        t.accepted_pkts += sh.stats.accepted;
        t.active_flows += sh.stats.live;
        t.batches += sh.stats.batches;
        t.max_batch = t.max_batch.max(sh.stats.max_batch);
        t.shards += 1;
    }
    t
}

/// Publish the scale engine's gauges (`netsim.scale.*`): active flows,
/// wheel-slot occupancy, PHV arena bytes, and batch statistics. Only scale
/// scenarios call this — the standing experiment goldens never see these
/// names, so they stay byte-identical.
pub fn publish_scale_telemetry(sim: &Simulator) {
    let tel = sim.telemetry();
    if !tel.is_enabled() {
        return;
    }
    let t = scale_totals(sim);
    tel.gauge_set("netsim.scale.active_flows", t.active_flows as i128);
    tel.gauge_set("netsim.scale.injected_pkts", t.injected_pkts as i128);
    tel.gauge_set("netsim.scale.accepted_pkts", t.accepted_pkts as i128);
    tel.gauge_set("netsim.scale.batches", t.batches as i128);
    tel.gauge_set("netsim.scale.max_batch", t.max_batch as i128);
    tel.gauge_set("netsim.scale.wheel_slots", sim.wheel_slots() as i128);
    tel.gauge_set("netsim.scale.arena_bytes", sim.arena_bytes() as i128);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_sim::{switch_from_source, Clock, SharedSwitch, Switch, SwitchConfig};

    const PROG: &str = r#"
header_type ip_t { fields { src : 32; dst : 32; } }
header ip_t ip;
register hb_count { width : 64; instance_count : 32; }
action fwd() { modify_field(intr.egress_spec, 2); }
action count_hb() { count(hb_count, intr.ingress_port); }
table route { actions { fwd; } default_action : fwd(); }
table hb { actions { count_hb; } default_action : count_hb(); }
control ingress { apply(hb); apply(route); }
"#;

    fn mk(queue_bytes: u32) -> Simulator {
        let clock = Clock::new();
        let sw: Switch = switch_from_source(
            PROG,
            SwitchConfig {
                queue_capacity_bytes: queue_bytes,
                ..Default::default()
            },
            clock,
        )
        .unwrap();
        Simulator::new(SharedSwitch::new(sw))
    }

    fn ip_fields(src: u128) -> FieldTemplate {
        vec![
            ("ip".into(), "src".into(), src),
            ("ip".into(), "dst".into(), 1),
        ]
    }

    #[test]
    fn tcp_flow_sends_at_configured_rate() {
        let mut sim = mk(1 << 20);
        let flow = spawn_tcp(
            &mut sim,
            TcpConfig {
                fields: ip_fields(10),
                initial_rate_bps: 1_000_000_000, // 1 Gbps
                increase_bps: 0,
                payload_bytes: 1_250, // 10 µs per packet at 1 Gbps
                ..Default::default()
            },
        );
        sim.run_until(1_000_000); // 1 ms → ~100 packets
        let st = flow.borrow();
        assert!(
            (90..=110).contains(&st.sent_pkts),
            "sent {} packets",
            st.sent_pkts
        );
        assert_eq!(st.lost_pkts, 0);
    }

    #[test]
    fn tcp_flow_backs_off_on_loss_and_recovers() {
        // Tiny queue with a rate far above the 25 Gbps drain: must drop.
        let mut sim = mk(3_000);
        let flow = spawn_tcp(
            &mut sim,
            TcpConfig {
                fields: ip_fields(10),
                initial_rate_bps: 50_000_000_000,
                max_rate_bps: 50_000_000_000,
                increase_bps: 0,
                ..Default::default()
            },
        );
        sim.run_until(2_000_000);
        let st = flow.borrow();
        assert!(st.lost_pkts > 0, "expected drops");
        assert!(
            st.rate_bps < 50_000_000_000,
            "rate did not back off: {}",
            st.rate_bps
        );
    }

    #[test]
    fn tcp_additive_increase_without_loss() {
        let mut sim = mk(1 << 20);
        let flow = spawn_tcp(
            &mut sim,
            TcpConfig {
                fields: ip_fields(10),
                initial_rate_bps: 100_000_000,
                increase_bps: 50_000_000,
                rtt_ns: 100_000,
                ..Default::default()
            },
        );
        sim.run_until(1_000_000); // 10 RTTs
        let st = flow.borrow();
        assert!(
            st.rate_bps >= 100_000_000 + 8 * 50_000_000,
            "rate {}",
            st.rate_bps
        );
    }

    #[test]
    fn external_backoff_applies_once() {
        let mut sim = mk(1 << 20);
        let flow = spawn_tcp(
            &mut sim,
            TcpConfig {
                fields: ip_fields(10),
                initial_rate_bps: 1_000_000_000,
                increase_bps: 0,
                rtt_ns: 100_000,
                ..Default::default()
            },
        );
        flow.borrow_mut().backoff_factor = Some(0.5);
        sim.run_until(150_000); // one RTT tick
        assert_eq!(flow.borrow().rate_bps, 500_000_000);
        sim.run_until(450_000);
        assert_eq!(flow.borrow().rate_bps, 500_000_000);
    }

    #[test]
    fn udp_sender_ignores_losses() {
        let mut sim = mk(3_000);
        let udp = spawn_udp(
            &mut sim,
            UdpConfig {
                ingress_port: 0,
                fields: ip_fields(66),
                payload_bytes: 1_250,
                rate_bps: 50_000_000_000,
                start_ns: 0,
                stop_ns: None,
            },
        );
        sim.run_until(1_000_000);
        let st = udp.borrow();
        assert!(st.dropped_pkts > 0);
        // Rate never changes: sent count matches the configured rate
        // (1250 B @ 50 Gbps = 200 ns/pkt → ~5000 packets).
        assert!(st.sent_pkts > 4_000, "sent {}", st.sent_pkts);
    }

    #[test]
    fn flow_stops_at_stop_time() {
        let mut sim = mk(1 << 20);
        let flow = spawn_tcp(
            &mut sim,
            TcpConfig {
                fields: ip_fields(10),
                initial_rate_bps: 1_000_000_000,
                payload_bytes: 1_250,
                stop_ns: Some(500_000),
                ..Default::default()
            },
        );
        sim.run_until(2_000_000);
        let st = flow.borrow();
        assert!(st.stopped);
        assert!((40..=60).contains(&st.sent_pkts), "sent {}", st.sent_pkts);
    }

    #[test]
    fn ports_spread_round_robin_across_pipes() {
        let clock = Clock::new();
        let sw: Switch = switch_from_source(
            PROG,
            SwitchConfig {
                num_ports: 8,
                num_pipes: 4,
                ..Default::default()
            },
            clock,
        )
        .unwrap();
        let sim = Simulator::new(SharedSwitch::new(sw));
        let ports = ports_across_pipes(&sim, 8);
        let pipes: Vec<u16> = {
            let sw = sim.switch().borrow();
            ports.iter().map(|p| sw.pipe_of_port(*p)).collect()
        };
        // 4 pipes, 2 ports each: the first four flows land on distinct
        // pipes, then the assignment wraps onto each pipe's second port.
        assert_eq!(pipes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(ports, vec![0, 2, 4, 6, 1, 3, 5, 7]);
    }

    #[test]
    fn heartbeats_counted_in_dataplane_until_port_fails() {
        let mut sim = mk(1 << 20);
        spawn_heartbeats(
            &mut sim,
            HeartbeatConfig {
                port: 7,
                fields: ip_fields(0),
                interval_ns: 1_000, // Ts = 1 µs, as in the paper
                start_ns: 0,
                stop_ns: None,
            },
        );
        sim.run_until(100_000);
        let count_at = |sim: &Simulator| {
            let sw = sim.switch().borrow();
            let r = sw.register_id("hb_count").unwrap();
            sw.register_read_range(r, 7, 7)[0].as_u64()
        };
        let c1 = count_at(&sim);
        assert!((95..=105).contains(&c1), "heartbeats {c1}");
        // Fail the link: counting stops.
        sim.switch().borrow_mut().port_set_up(7, false).unwrap();
        sim.run_until(200_000);
        let c2 = count_at(&sim);
        assert_eq!(c1, c2);
    }

    #[test]
    fn scale_flows_inject_every_planned_packet() {
        let mut sim = mk(1 << 24);
        let hosts: Vec<ScaleHost> = (0..4)
            .map(|i| ScaleHost {
                switch: 0,
                port: i as PortId,
                addr: 100 + i as u64,
            })
            .collect();
        let cfg = ScaleConfig {
            seed: 7,
            flows: 200,
            duration_ns: 1_000_000, // 1 ms
            ..Default::default()
        };
        let planned = spawn_scale_flows(&mut sim, &cfg, &hosts).unwrap();
        assert!(planned >= 200 * u64::from(cfg.min_pkts));
        sim.run_until(cfg.duration_ns + 1_000_000);
        let t = scale_totals(&sim);
        assert_eq!(t.injected_pkts, planned, "every planned packet injected");
        assert_eq!(t.active_flows, 0, "all flows finished inside duration");
        assert!(t.batches <= t.injected_pkts);
        assert!(t.max_batch >= 1);
        assert_eq!(t.shards, 1);
    }

    #[test]
    fn scale_flows_are_deterministic() {
        let run = || {
            let mut sim = mk(1 << 24);
            let hosts: Vec<ScaleHost> = (0..4)
                .map(|i| ScaleHost {
                    switch: 0,
                    port: i as PortId,
                    addr: 100 + i as u64,
                })
                .collect();
            let cfg = ScaleConfig {
                seed: 42,
                flows: 100,
                duration_ns: 500_000,
                ..Default::default()
            };
            spawn_scale_flows(&mut sim, &cfg, &hosts).unwrap();
            sim.run_until(1_000_000);
            let t = scale_totals(&sim);
            (t.injected_pkts, t.accepted_pkts, t.batches, sim.tx_count)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn scale_flows_batch_same_tick_arrivals() {
        let mut sim = mk(1 << 24);
        let hosts: Vec<ScaleHost> = (0..8)
            .map(|i| ScaleHost {
                switch: 0,
                port: (i % 4) as PortId,
                addr: 100 + i as u64,
            })
            .collect();
        // A coarse tick forces many same-tick arrivals.
        let cfg = ScaleConfig {
            seed: 3,
            flows: 500,
            duration_ns: 100_000,
            tick_ns: 10_000,
            ..Default::default()
        };
        spawn_scale_flows(&mut sim, &cfg, &hosts).unwrap();
        sim.run_until(1_000_000);
        let t = scale_totals(&sim);
        assert!(
            t.batches < t.injected_pkts / 2,
            "expected batching: {} wakes for {} packets",
            t.batches,
            t.injected_pkts
        );
        assert!(t.max_batch > 1);
    }

    #[test]
    fn scale_flows_reject_single_host() {
        let mut sim = mk(1 << 20);
        let hosts = [ScaleHost {
            switch: 0,
            port: 0,
            addr: 1,
        }];
        assert!(spawn_scale_flows(&mut sim, &ScaleConfig::default(), &hosts).is_err());
    }
}
