//! Measurement utilities: time-bucketed series and the robust statistics
//! the use cases need (median, MAD, percentiles).

use rmt_sim::Nanos;

/// Accumulates values into fixed-width time buckets (e.g. goodput
/// timelines for Fig. 15).
#[derive(Clone, Debug)]
pub struct BucketSeries {
    bucket_ns: Nanos,
    buckets: Vec<f64>,
}

impl BucketSeries {
    pub fn new(bucket_ns: Nanos) -> Self {
        assert!(bucket_ns > 0);
        BucketSeries {
            bucket_ns,
            buckets: Vec::new(),
        }
    }

    /// Add `value` at time `at`.
    pub fn add(&mut self, at: Nanos, value: f64) {
        let idx = (at / self.bucket_ns) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
        self.buckets[idx] += value;
    }

    /// `(bucket_start_ns, sum)` pairs.
    pub fn series(&self) -> Vec<(Nanos, f64)> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, v)| (i as Nanos * self.bucket_ns, *v))
            .collect()
    }

    /// Convert a byte-count series into a rate series in bits/s.
    pub fn rate_bps(&self) -> Vec<(Nanos, f64)> {
        let secs = self.bucket_ns as f64 / 1e9;
        self.series()
            .into_iter()
            .map(|(t, bytes)| (t, bytes * 8.0 / secs))
            .collect()
    }

    pub fn bucket_ns(&self) -> Nanos {
        self.bucket_ns
    }
}

/// Median of a slice (averaging the middle pair for even lengths).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Median Absolute Deviation — the balance metric of the hash-polarization
/// use case (§8.3.3).
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = median(xs);
    let dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

/// p-th percentile (0..=100) by nearest-rank.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// Mean absolute deviation about the mean.
///
/// The paper's §8.3.3 says "Median Absolute Deviation (MAD)" but cites an
/// online *mean* absolute deviation algorithm \[38]; the median variant is
/// degenerate for fully polarized traffic (a single hot port out of four
/// has MAD = 0), so the use case uses this mean-based deviation.
pub fn mean_abs_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).abs()).sum::<f64>() / xs.len() as f64
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate() {
        let mut s = BucketSeries::new(1_000);
        s.add(0, 10.0);
        s.add(999, 5.0);
        s.add(1_000, 1.0);
        s.add(5_500, 2.0);
        let series = s.series();
        assert_eq!(series[0], (0, 15.0));
        assert_eq!(series[1], (1_000, 1.0));
        assert_eq!(series[5], (5_000, 2.0));
        assert_eq!(series.len(), 6);
    }

    #[test]
    fn rate_conversion() {
        let mut s = BucketSeries::new(1_000_000); // 1 ms buckets
        s.add(0, 125_000.0); // 125 kB in 1 ms = 1 Gbps
        let r = s.rate_bps();
        assert!((r[0].1 - 1e9).abs() < 1.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn mad_of_balanced_is_zero() {
        assert_eq!(mad(&[5.0, 5.0, 5.0]), 0.0);
        // One outlier: MAD stays robust.
        assert_eq!(mad(&[1.0, 1.0, 1.0, 100.0]), 0.0);
        assert!(mad(&[1.0, 2.0, 3.0, 4.0]) > 0.0);
    }

    #[test]
    fn percentile_bounds() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&xs, 50.0), 51.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn mean_abs_dev_detects_single_outlier() {
        // Median-based MAD of [N,0,0,0] is 0; mean-based is not.
        assert_eq!(mad(&[100.0, 0.0, 0.0, 0.0]), 0.0);
        assert!(mean_abs_dev(&[100.0, 0.0, 0.0, 0.0]) > 0.0);
        assert_eq!(mean_abs_dev(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn mean_simple() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_bucket_width_panics() {
        let _ = BucketSeries::new(0);
    }
}
