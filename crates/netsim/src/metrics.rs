//! Measurement utilities: time-bucketed series and the robust statistics
//! the use cases need (median, MAD, percentiles).
//!
//! Edge-case contract (tested below): every statistic returns `0.0` for
//! an empty slice, the element itself for a single-element slice, and
//! never panics on NaN inputs — NaN sorts after every finite value
//! (IEEE 754 `totalOrder`), so it can surface in results but cannot
//! crash a reduction.
//!
//! For live percentile tracking during a run, prefer the log-linear
//! histograms of [`mantis_telemetry`] (see [`BucketSeries::record_into`]
//! for bridging a finished series into the registry).

use mantis_telemetry::Telemetry;
use rmt_sim::Nanos;

/// Accumulates values into fixed-width time buckets (e.g. goodput
/// timelines for Fig. 15).
#[derive(Clone, Debug)]
pub struct BucketSeries {
    bucket_ns: Nanos,
    buckets: Vec<f64>,
}

impl BucketSeries {
    pub fn new(bucket_ns: Nanos) -> Self {
        assert!(bucket_ns > 0);
        BucketSeries {
            bucket_ns,
            buckets: Vec::new(),
        }
    }

    /// Add `value` at time `at`.
    pub fn add(&mut self, at: Nanos, value: f64) {
        let idx = (at / self.bucket_ns) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
        self.buckets[idx] += value;
    }

    /// `(bucket_start_ns, sum)` pairs.
    pub fn series(&self) -> Vec<(Nanos, f64)> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, v)| (i as Nanos * self.bucket_ns, *v))
            .collect()
    }

    /// Convert a byte-count series into a rate series in bits/s.
    pub fn rate_bps(&self) -> Vec<(Nanos, f64)> {
        let secs = self.bucket_ns as f64 / 1e9;
        self.series()
            .into_iter()
            .map(|(t, bytes)| (t, bytes * 8.0 / secs))
            .collect()
    }

    pub fn bucket_ns(&self) -> Nanos {
        self.bucket_ns
    }

    /// Feed the per-bucket sums into a telemetry histogram (negative
    /// sums clamp to zero, fractions truncate), so snapshots report
    /// p50/p95/p99 of the series alongside the agent's metrics.
    pub fn record_into(&self, telemetry: &Telemetry, name: &str) {
        for (_, v) in self.series() {
            telemetry.hist_record(name, v.max(0.0) as u64);
        }
    }
}

/// Median of a slice (averaging the middle pair for even lengths).
/// Empty slices give `0.0`; NaN elements sort last and never panic.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Median Absolute Deviation — the balance metric of the hash-polarization
/// use case (§8.3.3).
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = median(xs);
    let dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

/// p-th percentile (0..=100) by nearest-rank. Empty slices give `0.0`;
/// a single-element slice gives that element at every `p`; NaN elements
/// sort last and never panic.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// Mean absolute deviation about the mean. Empty slices give `0.0`; a
/// single-element slice has zero deviation.
///
/// The paper's §8.3.3 says "Median Absolute Deviation (MAD)" but cites an
/// online *mean* absolute deviation algorithm \[38]; the median variant is
/// degenerate for fully polarized traffic (a single hot port out of four
/// has MAD = 0), so the use case uses this mean-based deviation.
pub fn mean_abs_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).abs()).sum::<f64>() / xs.len() as f64
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate() {
        let mut s = BucketSeries::new(1_000);
        s.add(0, 10.0);
        s.add(999, 5.0);
        s.add(1_000, 1.0);
        s.add(5_500, 2.0);
        let series = s.series();
        assert_eq!(series[0], (0, 15.0));
        assert_eq!(series[1], (1_000, 1.0));
        assert_eq!(series[5], (5_000, 2.0));
        assert_eq!(series.len(), 6);
    }

    #[test]
    fn rate_conversion() {
        let mut s = BucketSeries::new(1_000_000); // 1 ms buckets
        s.add(0, 125_000.0); // 125 kB in 1 ms = 1 Gbps
        let r = s.rate_bps();
        assert!((r[0].1 - 1e9).abs() < 1.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn mad_of_balanced_is_zero() {
        assert_eq!(mad(&[5.0, 5.0, 5.0]), 0.0);
        // One outlier: MAD stays robust.
        assert_eq!(mad(&[1.0, 1.0, 1.0, 100.0]), 0.0);
        assert!(mad(&[1.0, 2.0, 3.0, 4.0]) > 0.0);
    }

    #[test]
    fn percentile_bounds() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&xs, 50.0), 51.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn mean_abs_dev_detects_single_outlier() {
        // Median-based MAD of [N,0,0,0] is 0; mean-based is not.
        assert_eq!(mad(&[100.0, 0.0, 0.0, 0.0]), 0.0);
        assert!(mean_abs_dev(&[100.0, 0.0, 0.0, 0.0]) > 0.0);
        assert_eq!(mean_abs_dev(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn mean_simple() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_bucket_width_panics() {
        let _ = BucketSeries::new(0);
    }

    #[test]
    fn single_element_slices() {
        assert_eq!(median(&[7.5]), 7.5);
        assert_eq!(mad(&[7.5]), 0.0);
        assert_eq!(mean_abs_dev(&[7.5]), 0.0);
        assert_eq!(mean(&[7.5]), 7.5);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[7.5], p), 7.5);
        }
    }

    #[test]
    fn nan_inputs_do_not_panic() {
        let xs = [1.0, f64::NAN, 3.0];
        // NaN sorts last (total order): the median of three is the
        // finite middle value, and low percentiles stay finite.
        assert_eq!(median(&xs), 3.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert!(percentile(&xs, 100.0).is_nan());
        // Reductions through NaN stay NaN rather than crashing.
        assert!(mean(&xs).is_nan());
        assert!(mean_abs_dev(&xs).is_nan());
        let _ = mad(&xs);
    }

    #[test]
    fn all_nan_slice_is_safe() {
        let xs = [f64::NAN, f64::NAN];
        assert!(median(&xs).is_nan());
        assert!(percentile(&xs, 50.0).is_nan());
        let _ = mad(&xs);
        let _ = mean_abs_dev(&xs);
    }

    #[test]
    fn series_bridges_into_telemetry_histograms() {
        let tel = mantis_telemetry::Telemetry::new(Default::default());
        let mut s = BucketSeries::new(1_000);
        s.add(0, 100.0);
        s.add(1_500, 300.0);
        s.add(2_500, -5.0); // clamps to 0
        s.record_into(&tel, "netsim.goodput_per_ms");
        let snap = tel.snapshot();
        let h = snap.hist("netsim.goodput_per_ms").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 300);
    }
}
