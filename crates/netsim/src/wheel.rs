//! Hierarchical bucketed timing wheel: the simulator's event core.
//!
//! A discrete-event simulator at Fig. 14 scale (~8.9 M packets / 20 s)
//! pushes tens of millions of timers; a comparison heap costs `O(log n)`
//! per operation and keeps every pending event in one cache-hostile
//! arena. The classic fix (Varghese & Lauck) is a hierarchy of bucket
//! arrays: scheduling is `O(1)` — index a slot by the event's time bits —
//! and ordering work is only paid when a slot's window is reached, by
//! cascading its events one level down.
//!
//! Layout: [`LEVELS`] levels of [`SLOTS`] slots. Level 0 slots are
//! `2^`[`SHIFT0`] ns wide (64 ns — finer than any pipeline latency, so
//! same-slot events are almost always same-instant); each higher level is
//! `SLOTS`× coarser. Together they cover `2^62` ns (~146 virtual years)
//! past the wheel's `boundary`; anything beyond that sits in a small
//! overflow heap that is migrated when the buckets drain.
//!
//! Ordering contract (property-tested against a `BinaryHeap` oracle in
//! `tests/timing_wheel_property.rs`): [`TimingWheel::pop_due`] yields
//! events in exactly `(at, seq)` order — the same total order the old
//! `BinaryHeap<Reverse<Scheduled>>` produced, including FIFO tie-break of
//! same-time events via the caller-supplied monotone `seq`.
//!
//! Invariants:
//! - `boundary` is 64-aligned and monotone non-decreasing; every pending
//!   event with `at < boundary` is in the `near` heap.
//! - an event beyond the bucket span lives in `overflow`, and is strictly
//!   later than every bucketed event (both live in disjoint `2^62` ns
//!   regions), so overflow is only consulted when the buckets are empty.

use rmt_sim::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// log2 of slots per level.
const SLOT_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// log2 of the level-0 slot width in nanoseconds.
const SHIFT0: u32 = 6;
/// Number of bucket levels.
const LEVELS: usize = 7;
/// Words of the per-level occupancy bitmap.
const OCC_WORDS: usize = SLOTS / 64;
/// Entries each slot can hold before its buffer ever grows. Slots are
/// visited cyclically and lazily — a coarse level's cursor takes seconds
/// of virtual time to wrap — so without a pre-sized buffer the first push
/// into a cold slot allocates *mid-run*, long after the rest of the
/// engine reached steady state. Pre-sizing every slot bounds that to a
/// fixed construction-time footprint (`LEVELS × SLOTS × 8` entries).
const SLOT_PREALLOC: usize = 8;

/// One pending event.
#[derive(Debug)]
struct Entry<T> {
    at: Nanos,
    seq: u64,
    item: T,
}

/// Max-heap entry wrapper inverted to a min-heap on `(at, seq)`.
#[derive(Debug)]
struct NearEntry<T>(Entry<T>);

impl<T> PartialEq for NearEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<T> Eq for NearEntry<T> {}
impl<T> PartialOrd for NearEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for NearEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

#[derive(Debug)]
struct Level<T> {
    occ: [u64; OCC_WORDS],
    slots: Vec<Vec<Entry<T>>>,
}

impl<T> Level<T> {
    fn new() -> Self {
        Level {
            occ: [0; OCC_WORDS],
            slots: (0..SLOTS)
                .map(|_| Vec::with_capacity(SLOT_PREALLOC))
                .collect(),
        }
    }

    /// Earliest occupied slot index at or after `from`, if any.
    fn first_occupied_from(&self, from: usize) -> Option<usize> {
        let mut w = from / 64;
        let mut word = self.occ[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= OCC_WORDS {
                return None;
            }
            word = self.occ[w];
        }
    }
}

/// The hierarchical timing wheel. `T` is the event payload; ordering is
/// wholly determined by the caller-supplied `(at, seq)` key.
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// 64-aligned lower edge of the bucket span. All pending events below
    /// it have been cascaded into `near`.
    boundary: Nanos,
    /// Events already known to precede the bucket span, served in
    /// `(at, seq)` order.
    near: BinaryHeap<NearEntry<T>>,
    levels: Vec<Level<T>>,
    /// Events beyond the bucket span (≥ 2^62 ns past `boundary`).
    overflow: BinaryHeap<NearEntry<T>>,
    /// Events currently resident in `levels`.
    bucketed: usize,
    len: usize,
    /// Spare slot buffer swapped into a slot when it is flushed, so slot
    /// capacity circulates instead of being freed — cascades allocate
    /// nothing once every visited slot's buffer has grown to its
    /// high-water mark.
    spare: Vec<Entry<T>>,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    pub fn new() -> Self {
        TimingWheel {
            boundary: 0,
            near: BinaryHeap::new(),
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: BinaryHeap::new(),
            bucketed: 0,
            len: 0,
            spare: Vec::with_capacity(SLOT_PREALLOC),
        }
    }

    /// Empty `slot` at `level`, leaving the spare buffer in its place so
    /// the slot keeps warmed capacity for future pushes. The returned
    /// buffer must come back via [`TimingWheel::restore_spare`] once
    /// drained.
    fn flush_slot(&mut self, level: usize, slot: usize) -> Vec<Entry<T>> {
        let l = &mut self.levels[level];
        l.occ[slot / 64] &= !(1u64 << (slot % 64));
        let events = std::mem::replace(&mut l.slots[slot], std::mem::take(&mut self.spare));
        self.bucketed -= events.len();
        events
    }

    fn restore_spare(&mut self, drained: Vec<Entry<T>>) {
        debug_assert!(drained.is_empty());
        self.spare = drained;
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Occupied bucket slots across all levels (telemetry gauge).
    pub fn occupied_slots(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.occ.iter().map(|w| w.count_ones() as usize).sum::<usize>())
            .sum()
    }

    /// Schedule an event. `seq` must be unique and monotone in schedule
    /// order; it is the FIFO tie-break for same-time events.
    pub fn schedule(&mut self, at: Nanos, seq: u64, item: T) {
        self.len += 1;
        self.place(Entry { at, seq, item });
    }

    /// The bucket level an event belongs to relative to `boundary`, or
    /// `None` if it is beyond the span.
    fn level_for(&self, at: Nanos) -> Option<usize> {
        let diff = (at >> SHIFT0) ^ (self.boundary >> SHIFT0);
        if diff == 0 {
            return Some(0);
        }
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        (level < LEVELS).then_some(level)
    }

    fn slot_index(at: Nanos, level: usize) -> usize {
        ((at >> (SHIFT0 + SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
    }

    /// The start time of `slot` at `level`, relative to the current
    /// boundary's high bits.
    fn slot_start(&self, level: usize, slot: usize) -> Nanos {
        let shift = SHIFT0 + SLOT_BITS * level as u32;
        let high = (self.boundary >> (shift + SLOT_BITS)) << (shift + SLOT_BITS);
        high | ((slot as Nanos) << shift)
    }

    fn place(&mut self, e: Entry<T>) {
        if e.at < self.boundary {
            self.near.push(NearEntry(e));
            return;
        }
        match self.level_for(e.at) {
            None => self.overflow.push(NearEntry(e)),
            Some(level) => {
                let slot = Self::slot_index(e.at, level);
                let l = &mut self.levels[level];
                l.occ[slot / 64] |= 1u64 << (slot % 64);
                l.slots[slot].push(e);
                self.bucketed += 1;
            }
        }
    }

    /// Earliest occupied `(level, slot)` pair. At each level, slots before
    /// the boundary's own index are dead (their windows already cascaded),
    /// and the first occupied slot at the lowest occupied level is
    /// guaranteed to precede everything at higher levels.
    fn earliest_slot(&self) -> Option<(usize, usize)> {
        for (level, l) in self.levels.iter().enumerate() {
            let cursor = Self::slot_index(self.boundary, level);
            if let Some(slot) = l.first_occupied_from(cursor) {
                return Some((level, slot));
            }
        }
        None
    }

    /// Cascade any occupied slot that contains the boundary at levels ≥ 1.
    ///
    /// A level-0 flush advances the boundary in 64 ns steps and can carry
    /// it across a higher-level window edge without visiting that window's
    /// slot; events parked there straddle the boundary and may precede
    /// everything at lower levels, so the slot must cascade before either
    /// the `near` head or the per-level scan can be trusted. One pass from
    /// the top level down suffices: cascading level `L` re-places events
    /// strictly after the cursor at every level below `L` (or into `near`),
    /// never into another boundary slot.
    fn flush_boundary_slots(&mut self) {
        for level in (1..LEVELS).rev() {
            let slot = Self::slot_index(self.boundary, level);
            let word = slot / 64;
            let bit = 1u64 << (slot % 64);
            if self.levels[level].occ[word] & bit != 0 {
                let mut events = self.flush_slot(level, slot);
                for e in events.drain(..) {
                    self.place(e);
                }
                self.restore_spare(events);
            }
        }
    }

    /// Cascade until the earliest pending event (if due by `until`) sits
    /// at the top of `near`. Returns whether such an event exists.
    fn expose_due(&mut self, until: Nanos) -> bool {
        loop {
            if self.bucketed > 0 {
                self.flush_boundary_slots();
            }
            if let Some(head) = self.near.peek() {
                if head.0.at <= until {
                    return true;
                }
            }
            if self.bucketed == 0 {
                // Buckets empty: the overflow heap (strictly later than
                // anything bucketed) may now be within reach.
                match self.overflow.peek() {
                    Some(h) if h.0.at <= until => self.migrate_overflow(),
                    _ => return false,
                }
                continue;
            }
            let (level, slot) = self.earliest_slot().expect("bucketed > 0");
            let start = self.slot_start(level, slot);
            if start > until {
                return false;
            }
            // Flush the slot: level 0 slots are already totally ordered by
            // the near heap; higher slots cascade their events down.
            let mut events = self.flush_slot(level, slot);
            if level == 0 {
                // Saturating: at the u64 horizon the boundary pins at MAX
                // (horizon events keep cycling through the final slot in
                // order) instead of wrapping back to zero.
                self.boundary = start.saturating_add(1 << SHIFT0);
                for e in events.drain(..) {
                    self.near.push(NearEntry(e));
                }
            } else {
                self.boundary = start;
                for e in events.drain(..) {
                    self.place(e);
                }
            }
            self.restore_spare(events);
        }
    }

    /// Advance the boundary to the overflow head and pull every overflow
    /// event that now fits the bucket span back in.
    fn migrate_overflow(&mut self) {
        let head_at = self.overflow.peek().expect("overflow non-empty").0.at;
        self.boundary = (head_at >> SHIFT0) << SHIFT0;
        while let Some(h) = self.overflow.peek() {
            if self.level_for(h.0.at).is_none() {
                break;
            }
            let NearEntry(e) = self.overflow.pop().expect("peeked");
            self.place(e);
        }
    }

    /// Whether an event with `at <= until` is pending. May cascade slots
    /// (which only reorganizes storage, never changes the served order).
    pub fn has_due(&mut self, until: Nanos) -> bool {
        self.expose_due(until)
    }

    /// The `(at, seq)` key of the earliest pending event if it is due by
    /// `until`, without removing it. Like [`TimingWheel::has_due`] this may
    /// cascade slots internally.
    pub fn peek_due(&mut self, until: Nanos) -> Option<(Nanos, u64)> {
        if !self.expose_due(until) {
            return None;
        }
        self.near.peek().map(|NearEntry(e)| (e.at, e.seq))
    }

    /// Pop the earliest pending event if it is due by `until`.
    pub fn pop_due(&mut self, until: Nanos) -> Option<(Nanos, u64, T)> {
        if !self.expose_due(until) {
            return None;
        }
        let NearEntry(e) = self.near.pop().expect("expose_due placed a head");
        self.len -= 1;
        Some((e.at, e.seq, e.item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain everything due by `until` as `(at, seq)` pairs.
    fn drain(w: &mut TimingWheel<u32>, until: Nanos) -> Vec<(Nanos, u64)> {
        let mut out = Vec::new();
        while let Some((at, seq, _)) = w.pop_due(until) {
            out.push((at, seq));
        }
        out
    }

    #[test]
    fn orders_same_slot_and_cross_level() {
        let mut w = TimingWheel::new();
        // Deliberately out of order, spanning level 0, 1+ and same-time ties.
        let times = [5u64, 5, 70_000, 3, 1 << 30, 64, 5, 1 << 20, 0];
        for (seq, at) in times.iter().enumerate() {
            w.schedule(*at, seq as u64, seq as u32);
        }
        let got = drain(&mut w, Nanos::MAX);
        let mut want: Vec<(Nanos, u64)> = times
            .iter()
            .enumerate()
            .map(|(s, at)| (*at, s as u64))
            .collect();
        want.sort();
        assert_eq!(got, want);
        assert!(w.is_empty());
    }

    #[test]
    fn respects_until_and_resumes() {
        let mut w = TimingWheel::new();
        for (seq, at) in [10u64, 100, 1_000, 100_000].iter().enumerate() {
            w.schedule(*at, seq as u64, 0);
        }
        assert_eq!(drain(&mut w, 100), vec![(10, 0), (100, 1)]);
        assert!(!w.has_due(999));
        assert!(w.has_due(1_000));
        assert_eq!(drain(&mut w, Nanos::MAX), vec![(1_000, 2), (100_000, 3)]);
    }

    #[test]
    fn schedule_into_current_slot_after_partial_drain() {
        let mut w = TimingWheel::new();
        w.schedule(100, 0, 0);
        assert_eq!(w.pop_due(Nanos::MAX), Some((100, 0, 0)));
        // Boundary moved past 100's slot; an earlier-but-still-future event
        // must land in `near`, not be lost.
        w.schedule(130, 1, 0);
        w.schedule(90, 2, 0);
        assert_eq!(drain(&mut w, Nanos::MAX), vec![(90, 2), (130, 1)]);
    }

    #[test]
    fn far_future_overflow_events_fire_in_order() {
        let mut w = TimingWheel::new();
        w.schedule(Nanos::MAX, 0, 0);
        w.schedule(1 << 63, 1, 0);
        w.schedule(5, 2, 0);
        w.schedule(Nanos::MAX, 3, 0);
        assert_eq!(
            drain(&mut w, Nanos::MAX),
            vec![(5, 2), (1 << 63, 1), (Nanos::MAX, 0), (Nanos::MAX, 3)]
        );
    }

    #[test]
    fn occupancy_gauge_tracks_slots() {
        let mut w = TimingWheel::new();
        assert_eq!(w.occupied_slots(), 0);
        w.schedule(0, 0, 0);
        w.schedule(1, 1, 0); // same level-0 slot
        w.schedule(1 << 20, 2, 0);
        assert_eq!(w.occupied_slots(), 2);
        assert_eq!(w.len(), 3);
    }
}
