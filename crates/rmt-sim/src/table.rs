//! Runtime match-action tables.
//!
//! Semantics mirror an RMT TCAM/SRAM unit:
//!
//! * **exact** keys must match bit-for-bit,
//! * **ternary** keys match under a per-entry mask; among multiple matching
//!   entries the highest `priority` wins (ties broken by insertion order,
//!   oldest first — deterministic),
//! * **lpm** keys match a per-entry prefix; the longest matching prefix wins
//!   (then priority).
//!
//! Single-entry add/modify/delete are atomic with respect to packet
//! processing — exactly the guarantee the Mantis paper builds its
//! serializable update protocol on.
//!
//! Duplicate keys: exact-only tables resolve a re-added identical key to
//! the newest entry (the hash index is overwritten); scan-matched tables
//! (ternary/LPM) tie-break by insertion order, oldest first. The Mantis
//! layers never insert duplicate physical keys (expansion makes keys
//! unique per vv/selector), so the difference is only observable through
//! the raw driver API.

use crate::phv::Phv;
use crate::spec::{ActionId, TableSpec};
use p4_ast::{MatchKind, Value};
use std::collections::HashMap;
use std::fmt;

/// Opaque handle to an installed entry, unique within a table for the
/// lifetime of the switch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntryHandle(pub u64);

impl fmt::Debug for EntryHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EntryHandle({})", self.0)
    }
}

/// One component of an entry's match key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeyField {
    Exact(Value),
    Ternary { value: Value, mask: Value },
    Lpm { value: Value, prefix_len: u16 },
}

impl KeyField {
    fn matches(&self, field: Value, static_mask: Option<Value>) -> bool {
        let field = match static_mask {
            Some(m) => field.and(m),
            None => field,
        };
        match self {
            KeyField::Exact(v) => field.bits() == v.bits(),
            KeyField::Ternary { value, mask } => field.matches_ternary(*value, *mask),
            KeyField::Lpm { value, prefix_len } => field.matches_prefix(*value, *prefix_len),
        }
    }

    /// LPM specificity used for longest-prefix ordering.
    fn prefix_len(&self) -> u16 {
        match self {
            KeyField::Lpm { prefix_len, .. } => *prefix_len,
            _ => 0,
        }
    }
}

/// An installed table entry.
#[derive(Clone, Debug)]
pub struct Entry {
    pub handle: EntryHandle,
    pub key: Vec<KeyField>,
    pub priority: u32,
    pub action: ActionId,
    pub action_data: Vec<Value>,
    /// Insertion sequence for deterministic tie-breaks.
    seq: u64,
}

/// Errors from control-plane table operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableError {
    KeyArityMismatch { expected: usize, got: usize },
    KeyKindMismatch { index: usize, expected: MatchKind },
    UnknownHandle(EntryHandle),
    UnknownAction(ActionId),
    TableFull { capacity: u32 },
    ActionDataArity { expected: usize, got: usize },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::KeyArityMismatch { expected, got } => {
                write!(
                    f,
                    "key arity mismatch: expected {expected} fields, got {got}"
                )
            }
            TableError::KeyKindMismatch { index, expected } => {
                write!(f, "key field {index} must be a {expected} match")
            }
            TableError::UnknownHandle(h) => write!(f, "no entry with handle {h:?}"),
            TableError::UnknownAction(a) => write!(f, "action {a:?} is not bound to this table"),
            TableError::TableFull { capacity } => write!(f, "table full (capacity {capacity})"),
            TableError::ActionDataArity { expected, got } => {
                write!(
                    f,
                    "action data arity mismatch: expected {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for TableError {}

/// A runtime table instance.
#[derive(Clone, Debug)]
pub struct Table {
    /// Entries in insertion order; matching scans and picks the winner.
    entries: Vec<Entry>,
    /// Exact-only tables additionally keep a hash index for O(1) lookup.
    exact_index: Option<HashMap<Vec<u128>, usize>>,
    default_action: Option<(ActionId, Vec<Value>)>,
    next_handle: u64,
    next_seq: u64,
    capacity: u32,
    /// Lookup and hit/miss counters (for stats and tests).
    pub lookups: u64,
    pub hits: u64,
}

/// The outcome of a table lookup.
#[derive(Clone, Debug, PartialEq)]
pub enum Lookup {
    Hit {
        handle: EntryHandle,
        action: ActionId,
        action_data: Vec<Value>,
    },
    Default {
        action: ActionId,
        action_data: Vec<Value>,
    },
    Miss,
}

impl Table {
    pub fn new(spec: &TableSpec) -> Self {
        let exact_only =
            !spec.key.is_empty() && spec.key.iter().all(|k| k.kind == MatchKind::Exact);
        Table {
            entries: Vec::new(),
            exact_index: exact_only.then(HashMap::new),
            default_action: spec.default_action.clone(),
            next_handle: 1,
            next_seq: 0,
            capacity: spec.size,
            lookups: 0,
            hits: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    pub fn entries(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }

    pub fn default_action(&self) -> Option<&(ActionId, Vec<Value>)> {
        self.default_action.as_ref()
    }

    pub fn set_default(&mut self, action: ActionId, data: Vec<Value>) {
        self.default_action = Some((action, data));
    }

    fn validate_key(&self, spec: &TableSpec, key: &[KeyField]) -> Result<(), TableError> {
        if key.len() != spec.key.len() {
            return Err(TableError::KeyArityMismatch {
                expected: spec.key.len(),
                got: key.len(),
            });
        }
        for (i, (kf, ks)) in key.iter().zip(spec.key.iter()).enumerate() {
            let ok = matches!(
                (kf, ks.kind),
                (KeyField::Exact(_), MatchKind::Exact)
                    | (KeyField::Ternary { .. }, MatchKind::Ternary)
                    | (KeyField::Lpm { .. }, MatchKind::Lpm)
            );
            if !ok {
                return Err(TableError::KeyKindMismatch {
                    index: i,
                    expected: ks.kind,
                });
            }
        }
        Ok(())
    }

    fn validate_action(
        &self,
        spec: &TableSpec,
        action: ActionId,
        data_len: usize,
        param_count: usize,
    ) -> Result<(), TableError> {
        if !spec.actions.contains(&action) {
            return Err(TableError::UnknownAction(action));
        }
        if data_len != param_count {
            return Err(TableError::ActionDataArity {
                expected: param_count,
                got: data_len,
            });
        }
        Ok(())
    }

    /// Install a new entry. `param_count` is the arity of `action` (the
    /// switch resolves it from the action table).
    #[allow(clippy::too_many_arguments)]
    pub fn add_entry(
        &mut self,
        spec: &TableSpec,
        key: Vec<KeyField>,
        priority: u32,
        action: ActionId,
        action_data: Vec<Value>,
        param_count: usize,
    ) -> Result<EntryHandle, TableError> {
        self.validate_key(spec, &key)?;
        self.validate_action(spec, action, action_data.len(), param_count)?;
        if self.entries.len() as u32 >= self.capacity {
            return Err(TableError::TableFull {
                capacity: self.capacity,
            });
        }
        let handle = EntryHandle(self.next_handle);
        self.next_handle += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(index) = &mut self.exact_index {
            let k = exact_key_bits(&key);
            index.insert(k, self.entries.len());
        }
        self.entries.push(Entry {
            handle,
            key,
            priority,
            action,
            action_data,
            seq,
        });
        Ok(handle)
    }

    /// Replace the action/action-data of an existing entry (the key and
    /// priority are immutable, matching real switch drivers).
    pub fn mod_entry(
        &mut self,
        spec: &TableSpec,
        handle: EntryHandle,
        action: ActionId,
        action_data: Vec<Value>,
        param_count: usize,
    ) -> Result<(), TableError> {
        self.validate_action(spec, action, action_data.len(), param_count)?;
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.handle == handle)
            .ok_or(TableError::UnknownHandle(handle))?;
        e.action = action;
        e.action_data = action_data;
        Ok(())
    }

    /// Remove an entry.
    pub fn del_entry(&mut self, handle: EntryHandle) -> Result<Entry, TableError> {
        let idx = self
            .entries
            .iter()
            .position(|e| e.handle == handle)
            .ok_or(TableError::UnknownHandle(handle))?;
        let e = self.entries.remove(idx);
        if let Some(index) = &mut self.exact_index {
            // Rebuild the displaced indexes (deletion is rare relative to
            // lookups).
            index.clear();
            for (i, e) in self.entries.iter().enumerate() {
                index.insert(exact_key_bits(&e.key), i);
            }
        }
        Ok(e)
    }

    /// Look up the winning entry for the current PHV.
    pub fn lookup(&mut self, spec: &TableSpec, phv: &Phv) -> Lookup {
        self.lookups += 1;
        if spec.key.is_empty() {
            // Keyless tables always run their default action.
            return match &self.default_action {
                Some((a, d)) => Lookup::Default {
                    action: *a,
                    action_data: d.clone(),
                },
                None => Lookup::Miss,
            };
        }

        let field_vals: Vec<Value> = spec
            .key
            .iter()
            .map(|k| {
                let v = phv.get(k.field);
                match k.static_mask {
                    Some(m) => v.and(m),
                    None => v,
                }
            })
            .collect();

        // Fast path for exact-only tables.
        if let Some(index) = &self.exact_index {
            let bits: Vec<u128> = field_vals.iter().map(|v| v.bits()).collect();
            if let Some(&i) = index.get(&bits) {
                let e = &self.entries[i];
                self.hits += 1;
                return Lookup::Hit {
                    handle: e.handle,
                    action: e.action,
                    action_data: e.action_data.clone(),
                };
            }
        } else {
            let mut best: Option<&Entry> = None;
            let mut best_prefix: u32 = 0;
            for e in &self.entries {
                let all = e
                    .key
                    .iter()
                    .zip(spec.key.iter())
                    .zip(field_vals.iter())
                    .all(|((kf, ks), fv)| {
                        // static mask was applied to fv already
                        let _ = ks;
                        kf.matches(*fv, None)
                    });
                if !all {
                    continue;
                }
                let prefix: u32 = e.key.iter().map(|k| u32::from(k.prefix_len())).sum();
                let better = match best {
                    None => true,
                    Some(b) => {
                        (prefix, e.priority, std::cmp::Reverse(e.seq))
                            > (best_prefix, b.priority, std::cmp::Reverse(b.seq))
                    }
                };
                if better {
                    best = Some(e);
                    best_prefix = prefix;
                }
            }
            if let Some(e) = best {
                self.hits += 1;
                return Lookup::Hit {
                    handle: e.handle,
                    action: e.action,
                    action_data: e.action_data.clone(),
                };
            }
        }

        match &self.default_action {
            Some((a, d)) => Lookup::Default {
                action: *a,
                action_data: d.clone(),
            },
            None => Lookup::Miss,
        }
    }

    /// Normalize a user-provided key to the spec's field widths. Exposed so
    /// that the driver layer can accept plain `u128` keys.
    pub fn normalize_key(spec: &TableSpec, key: Vec<KeyField>) -> Vec<KeyField> {
        key.into_iter()
            .zip(spec.key.iter())
            .map(|(kf, ks)| match kf {
                KeyField::Exact(v) => KeyField::Exact(v.resize(ks.width)),
                KeyField::Ternary { value, mask } => KeyField::Ternary {
                    value: value.resize(ks.width),
                    mask: mask.resize(ks.width),
                },
                KeyField::Lpm { value, prefix_len } => KeyField::Lpm {
                    value: value.resize(ks.width),
                    prefix_len: prefix_len.min(ks.width),
                },
            })
            .collect()
    }
}

fn exact_key_bits(key: &[KeyField]) -> Vec<u128> {
    key.iter()
        .map(|k| match k {
            KeyField::Exact(v) => v.bits(),
            _ => unreachable!("exact index on non-exact key"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FieldId, KeySpec};
    use p4_ast::Pipeline;

    fn mkspec(kinds: &[MatchKind]) -> TableSpec {
        TableSpec {
            name: "t".into(),
            key: kinds
                .iter()
                .enumerate()
                .map(|(i, k)| KeySpec {
                    field: FieldId(i as u32),
                    kind: *k,
                    width: 32,
                    static_mask: None,
                })
                .collect(),
            actions: vec![ActionId(0), ActionId(1)],
            default_action: Some((ActionId(1), vec![])),
            size: 4,
            malleable: false,
            stage: 0,
            pipeline: Pipeline::Ingress,
        }
    }

    /// Minimal fake PHV: field i has value vals[i].
    fn phv_with(vals: &[u128]) -> Phv {
        // Build a spec with enough 32-bit fields.
        use crate::spec::load;
        let fields: String = (0..vals.len())
            .map(|i| format!("f{i} : 32;"))
            .collect::<Vec<_>>()
            .join(" ");
        let src = format!("header_type m_t {{ fields {{ {fields} }} }} metadata m_t m;");
        let prog = p4r_lang::parse_program(&src).unwrap();
        let spec = load(&prog).unwrap();
        let mut phv = Phv::new(&spec);
        for (i, v) in vals.iter().enumerate() {
            let id = spec.field_id("m", &format!("f{i}")).unwrap();
            phv.set(id, Value::new(*v, 32));
        }
        phv
    }

    /// Remap table spec key fields to the fake PHV's field ids (intrinsics
    /// occupy the first ids).
    fn remap(spec: &mut TableSpec, base: u32) {
        for (i, k) in spec.key.iter_mut().enumerate() {
            k.field = FieldId(base + i as u32);
        }
    }

    const INTR_COUNT: u32 = crate::spec::INTR_FIELDS.len() as u32;

    #[test]
    fn exact_match_hit_and_miss() {
        let mut spec = mkspec(&[MatchKind::Exact]);
        remap(&mut spec, INTR_COUNT);
        let mut t = Table::new(&spec);
        let h = t
            .add_entry(
                &spec,
                vec![KeyField::Exact(Value::new(7, 32))],
                0,
                ActionId(0),
                vec![],
                0,
            )
            .unwrap();
        match t.lookup(&spec, &phv_with(&[7])) {
            Lookup::Hit { handle, action, .. } => {
                assert_eq!(handle, h);
                assert_eq!(action, ActionId(0));
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(matches!(
            t.lookup(&spec, &phv_with(&[8])),
            Lookup::Default {
                action: ActionId(1),
                ..
            }
        ));
        assert_eq!(t.lookups, 2);
        assert_eq!(t.hits, 1);
    }

    #[test]
    fn ternary_priority_wins() {
        let mut spec = mkspec(&[MatchKind::Ternary]);
        remap(&mut spec, INTR_COUNT);
        let mut t = Table::new(&spec);
        t.add_entry(
            &spec,
            vec![KeyField::Ternary {
                value: Value::zero(32),
                mask: Value::zero(32), // wildcard
            }],
            1,
            ActionId(0),
            vec![],
            0,
        )
        .unwrap();
        let hi = t
            .add_entry(
                &spec,
                vec![KeyField::Ternary {
                    value: Value::new(5, 32),
                    mask: Value::ones(32),
                }],
                10,
                ActionId(1),
                vec![],
                0,
            )
            .unwrap();
        match t.lookup(&spec, &phv_with(&[5])) {
            Lookup::Hit { handle, .. } => assert_eq!(handle, hi),
            other => panic!("expected hit, got {other:?}"),
        }
        // Non-5 packets fall to the wildcard.
        match t.lookup(&spec, &phv_with(&[9])) {
            Lookup::Hit { action, .. } => assert_eq!(action, ActionId(0)),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn ternary_tie_break_is_insertion_order() {
        let mut spec = mkspec(&[MatchKind::Ternary]);
        remap(&mut spec, INTR_COUNT);
        let mut t = Table::new(&spec);
        let first = t
            .add_entry(
                &spec,
                vec![KeyField::Ternary {
                    value: Value::zero(32),
                    mask: Value::zero(32),
                }],
                5,
                ActionId(0),
                vec![],
                0,
            )
            .unwrap();
        t.add_entry(
            &spec,
            vec![KeyField::Ternary {
                value: Value::zero(32),
                mask: Value::zero(32),
            }],
            5,
            ActionId(1),
            vec![],
            0,
        )
        .unwrap();
        match t.lookup(&spec, &phv_with(&[1])) {
            Lookup::Hit { handle, .. } => assert_eq!(handle, first),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let mut spec = mkspec(&[MatchKind::Lpm]);
        remap(&mut spec, INTR_COUNT);
        let mut t = Table::new(&spec);
        t.add_entry(
            &spec,
            vec![KeyField::Lpm {
                value: Value::new(0x0a000000, 32),
                prefix_len: 8,
            }],
            0,
            ActionId(0),
            vec![],
            0,
        )
        .unwrap();
        let h24 = t
            .add_entry(
                &spec,
                vec![KeyField::Lpm {
                    value: Value::new(0x0a000100, 32),
                    prefix_len: 24,
                }],
                0,
                ActionId(1),
                vec![],
                0,
            )
            .unwrap();
        match t.lookup(&spec, &phv_with(&[0x0a000105])) {
            Lookup::Hit { handle, .. } => assert_eq!(handle, h24),
            other => panic!("expected hit, got {other:?}"),
        }
        match t.lookup(&spec, &phv_with(&[0x0a990105])) {
            Lookup::Hit { action, .. } => assert_eq!(action, ActionId(0)),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn mod_and_del_entry() {
        let mut spec = mkspec(&[MatchKind::Exact]);
        remap(&mut spec, INTR_COUNT);
        let mut t = Table::new(&spec);
        let h = t
            .add_entry(
                &spec,
                vec![KeyField::Exact(Value::new(1, 32))],
                0,
                ActionId(0),
                vec![],
                0,
            )
            .unwrap();
        t.mod_entry(&spec, h, ActionId(1), vec![], 0).unwrap();
        match t.lookup(&spec, &phv_with(&[1])) {
            Lookup::Hit { action, .. } => assert_eq!(action, ActionId(1)),
            other => panic!("expected hit, got {other:?}"),
        }
        t.del_entry(h).unwrap();
        assert!(matches!(
            t.lookup(&spec, &phv_with(&[1])),
            Lookup::Default { .. }
        ));
        assert_eq!(t.del_entry(h).unwrap_err(), TableError::UnknownHandle(h));
    }

    #[test]
    fn capacity_enforced() {
        let mut spec = mkspec(&[MatchKind::Exact]);
        remap(&mut spec, INTR_COUNT);
        spec.size = 2;
        let mut t = Table::new(&spec);
        for i in 0..2 {
            t.add_entry(
                &spec,
                vec![KeyField::Exact(Value::new(i, 32))],
                0,
                ActionId(0),
                vec![],
                0,
            )
            .unwrap();
        }
        let err = t
            .add_entry(
                &spec,
                vec![KeyField::Exact(Value::new(99, 32))],
                0,
                ActionId(0),
                vec![],
                0,
            )
            .unwrap_err();
        assert_eq!(err, TableError::TableFull { capacity: 2 });
    }

    #[test]
    fn key_validation() {
        let mut spec = mkspec(&[MatchKind::Exact, MatchKind::Ternary]);
        remap(&mut spec, INTR_COUNT);
        let mut t = Table::new(&spec);
        // wrong arity
        assert!(matches!(
            t.add_entry(
                &spec,
                vec![KeyField::Exact(Value::new(0, 32))],
                0,
                ActionId(0),
                vec![],
                0
            ),
            Err(TableError::KeyArityMismatch { .. })
        ));
        // wrong kind
        assert!(matches!(
            t.add_entry(
                &spec,
                vec![
                    KeyField::Ternary {
                        value: Value::zero(32),
                        mask: Value::zero(32)
                    },
                    KeyField::Ternary {
                        value: Value::zero(32),
                        mask: Value::zero(32)
                    },
                ],
                0,
                ActionId(0),
                vec![],
                0
            ),
            Err(TableError::KeyKindMismatch { index: 0, .. })
        ));
        // unknown action
        assert!(matches!(
            t.add_entry(
                &spec,
                vec![
                    KeyField::Exact(Value::zero(32)),
                    KeyField::Ternary {
                        value: Value::zero(32),
                        mask: Value::zero(32)
                    },
                ],
                0,
                ActionId(9),
                vec![],
                0
            ),
            Err(TableError::UnknownAction(_))
        ));
    }

    #[test]
    fn keyless_table_runs_default() {
        let mut spec = mkspec(&[]);
        spec.key.clear();
        let mut t = Table::new(&spec);
        assert!(matches!(
            t.lookup(&spec, &phv_with(&[0])),
            Lookup::Default {
                action: ActionId(1),
                ..
            }
        ));
    }

    #[test]
    fn normalize_key_resizes() {
        let spec = mkspec(&[MatchKind::Exact]);
        let key = Table::normalize_key(&spec, vec![KeyField::Exact(Value::new(0x1_0000_0001, 64))]);
        match &key[0] {
            KeyField::Exact(v) => {
                assert_eq!(v.width(), 32);
                assert_eq!(v.bits(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
