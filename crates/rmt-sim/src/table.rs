//! Runtime match-action tables.
//!
//! Semantics mirror an RMT TCAM/SRAM unit:
//!
//! * **exact** keys must match bit-for-bit,
//! * **ternary** keys match under a per-entry mask; among multiple matching
//!   entries the highest `priority` wins (ties broken by insertion order,
//!   oldest first — deterministic),
//! * **lpm** keys match a per-entry prefix; the longest matching prefix wins
//!   (then priority).
//!
//! Single-entry add/modify/delete are atomic with respect to packet
//! processing — exactly the guarantee the Mantis paper builds its
//! serializable update protocol on.
//!
//! Duplicate keys: exact-only tables resolve a re-added identical key to
//! the newest entry (the hash index is overwritten); scan-matched tables
//! (ternary/LPM) tie-break by insertion order, oldest first. The Mantis
//! layers never insert duplicate physical keys (expansion makes keys
//! unique per vv/selector), so the difference is only observable through
//! the raw driver API.
//!
//! # Lookup fast paths
//!
//! Each table keeps an index sized to its match kinds, so per-packet match
//! cost scales with the candidate set, not the table size:
//!
//! * exact-only tables: a hash map from key bits to entry index (O(1)),
//! * single-LPM tables (one `lpm` field, rest `exact`): per-prefix-length
//!   hash buckets probed longest-first; the first populated bucket holds
//!   the winner because prefix length dominates priority in the winner
//!   ordering,
//! * anything else (ternary, multi-LPM): entries pre-sorted by descending
//!   `(prefix_sum, priority, oldest-first)` precedence with per-field
//!   care-bits (`value & mask == target` rows) precomputed, so the scan
//!   early-exits at the first match.
//!
//! All indexes are pure accelerators: the winner is identical to a linear
//! scan with the `(prefix, priority, Reverse(seq))` ordering (property-
//! tested in `tests/`), and nothing about the virtual-clock cost model
//! changes. Lookups also reuse a per-table scratch buffer instead of
//! allocating per packet, and hits hand out `Arc<[Value]>` action data
//! instead of cloning a `Vec`.

use crate::phv::Phv;
use crate::spec::{ActionId, TableSpec};
use p4_ast::{MatchKind, Value};
use std::collections::HashMap as StdHashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// Multiply-rotate hasher (the rustc/Firefox "Fx" construction) for the
/// match indices. Table keys are short, well-distributed bit strings, and
/// the default SipHash costs more than the probe itself on the per-packet
/// path; a keyed DoS-resistant hash buys nothing here because entries
/// come from the control plane, not the wire.
#[derive(Default)]
struct FxHasher(u64);

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.0 = (self.0.rotate_left(5) ^ w).wrapping_mul(SEED);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = [0u8; 8];
            w[..rest.len()].copy_from_slice(rest);
            self.0 = (self.0.rotate_left(5) ^ u64::from_le_bytes(w)).wrapping_mul(SEED);
        }
    }
}

type HashMap<K, V> = StdHashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Opaque handle to an installed entry, unique within a table for the
/// lifetime of the switch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntryHandle(pub u64);

impl fmt::Debug for EntryHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EntryHandle({})", self.0)
    }
}

/// One component of an entry's match key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeyField {
    Exact(Value),
    Ternary { value: Value, mask: Value },
    Lpm { value: Value, prefix_len: u16 },
}

impl KeyField {
    fn matches(&self, field: Value, static_mask: Option<Value>) -> bool {
        let field = match static_mask {
            Some(m) => field.and(m),
            None => field,
        };
        match self {
            KeyField::Exact(v) => field.bits() == v.bits(),
            KeyField::Ternary { value, mask } => field.matches_ternary(*value, *mask),
            KeyField::Lpm { value, prefix_len } => field.matches_prefix(*value, *prefix_len),
        }
    }

    /// LPM specificity used for longest-prefix ordering.
    fn prefix_len(&self) -> u16 {
        match self {
            KeyField::Lpm { prefix_len, .. } => *prefix_len,
            _ => 0,
        }
    }

    /// Care-bits row `(mask, target)` for this key field over a field of
    /// `width` bits: the field value `f` (already static-masked, `< 2^width`)
    /// matches iff `f & mask == target`.
    ///
    /// A `target` with bits outside `mask` can never match — that encodes
    /// the bit-for-bit semantics for values wider than the field (exact
    /// compares raw bits; LPM compares the full shifted pattern).
    fn care_bits(&self, width: u16) -> (u128, u128) {
        match self {
            KeyField::Exact(v) => (!0u128, v.bits()),
            KeyField::Ternary { value, mask } => (mask.bits(), value.bits() & mask.bits()),
            KeyField::Lpm { value, prefix_len } => {
                if *prefix_len == 0 {
                    (0, 0)
                } else {
                    let shift = u32::from(width.saturating_sub(*prefix_len));
                    let mask = prefix_mask(width, *prefix_len);
                    // Keep pattern bits above the field width: they make the
                    // row unmatchable, same as `matches_prefix`.
                    (mask, (value.bits() >> shift) << shift)
                }
            }
        }
    }
}

/// Mask selecting the top `prefix_len` bits of a `width`-bit field.
fn prefix_mask(width: u16, prefix_len: u16) -> u128 {
    if prefix_len == 0 {
        return 0;
    }
    let p = prefix_len.min(width);
    let ones = if p >= 128 { !0u128 } else { (1u128 << p) - 1 };
    ones << u32::from(width - p)
}

/// An installed table entry.
#[derive(Clone, Debug)]
pub struct Entry {
    pub handle: EntryHandle,
    pub key: Vec<KeyField>,
    pub priority: u32,
    pub action: ActionId,
    pub action_data: Arc<[Value]>,
    /// Insertion sequence for deterministic tie-breaks.
    seq: u64,
}

/// Errors from control-plane table operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableError {
    KeyArityMismatch { expected: usize, got: usize },
    KeyKindMismatch { index: usize, expected: MatchKind },
    UnknownHandle(EntryHandle),
    UnknownAction(ActionId),
    TableFull { capacity: u32 },
    ActionDataArity { expected: usize, got: usize },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::KeyArityMismatch { expected, got } => {
                write!(
                    f,
                    "key arity mismatch: expected {expected} fields, got {got}"
                )
            }
            TableError::KeyKindMismatch { index, expected } => {
                write!(f, "key field {index} must be a {expected} match")
            }
            TableError::UnknownHandle(h) => write!(f, "no entry with handle {h:?}"),
            TableError::UnknownAction(a) => write!(f, "action {a:?} is not bound to this table"),
            TableError::TableFull { capacity } => write!(f, "table full (capacity {capacity})"),
            TableError::ActionDataArity { expected, got } => {
                write!(
                    f,
                    "action data arity mismatch: expected {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for TableError {}

/// Which accelerator structure a table uses (derived from the key spec).
#[derive(Clone, Debug)]
enum Index {
    /// All-exact key: hash map from key bits to entry index. Duplicate keys
    /// resolve to the newest entry (insert overwrites).
    Exact(HashMap<Vec<u128>, usize>),
    /// Exactly one `lpm` field, all others `exact`: per-prefix-length hash
    /// buckets, probed longest prefix first.
    Lpm(LpmIndex),
    /// General case (ternary or several LPM fields): entries in descending
    /// precedence order with precomputed care-bits rows.
    Scan(ScanIndex),
}

#[derive(Clone, Debug)]
struct LpmIndex {
    /// Position of the `lpm` field in the key.
    lpm_pos: usize,
    /// Spec width of the `lpm` field.
    width: u16,
    /// Levels sorted by descending `prefix_len`; each maps the key bits
    /// (exact fields raw, LPM field masked to the prefix) to the entry
    /// indices carrying that key, sorted best-first by
    /// `(priority desc, seq asc)`.
    levels: Vec<LpmLevel>,
}

#[derive(Clone, Debug)]
struct LpmLevel {
    prefix_len: u16,
    mask: u128,
    buckets: HashMap<Vec<u128>, Vec<usize>>,
}

/// Precedence key for scan-ordered entries: higher sorts first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Prec {
    prefix: u32,
    priority: u32,
    seq: u64,
}

impl Prec {
    fn rank(&self) -> (u32, u32, std::cmp::Reverse<u64>) {
        (self.prefix, self.priority, std::cmp::Reverse(self.seq))
    }
}

impl PartialOrd for Prec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Prec {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

#[derive(Clone, Debug, Default)]
struct ScanIndex {
    /// Rows in descending precedence order; the first matching row wins.
    order: Vec<ScanRow>,
}

#[derive(Clone, Debug)]
struct ScanRow {
    /// Index into `Table::entries`.
    idx: usize,
    prec: Prec,
    /// Per-field `(mask, target)` care-bits: the row matches iff every
    /// field value satisfies `f & mask == target`.
    rows: Box<[(u128, u128)]>,
}

impl ScanRow {
    #[inline]
    fn matches(&self, field_bits: &[u128]) -> bool {
        self.rows
            .iter()
            .zip(field_bits.iter())
            .all(|((mask, target), f)| f & mask == *target)
    }
}

/// A runtime table instance.
#[derive(Clone, Debug)]
pub struct Table {
    /// Entries in insertion order (the driver-visible view).
    entries: Vec<Entry>,
    index: Index,
    default_action: Option<(ActionId, Arc<[Value]>)>,
    next_handle: u64,
    next_seq: u64,
    capacity: u32,
    /// Lookup and hit/miss counters (for stats and tests).
    pub lookups: u64,
    pub hits: u64,
    /// Reusable per-lookup buffer of static-masked field bits.
    scratch_bits: Vec<u128>,
    /// Reusable probe-key buffer for the LPM index.
    scratch_key: Vec<u128>,
}

/// The outcome of a table lookup.
#[derive(Clone, Debug, PartialEq)]
pub enum Lookup {
    Hit {
        handle: EntryHandle,
        action: ActionId,
        action_data: Arc<[Value]>,
    },
    Default {
        action: ActionId,
        action_data: Arc<[Value]>,
    },
    Miss,
}

impl Table {
    pub fn new(spec: &TableSpec) -> Self {
        let index = if !spec.key.is_empty() && spec.key.iter().all(|k| k.kind == MatchKind::Exact) {
            Index::Exact(HashMap::default())
        } else if let Some(lpm_pos) = single_lpm_pos(spec) {
            Index::Lpm(LpmIndex {
                lpm_pos,
                width: spec.key[lpm_pos].width,
                levels: Vec::new(),
            })
        } else {
            Index::Scan(ScanIndex::default())
        };
        Table {
            entries: Vec::new(),
            index,
            default_action: spec
                .default_action
                .as_ref()
                .map(|(a, d)| (*a, Arc::from(d.as_slice()))),
            next_handle: 1,
            next_seq: 0,
            capacity: spec.size,
            lookups: 0,
            hits: 0,
            scratch_bits: Vec::new(),
            scratch_key: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    pub fn entries(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }

    pub fn default_action(&self) -> Option<&(ActionId, Arc<[Value]>)> {
        self.default_action.as_ref()
    }

    pub fn set_default(&mut self, action: ActionId, data: Vec<Value>) {
        self.default_action = Some((action, Arc::from(data)));
    }

    fn validate_key(&self, spec: &TableSpec, key: &[KeyField]) -> Result<(), TableError> {
        if key.len() != spec.key.len() {
            return Err(TableError::KeyArityMismatch {
                expected: spec.key.len(),
                got: key.len(),
            });
        }
        for (i, (kf, ks)) in key.iter().zip(spec.key.iter()).enumerate() {
            let ok = matches!(
                (kf, ks.kind),
                (KeyField::Exact(_), MatchKind::Exact)
                    | (KeyField::Ternary { .. }, MatchKind::Ternary)
                    | (KeyField::Lpm { .. }, MatchKind::Lpm)
            );
            if !ok {
                return Err(TableError::KeyKindMismatch {
                    index: i,
                    expected: ks.kind,
                });
            }
        }
        Ok(())
    }

    fn validate_action(
        &self,
        spec: &TableSpec,
        action: ActionId,
        data_len: usize,
        param_count: usize,
    ) -> Result<(), TableError> {
        if !spec.actions.contains(&action) {
            return Err(TableError::UnknownAction(action));
        }
        if data_len != param_count {
            return Err(TableError::ActionDataArity {
                expected: param_count,
                got: data_len,
            });
        }
        Ok(())
    }

    /// Install a new entry. `param_count` is the arity of `action` (the
    /// switch resolves it from the action table).
    #[allow(clippy::too_many_arguments)]
    pub fn add_entry(
        &mut self,
        spec: &TableSpec,
        key: Vec<KeyField>,
        priority: u32,
        action: ActionId,
        action_data: Vec<Value>,
        param_count: usize,
    ) -> Result<EntryHandle, TableError> {
        let handle = EntryHandle(self.next_handle);
        self.add_entry_at(
            spec,
            handle,
            key,
            priority,
            action,
            action_data,
            param_count,
        )?;
        Ok(handle)
    }

    /// Install a new entry under a caller-chosen handle. The switch uses
    /// this to fan one logical add out to every pipe under a single
    /// shared handle; the local counter is advanced past `handle` so
    /// later self-allocated adds never collide.
    #[allow(clippy::too_many_arguments)]
    pub fn add_entry_at(
        &mut self,
        spec: &TableSpec,
        handle: EntryHandle,
        key: Vec<KeyField>,
        priority: u32,
        action: ActionId,
        action_data: Vec<Value>,
        param_count: usize,
    ) -> Result<(), TableError> {
        self.validate_key(spec, &key)?;
        self.validate_action(spec, action, action_data.len(), param_count)?;
        if self.entries.len() as u32 >= self.capacity {
            return Err(TableError::TableFull {
                capacity: self.capacity,
            });
        }
        self.next_handle = self.next_handle.max(handle.0 + 1);
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.entries.len();
        match &mut self.index {
            Index::Exact(map) => {
                map.insert(exact_key_bits(&key), idx);
            }
            Index::Lpm(lpm) => lpm.insert(&key, priority, seq, idx, &self.entries),
            Index::Scan(scan) => scan.insert(spec, &key, priority, seq, idx),
        }
        self.entries.push(Entry {
            handle,
            key,
            priority,
            action,
            action_data: Arc::from(action_data),
            seq,
        });
        Ok(())
    }

    /// Replace the action/action-data of an existing entry (the key and
    /// priority are immutable, matching real switch drivers).
    pub fn mod_entry(
        &mut self,
        spec: &TableSpec,
        handle: EntryHandle,
        action: ActionId,
        action_data: Vec<Value>,
        param_count: usize,
    ) -> Result<(), TableError> {
        self.validate_action(spec, action, action_data.len(), param_count)?;
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.handle == handle)
            .ok_or(TableError::UnknownHandle(handle))?;
        e.action = action;
        e.action_data = Arc::from(action_data);
        Ok(())
    }

    /// Remove an entry. The index is patched incrementally: only the
    /// displaced positions (entries after the removed one) are shifted,
    /// never rebuilt from scratch.
    pub fn del_entry(&mut self, handle: EntryHandle) -> Result<Entry, TableError> {
        let idx = self
            .entries
            .iter()
            .position(|e| e.handle == handle)
            .ok_or(TableError::UnknownHandle(handle))?;
        let e = self.entries.remove(idx);
        match &mut self.index {
            Index::Exact(map) => {
                let bits = exact_key_bits(&e.key);
                if map.get(&bits) == Some(&idx) {
                    // If a shadowed duplicate of the same key remains, it
                    // becomes visible again (newest survivor wins, matching
                    // the old full-rebuild behavior).
                    match self
                        .entries
                        .iter()
                        .enumerate()
                        .filter(|(_, o)| exact_key_bits(&o.key) == bits)
                        .max_by_key(|(_, o)| o.seq)
                    {
                        Some((i, _)) => {
                            map.insert(bits, i);
                        }
                        None => {
                            map.remove(&bits);
                        }
                    }
                }
                for v in map.values_mut() {
                    if *v > idx {
                        *v -= 1;
                    }
                }
            }
            Index::Lpm(lpm) => lpm.remove(&e.key, idx),
            Index::Scan(scan) => scan.remove(idx),
        }
        Ok(e)
    }

    /// Look up the winning entry for the current PHV.
    pub fn lookup(&mut self, spec: &TableSpec, phv: &Phv) -> Lookup {
        self.lookups += 1;
        if spec.key.is_empty() {
            // Keyless tables always run their default action.
            return self.default_lookup();
        }

        // Static-masked field bits, reusing the table-owned scratch buffer.
        self.scratch_bits.clear();
        for k in &spec.key {
            let v = phv.get(k.field);
            let b = match k.static_mask {
                Some(m) => v.bits() & m.bits(),
                None => v.bits(),
            };
            self.scratch_bits.push(b);
        }

        let winner: Option<usize> = match &self.index {
            Index::Exact(map) => map.get(self.scratch_bits.as_slice()).copied(),
            Index::Lpm(lpm) => lpm.probe(&self.scratch_bits, &mut self.scratch_key),
            Index::Scan(scan) => scan
                .order
                .iter()
                .find(|row| row.matches(&self.scratch_bits))
                .map(|row| row.idx),
        };

        if let Some(i) = winner {
            let e = &self.entries[i];
            self.hits += 1;
            return Lookup::Hit {
                handle: e.handle,
                action: e.action,
                action_data: Arc::clone(&e.action_data),
            };
        }
        self.default_lookup()
    }

    fn default_lookup(&self) -> Lookup {
        match &self.default_action {
            Some((a, d)) => Lookup::Default {
                action: *a,
                action_data: Arc::clone(d),
            },
            None => Lookup::Miss,
        }
    }

    /// Normalize a user-provided key to the spec's field widths. Exposed so
    /// that the driver layer can accept plain `u128` keys.
    pub fn normalize_key(spec: &TableSpec, key: Vec<KeyField>) -> Vec<KeyField> {
        key.into_iter()
            .zip(spec.key.iter())
            .map(|(kf, ks)| match kf {
                KeyField::Exact(v) => KeyField::Exact(v.resize(ks.width)),
                KeyField::Ternary { value, mask } => KeyField::Ternary {
                    value: value.resize(ks.width),
                    mask: mask.resize(ks.width),
                },
                KeyField::Lpm { value, prefix_len } => KeyField::Lpm {
                    value: value.resize(ks.width),
                    prefix_len: prefix_len.min(ks.width),
                },
            })
            .collect()
    }

    /// Reference linear-scan lookup (the pre-index semantics). Kept for the
    /// differential property tests and the bench harness baseline; must
    /// always agree with [`Table::lookup`], including the exact-only
    /// duplicate-key rule (newest entry wins — see the module docs).
    pub fn lookup_linear(&self, spec: &TableSpec, phv: &Phv) -> Lookup {
        if spec.key.is_empty() {
            return self.default_lookup();
        }
        let field_vals: Vec<Value> = spec
            .key
            .iter()
            .map(|k| {
                let v = phv.get(k.field);
                match k.static_mask {
                    Some(m) => v.and(m),
                    None => v,
                }
            })
            .collect();
        if spec.key.iter().all(|k| k.kind == MatchKind::Exact) {
            let winner = self
                .entries
                .iter()
                .filter(|e| {
                    e.key
                        .iter()
                        .zip(field_vals.iter())
                        .all(|(kf, fv)| kf.matches(*fv, None))
                })
                .max_by_key(|e| e.seq);
            if let Some(e) = winner {
                return Lookup::Hit {
                    handle: e.handle,
                    action: e.action,
                    action_data: Arc::clone(&e.action_data),
                };
            }
            return self.default_lookup();
        }
        let mut best: Option<&Entry> = None;
        let mut best_prefix: u32 = 0;
        for e in &self.entries {
            let all = e
                .key
                .iter()
                .zip(field_vals.iter())
                .all(|(kf, fv)| kf.matches(*fv, None));
            if !all {
                continue;
            }
            let prefix: u32 = e.key.iter().map(|k| u32::from(k.prefix_len())).sum();
            let better = match best {
                None => true,
                Some(b) => {
                    (prefix, e.priority, std::cmp::Reverse(e.seq))
                        > (best_prefix, b.priority, std::cmp::Reverse(b.seq))
                }
            };
            if better {
                best = Some(e);
                best_prefix = prefix;
            }
        }
        if let Some(e) = best {
            return Lookup::Hit {
                handle: e.handle,
                action: e.action,
                action_data: Arc::clone(&e.action_data),
            };
        }
        self.default_lookup()
    }
}

/// Position of the single `lpm` key field if every other field is `exact`.
fn single_lpm_pos(spec: &TableSpec) -> Option<usize> {
    let mut pos = None;
    for (i, k) in spec.key.iter().enumerate() {
        match k.kind {
            MatchKind::Lpm if pos.is_none() => pos = Some(i),
            MatchKind::Exact => {}
            _ => return None,
        }
    }
    pos
}

impl LpmIndex {
    /// Probe key for an entry: exact fields raw, the LPM field reduced to
    /// its prefix bits (keeping out-of-width pattern bits, which makes the
    /// entry unmatchable — same as `matches_prefix`).
    fn entry_key(&self, key: &[KeyField], prefix_len: u16) -> Vec<u128> {
        key.iter()
            .enumerate()
            .map(|(i, kf)| match kf {
                KeyField::Exact(v) => v.bits(),
                KeyField::Lpm { value, .. } => {
                    if prefix_len == 0 {
                        0
                    } else {
                        let shift = u32::from(self.width.saturating_sub(prefix_len));
                        (value.bits() >> shift) << shift
                    }
                }
                KeyField::Ternary { .. } => unreachable!("ternary field {i} in LPM index"),
            })
            .collect()
    }

    fn insert(&mut self, key: &[KeyField], priority: u32, seq: u64, idx: usize, entries: &[Entry]) {
        let prefix_len = key[self.lpm_pos].prefix_len();
        let bits = self.entry_key(key, prefix_len);
        let level_pos = match self
            .levels
            .binary_search_by(|l| prefix_len.cmp(&l.prefix_len))
        {
            Ok(p) => p,
            Err(p) => {
                self.levels.insert(
                    p,
                    LpmLevel {
                        prefix_len,
                        mask: prefix_mask(self.width, prefix_len),
                        buckets: HashMap::default(),
                    },
                );
                p
            }
        };
        let bucket = self.levels[level_pos].buckets.entry(bits).or_default();
        // Keep best-first: (priority desc, seq asc). `seq` is unique, so the
        // position is total-ordered.
        let pos = bucket.partition_point(|&other| {
            let o = &entries[other];
            (o.priority, std::cmp::Reverse(o.seq)) > (priority, std::cmp::Reverse(seq))
        });
        bucket.insert(pos, idx);
    }

    fn remove(&mut self, key: &[KeyField], idx: usize) {
        let prefix_len = key[self.lpm_pos].prefix_len();
        let bits = self.entry_key(key, prefix_len);
        if let Some(level_pos) = self.levels.iter().position(|l| l.prefix_len == prefix_len) {
            let level = &mut self.levels[level_pos];
            if let Some(bucket) = level.buckets.get_mut(&bits) {
                bucket.retain(|&i| i != idx);
                if bucket.is_empty() {
                    level.buckets.remove(&bits);
                }
            }
            if level.buckets.is_empty() {
                self.levels.remove(level_pos);
            }
        }
        for level in &mut self.levels {
            for bucket in level.buckets.values_mut() {
                for v in bucket.iter_mut() {
                    if *v > idx {
                        *v -= 1;
                    }
                }
            }
        }
    }

    /// Longest-prefix-first probe; the first populated bucket's best entry
    /// is the overall winner (prefix length dominates priority).
    fn probe(&self, field_bits: &[u128], scratch_key: &mut Vec<u128>) -> Option<usize> {
        scratch_key.clear();
        scratch_key.extend_from_slice(field_bits);
        for level in &self.levels {
            scratch_key[self.lpm_pos] = field_bits[self.lpm_pos] & level.mask;
            if let Some(bucket) = level.buckets.get(scratch_key.as_slice()) {
                return bucket.first().copied();
            }
        }
        None
    }
}

impl ScanIndex {
    fn insert(&mut self, spec: &TableSpec, key: &[KeyField], priority: u32, seq: u64, idx: usize) {
        let prec = Prec {
            prefix: key.iter().map(|k| u32::from(k.prefix_len())).sum(),
            priority,
            seq,
        };
        let rows: Box<[(u128, u128)]> = key
            .iter()
            .zip(spec.key.iter())
            .map(|(kf, ks)| kf.care_bits(ks.width))
            .collect();
        let pos = self.order.partition_point(|row| row.prec > prec);
        self.order.insert(pos, ScanRow { idx, prec, rows });
    }

    fn remove(&mut self, idx: usize) {
        self.order.retain(|row| row.idx != idx);
        for row in &mut self.order {
            if row.idx > idx {
                row.idx -= 1;
            }
        }
    }
}

fn exact_key_bits(key: &[KeyField]) -> Vec<u128> {
    key.iter()
        .map(|k| match k {
            KeyField::Exact(v) => v.bits(),
            _ => unreachable!("exact index on non-exact key"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FieldId, KeySpec};
    use p4_ast::Pipeline;

    fn mkspec(kinds: &[MatchKind]) -> TableSpec {
        TableSpec {
            name: "t".into(),
            key: kinds
                .iter()
                .enumerate()
                .map(|(i, k)| KeySpec {
                    field: FieldId(i as u32),
                    kind: *k,
                    width: 32,
                    static_mask: None,
                })
                .collect(),
            actions: vec![ActionId(0), ActionId(1)],
            default_action: Some((ActionId(1), vec![])),
            size: 4,
            malleable: false,
            stage: 0,
            pipeline: Pipeline::Ingress,
        }
    }

    /// Minimal fake PHV: field i has value vals[i].
    fn phv_with(vals: &[u128]) -> Phv {
        // Build a spec with enough 32-bit fields.
        use crate::spec::load;
        let fields: String = (0..vals.len())
            .map(|i| format!("f{i} : 32;"))
            .collect::<Vec<_>>()
            .join(" ");
        let src = format!("header_type m_t {{ fields {{ {fields} }} }} metadata m_t m;");
        let prog = p4r_lang::parse_program(&src).unwrap();
        let spec = load(&prog).unwrap();
        let mut phv = Phv::new(&spec);
        for (i, v) in vals.iter().enumerate() {
            let id = spec.field_id("m", &format!("f{i}")).unwrap();
            phv.set(id, Value::new(*v, 32));
        }
        phv
    }

    /// Remap table spec key fields to the fake PHV's field ids (intrinsics
    /// occupy the first ids).
    fn remap(spec: &mut TableSpec, base: u32) {
        for (i, k) in spec.key.iter_mut().enumerate() {
            k.field = FieldId(base + i as u32);
        }
    }

    const INTR_COUNT: u32 = crate::spec::INTR_FIELDS.len() as u32;

    #[test]
    fn exact_match_hit_and_miss() {
        let mut spec = mkspec(&[MatchKind::Exact]);
        remap(&mut spec, INTR_COUNT);
        let mut t = Table::new(&spec);
        let h = t
            .add_entry(
                &spec,
                vec![KeyField::Exact(Value::new(7, 32))],
                0,
                ActionId(0),
                vec![],
                0,
            )
            .unwrap();
        match t.lookup(&spec, &phv_with(&[7])) {
            Lookup::Hit { handle, action, .. } => {
                assert_eq!(handle, h);
                assert_eq!(action, ActionId(0));
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(matches!(
            t.lookup(&spec, &phv_with(&[8])),
            Lookup::Default {
                action: ActionId(1),
                ..
            }
        ));
        assert_eq!(t.lookups, 2);
        assert_eq!(t.hits, 1);
    }

    #[test]
    fn ternary_priority_wins() {
        let mut spec = mkspec(&[MatchKind::Ternary]);
        remap(&mut spec, INTR_COUNT);
        let mut t = Table::new(&spec);
        t.add_entry(
            &spec,
            vec![KeyField::Ternary {
                value: Value::zero(32),
                mask: Value::zero(32), // wildcard
            }],
            1,
            ActionId(0),
            vec![],
            0,
        )
        .unwrap();
        let hi = t
            .add_entry(
                &spec,
                vec![KeyField::Ternary {
                    value: Value::new(5, 32),
                    mask: Value::ones(32),
                }],
                10,
                ActionId(1),
                vec![],
                0,
            )
            .unwrap();
        match t.lookup(&spec, &phv_with(&[5])) {
            Lookup::Hit { handle, .. } => assert_eq!(handle, hi),
            other => panic!("expected hit, got {other:?}"),
        }
        // Non-5 packets fall to the wildcard.
        match t.lookup(&spec, &phv_with(&[9])) {
            Lookup::Hit { action, .. } => assert_eq!(action, ActionId(0)),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn ternary_tie_break_is_insertion_order() {
        let mut spec = mkspec(&[MatchKind::Ternary]);
        remap(&mut spec, INTR_COUNT);
        let mut t = Table::new(&spec);
        let first = t
            .add_entry(
                &spec,
                vec![KeyField::Ternary {
                    value: Value::zero(32),
                    mask: Value::zero(32),
                }],
                5,
                ActionId(0),
                vec![],
                0,
            )
            .unwrap();
        t.add_entry(
            &spec,
            vec![KeyField::Ternary {
                value: Value::zero(32),
                mask: Value::zero(32),
            }],
            5,
            ActionId(1),
            vec![],
            0,
        )
        .unwrap();
        match t.lookup(&spec, &phv_with(&[1])) {
            Lookup::Hit { handle, .. } => assert_eq!(handle, first),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let mut spec = mkspec(&[MatchKind::Lpm]);
        remap(&mut spec, INTR_COUNT);
        let mut t = Table::new(&spec);
        t.add_entry(
            &spec,
            vec![KeyField::Lpm {
                value: Value::new(0x0a000000, 32),
                prefix_len: 8,
            }],
            0,
            ActionId(0),
            vec![],
            0,
        )
        .unwrap();
        let h24 = t
            .add_entry(
                &spec,
                vec![KeyField::Lpm {
                    value: Value::new(0x0a000100, 32),
                    prefix_len: 24,
                }],
                0,
                ActionId(1),
                vec![],
                0,
            )
            .unwrap();
        match t.lookup(&spec, &phv_with(&[0x0a000105])) {
            Lookup::Hit { handle, .. } => assert_eq!(handle, h24),
            other => panic!("expected hit, got {other:?}"),
        }
        match t.lookup(&spec, &phv_with(&[0x0a990105])) {
            Lookup::Hit { action, .. } => assert_eq!(action, ActionId(0)),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn lpm_del_then_fallback_to_shorter_prefix() {
        let mut spec = mkspec(&[MatchKind::Lpm]);
        remap(&mut spec, INTR_COUNT);
        let mut t = Table::new(&spec);
        let h8 = t
            .add_entry(
                &spec,
                vec![KeyField::Lpm {
                    value: Value::new(0x0a000000, 32),
                    prefix_len: 8,
                }],
                0,
                ActionId(0),
                vec![],
                0,
            )
            .unwrap();
        let h24 = t
            .add_entry(
                &spec,
                vec![KeyField::Lpm {
                    value: Value::new(0x0a000100, 32),
                    prefix_len: 24,
                }],
                0,
                ActionId(1),
                vec![],
                0,
            )
            .unwrap();
        t.del_entry(h24).unwrap();
        match t.lookup(&spec, &phv_with(&[0x0a000105])) {
            Lookup::Hit { handle, .. } => assert_eq!(handle, h8),
            other => panic!("expected hit, got {other:?}"),
        }
        t.del_entry(h8).unwrap();
        assert!(matches!(
            t.lookup(&spec, &phv_with(&[0x0a000105])),
            Lookup::Default { .. }
        ));
    }

    #[test]
    fn lpm_with_exact_companion_field() {
        let mut spec = mkspec(&[MatchKind::Exact, MatchKind::Lpm]);
        remap(&mut spec, INTR_COUNT);
        let mut t = Table::new(&spec);
        let h = t
            .add_entry(
                &spec,
                vec![
                    KeyField::Exact(Value::new(4, 32)),
                    KeyField::Lpm {
                        value: Value::new(0x0a000000, 32),
                        prefix_len: 16,
                    },
                ],
                0,
                ActionId(0),
                vec![],
                0,
            )
            .unwrap();
        match t.lookup(&spec, &phv_with(&[4, 0x0a00ffff])) {
            Lookup::Hit { handle, .. } => assert_eq!(handle, h),
            other => panic!("expected hit, got {other:?}"),
        }
        // Wrong exact companion → default.
        assert!(matches!(
            t.lookup(&spec, &phv_with(&[5, 0x0a00ffff])),
            Lookup::Default { .. }
        ));
    }

    #[test]
    fn scan_del_shifts_displaced_indices() {
        let mut spec = mkspec(&[MatchKind::Ternary]);
        remap(&mut spec, INTR_COUNT);
        spec.size = 8;
        let mut t = Table::new(&spec);
        let mk = |v: u128| KeyField::Ternary {
            value: Value::new(v, 32),
            mask: Value::ones(32),
        };
        let h1 = t
            .add_entry(&spec, vec![mk(1)], 0, ActionId(0), vec![], 0)
            .unwrap();
        let h2 = t
            .add_entry(&spec, vec![mk(2)], 0, ActionId(0), vec![], 0)
            .unwrap();
        let h3 = t
            .add_entry(&spec, vec![mk(3)], 0, ActionId(1), vec![], 0)
            .unwrap();
        t.del_entry(h1).unwrap();
        // h2/h3 shifted down by one; lookups must still resolve them.
        match t.lookup(&spec, &phv_with(&[2])) {
            Lookup::Hit { handle, .. } => assert_eq!(handle, h2),
            other => panic!("expected hit, got {other:?}"),
        }
        match t.lookup(&spec, &phv_with(&[3])) {
            Lookup::Hit { handle, action, .. } => {
                assert_eq!(handle, h3);
                assert_eq!(action, ActionId(1));
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(matches!(
            t.lookup(&spec, &phv_with(&[1])),
            Lookup::Default { .. }
        ));
    }

    #[test]
    fn exact_del_restores_shadowed_duplicate() {
        let mut spec = mkspec(&[MatchKind::Exact]);
        remap(&mut spec, INTR_COUNT);
        let mut t = Table::new(&spec);
        let old = t
            .add_entry(
                &spec,
                vec![KeyField::Exact(Value::new(7, 32))],
                0,
                ActionId(0),
                vec![],
                0,
            )
            .unwrap();
        let newer = t
            .add_entry(
                &spec,
                vec![KeyField::Exact(Value::new(7, 32))],
                0,
                ActionId(1),
                vec![],
                0,
            )
            .unwrap();
        // Newest duplicate wins while installed.
        match t.lookup(&spec, &phv_with(&[7])) {
            Lookup::Hit { handle, .. } => assert_eq!(handle, newer),
            other => panic!("expected hit, got {other:?}"),
        }
        t.del_entry(newer).unwrap();
        // The shadowed entry becomes visible again.
        match t.lookup(&spec, &phv_with(&[7])) {
            Lookup::Hit { handle, .. } => assert_eq!(handle, old),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn indexed_lookup_matches_linear_reference() {
        let mut spec = mkspec(&[MatchKind::Ternary, MatchKind::Lpm]);
        remap(&mut spec, INTR_COUNT);
        spec.size = 64;
        let mut t = Table::new(&spec);
        // A deterministic little generator (no external rand).
        let mut s: u64 = 0x9e3779b97f4a7c15;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..40 {
            let key = vec![
                KeyField::Ternary {
                    value: Value::new(u128::from(next() & 0xffff), 32),
                    mask: Value::new(u128::from(next() & 0xffff), 32),
                },
                KeyField::Lpm {
                    value: Value::new(u128::from(next() as u32), 32),
                    prefix_len: (next() % 33) as u16,
                },
            ];
            let prio = (next() % 4) as u32;
            t.add_entry(&spec, key, prio, ActionId(0), vec![], 0)
                .unwrap();
        }
        for _ in 0..200 {
            let phv = phv_with(&[u128::from(next() & 0xffff), u128::from(next() as u32)]);
            let fast = t.lookup(&spec, &phv);
            let slow = t.lookup_linear(&spec, &phv);
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn mod_and_del_entry() {
        let mut spec = mkspec(&[MatchKind::Exact]);
        remap(&mut spec, INTR_COUNT);
        let mut t = Table::new(&spec);
        let h = t
            .add_entry(
                &spec,
                vec![KeyField::Exact(Value::new(1, 32))],
                0,
                ActionId(0),
                vec![],
                0,
            )
            .unwrap();
        t.mod_entry(&spec, h, ActionId(1), vec![], 0).unwrap();
        match t.lookup(&spec, &phv_with(&[1])) {
            Lookup::Hit { action, .. } => assert_eq!(action, ActionId(1)),
            other => panic!("expected hit, got {other:?}"),
        }
        t.del_entry(h).unwrap();
        assert!(matches!(
            t.lookup(&spec, &phv_with(&[1])),
            Lookup::Default { .. }
        ));
        assert_eq!(t.del_entry(h).unwrap_err(), TableError::UnknownHandle(h));
    }

    #[test]
    fn capacity_enforced() {
        let mut spec = mkspec(&[MatchKind::Exact]);
        remap(&mut spec, INTR_COUNT);
        spec.size = 2;
        let mut t = Table::new(&spec);
        for i in 0..2 {
            t.add_entry(
                &spec,
                vec![KeyField::Exact(Value::new(i, 32))],
                0,
                ActionId(0),
                vec![],
                0,
            )
            .unwrap();
        }
        let err = t
            .add_entry(
                &spec,
                vec![KeyField::Exact(Value::new(99, 32))],
                0,
                ActionId(0),
                vec![],
                0,
            )
            .unwrap_err();
        assert_eq!(err, TableError::TableFull { capacity: 2 });
    }

    #[test]
    fn key_validation() {
        let mut spec = mkspec(&[MatchKind::Exact, MatchKind::Ternary]);
        remap(&mut spec, INTR_COUNT);
        let mut t = Table::new(&spec);
        // wrong arity
        assert!(matches!(
            t.add_entry(
                &spec,
                vec![KeyField::Exact(Value::new(0, 32))],
                0,
                ActionId(0),
                vec![],
                0
            ),
            Err(TableError::KeyArityMismatch { .. })
        ));
        // wrong kind
        assert!(matches!(
            t.add_entry(
                &spec,
                vec![
                    KeyField::Ternary {
                        value: Value::zero(32),
                        mask: Value::zero(32)
                    },
                    KeyField::Ternary {
                        value: Value::zero(32),
                        mask: Value::zero(32)
                    },
                ],
                0,
                ActionId(0),
                vec![],
                0
            ),
            Err(TableError::KeyKindMismatch { index: 0, .. })
        ));
        // unknown action
        assert!(matches!(
            t.add_entry(
                &spec,
                vec![
                    KeyField::Exact(Value::zero(32)),
                    KeyField::Ternary {
                        value: Value::zero(32),
                        mask: Value::zero(32)
                    },
                ],
                0,
                ActionId(9),
                vec![],
                0
            ),
            Err(TableError::UnknownAction(_))
        ));
    }

    #[test]
    fn keyless_table_runs_default() {
        let mut spec = mkspec(&[]);
        spec.key.clear();
        let mut t = Table::new(&spec);
        assert!(matches!(
            t.lookup(&spec, &phv_with(&[0])),
            Lookup::Default {
                action: ActionId(1),
                ..
            }
        ));
    }

    #[test]
    fn normalize_key_resizes() {
        let spec = mkspec(&[MatchKind::Exact]);
        let key = Table::normalize_key(&spec, vec![KeyField::Exact(Value::new(0x1_0000_0001, 64))]);
        match &key[0] {
            KeyField::Exact(v) => {
                assert_eq!(v.width(), 32);
                assert_eq!(v.bits(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
