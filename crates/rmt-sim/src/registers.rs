//! Stateful register arrays.
//!
//! Data-plane accesses hit a single cell per packet (the RMT constraint);
//! the control plane may read arbitrary ranges through the driver.

use crate::spec::RegisterSpec;
use p4_ast::Value;

/// A runtime register array.
#[derive(Clone, Debug)]
pub struct RegisterArray {
    pub name: String,
    width: u16,
    cells: Vec<Value>,
}

impl RegisterArray {
    pub fn new(spec: &RegisterSpec) -> Self {
        RegisterArray {
            name: spec.name.clone(),
            width: spec.width,
            cells: vec![Value::zero(spec.width); spec.count as usize],
        }
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    pub fn width(&self) -> u16 {
        self.width
    }

    /// Data-plane read. Out-of-range indexes wrap (hardware masks the
    /// index), keeping packet processing total.
    pub fn read(&self, index: usize) -> Value {
        let n = self.cells.len();
        if n == 0 {
            return Value::zero(self.width);
        }
        self.cells[index % n]
    }

    /// Data-plane write; the value is truncated to the register width and
    /// the index wraps.
    pub fn write(&mut self, index: usize, v: Value) {
        let n = self.cells.len();
        if n == 0 {
            return;
        }
        self.cells[index % n] = v.resize(self.width);
    }

    /// Data-plane read-modify-write increment (`count` primitive and
    /// timestamp registers).
    pub fn increment(&mut self, index: usize, by: u64) {
        let cur = self.read(index);
        self.write(
            index,
            cur.wrapping_add(Value::new(u128::from(by), self.width)),
        );
    }

    /// Control-plane range read (inclusive bounds, clamped to the array).
    pub fn read_range(&self, lo: u32, hi: u32) -> Vec<Value> {
        let n = self.cells.len() as u32;
        if n == 0 || lo >= n {
            return Vec::new();
        }
        let hi = hi.min(n - 1);
        self.cells[lo as usize..=hi as usize].to_vec()
    }

    /// Control-plane bulk write (prologue initialization).
    pub fn write_range(&mut self, lo: u32, values: &[Value]) {
        for (i, v) in values.iter().enumerate() {
            let idx = lo as usize + i;
            if idx < self.cells.len() {
                self.cells[idx] = v.resize(self.width);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4_ast::Pipeline;

    fn reg(width: u16, count: u32) -> RegisterArray {
        RegisterArray::new(&RegisterSpec {
            name: "r".into(),
            width,
            count,
            pipeline: Pipeline::Ingress,
        })
    }

    #[test]
    fn read_write_roundtrip() {
        let mut r = reg(32, 8);
        r.write(3, Value::new(42, 64));
        assert_eq!(r.read(3), Value::new(42, 32));
        assert_eq!(r.read(0), Value::zero(32));
    }

    #[test]
    fn index_wraps() {
        let mut r = reg(16, 4);
        r.write(5, Value::new(7, 16)); // 5 % 4 == 1
        assert_eq!(r.read(1).bits(), 7);
        assert_eq!(r.read(9).bits(), 7);
    }

    #[test]
    fn increment_wraps_at_width() {
        let mut r = reg(8, 1);
        r.write(0, Value::new(0xff, 8));
        r.increment(0, 1);
        assert_eq!(r.read(0).bits(), 0);
        r.increment(0, 300); // 300 % 256 == 44
        assert_eq!(r.read(0).bits(), 44);
    }

    #[test]
    fn range_reads_clamp() {
        let mut r = reg(32, 4);
        for i in 0..4 {
            r.write(i, Value::new(i as u128, 32));
        }
        assert_eq!(r.read_range(1, 2).len(), 2);
        assert_eq!(r.read_range(0, 100).len(), 4);
        assert!(r.read_range(10, 20).is_empty());
        assert_eq!(r.read_range(2, 2)[0].bits(), 2);
    }

    #[test]
    fn write_range_clamps() {
        let mut r = reg(32, 4);
        r.write_range(
            2,
            &[Value::new(9, 32), Value::new(8, 32), Value::new(7, 32)],
        );
        assert_eq!(r.read(2).bits(), 9);
        assert_eq!(r.read(3).bits(), 8);
        // index 4 silently ignored
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn zero_sized_register_is_inert() {
        let mut r = reg(32, 0);
        r.write(0, Value::new(1, 32));
        assert_eq!(r.read(0), Value::zero(32));
        assert!(r.read_range(0, 10).is_empty());
    }
}
