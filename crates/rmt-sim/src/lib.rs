//! # rmt-sim
//!
//! A deterministic simulator of an RMT (Reconfigurable Match Table) switch —
//! the substrate for the Mantis reproduction, standing in for the Tofino
//! ASIC of the paper's Wedge100BF-32X testbed.
//!
//! What is modelled:
//!
//! * a match-action pipeline with exact/ternary/LPM tables placed into
//!   stages, executing the P4-14 primitive actions,
//! * stateful register arrays with single-cell data-plane access and
//!   range reads from the control plane,
//! * a traffic manager with per-port FIFO queues, byte-accurate service at
//!   the configured line rate, tail drop, and queue-depth visibility,
//! * ports (up/down), recirculation with a loop guard,
//! * atomic single-entry table updates — the hardware guarantee the Mantis
//!   isolation protocols build on,
//! * stage-by-stage packet execution ([`switch::Execution`]) so tests can
//!   interleave control-plane operations with in-flight packets.
//!
//! Everything runs on a shared virtual [`clock::Clock`]; nothing here spawns
//! threads or does IO.

#![forbid(unsafe_code)]

pub mod clock;
pub mod hash;
pub mod parse;
pub mod phv;
pub mod registers;
pub mod shared;
pub mod spec;
pub mod switch;
pub mod table;

pub use clock::{Clock, Nanos};
pub use phv::{PacketDesc, PacketTemplate, Phv, PhvPool, TransferMap};
pub use shared::SharedSwitch;
pub use spec::{
    load, ActionId, DataPlaneSpec, FieldId, IntrIds, LoadError, PortId, RegisterId, TableId,
};
pub use switch::{
    switch_from_source, DriverError, Pipe, ReadAgg, Switch, SwitchConfig, TableCheckpoint, TxPacket,
};
pub use table::{EntryHandle, KeyField, Table, TableError};
