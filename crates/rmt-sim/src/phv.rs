//! Packet Header Vector: the per-packet field containers the pipeline
//! operates on.

use crate::spec::{DataPlaneSpec, FieldId, PortId, INTR};
use p4_ast::Value;

/// A packet's header vector plus per-packet flags.
#[derive(Clone, Debug)]
pub struct Phv {
    values: Vec<Value>,
    /// Validity of each header instance (metadata is always valid).
    valid: Vec<bool>,
    /// Set by the `drop()` primitive.
    pub dropped: bool,
    /// Bytes of payload beyond the parsed headers (used for queueing byte
    /// counts).
    pub payload_len: u32,
}

impl Phv {
    /// A fresh PHV with metadata initialized and headers invalid.
    pub fn new(spec: &DataPlaneSpec) -> Self {
        let values = spec.fields.iter().map(|f| f.init).collect();
        let valid = spec.headers.iter().map(|h| h.is_metadata).collect();
        Phv {
            values,
            valid,
            dropped: false,
            payload_len: 0,
        }
    }

    pub fn get(&self, id: FieldId) -> Value {
        self.values[id.0 as usize]
    }

    /// Store `v`, truncating/extending to the container width.
    pub fn set(&mut self, id: FieldId, v: Value) {
        let w = self.values[id.0 as usize].width();
        self.values[id.0 as usize] = v.resize(w);
    }

    pub fn is_valid(&self, header_idx: usize) -> bool {
        self.valid[header_idx]
    }

    pub fn set_valid(&mut self, header_idx: usize, valid: bool) {
        self.valid[header_idx] = valid;
    }

    /// Read a field as `u64` (hot-path form of `get(..).as_u64()`).
    pub fn get_u64(&self, id: FieldId) -> u64 {
        self.get(id).as_u64()
    }

    /// Write a `u64`, truncating to the container width (the id-resolved
    /// form of [`Phv::set_intr`]).
    pub fn set_u64(&mut self, id: FieldId, v: u64) {
        self.set(id, Value::new(u128::from(v), 64));
    }

    /// Convenience: read an intrinsic field by name.
    pub fn intr(&self, spec: &DataPlaneSpec, name: &str) -> Value {
        self.get(spec.field_id(INTR, name).expect("intrinsic field"))
    }

    /// Convenience: write an intrinsic field by name.
    pub fn set_intr(&mut self, spec: &DataPlaneSpec, name: &str, v: u64) {
        let id = spec.field_id(INTR, name).expect("intrinsic field");
        self.set(id, Value::new(u128::from(v), 64));
    }

    pub fn ingress_port(&self, spec: &DataPlaneSpec) -> PortId {
        self.intr(spec, "ingress_port").as_u64() as PortId
    }

    pub fn egress_spec(&self, spec: &DataPlaneSpec) -> PortId {
        self.intr(spec, "egress_spec").as_u64() as PortId
    }

    /// Describe this PHV spec-independently: every field of every valid
    /// non-metadata header as `(instance, field, value)` assignments, plus
    /// the payload length. The result can be re-materialized against a
    /// *different* spec with [`PacketDesc::build_lossy`] — this is how a
    /// fabric carries a packet from one switch's program to its peer's.
    /// Intrinsic metadata (ports, timestamps) deliberately does not
    /// survive the wire; the caller sets the new ingress port.
    pub fn describe(&self, spec: &DataPlaneSpec) -> PacketDesc {
        let mut desc = PacketDesc::new(0).payload(self.payload_len);
        for (i, h) in spec.headers.iter().enumerate() {
            if h.is_metadata || !self.valid[i] {
                continue;
            }
            for f in &h.fields {
                let info = &spec.fields[f.0 as usize];
                desc = desc.field(&info.instance, &info.field, self.get(*f).bits());
            }
        }
        desc
    }

    /// Restore this PHV to the state [`Phv::new`] produces, reusing its
    /// buffers. The shape must match `spec` — recycling a PHV across specs
    /// would silently corrupt field layout, so that is a hard invariant.
    pub fn reset(&mut self, spec: &DataPlaneSpec) {
        assert!(
            self.values.len() == spec.fields.len() && self.valid.len() == spec.headers.len(),
            "phv-pool/spec-shape: recycled PHV ({}f/{}h) does not match spec ({}f/{}h)",
            self.values.len(),
            self.valid.len(),
            spec.fields.len(),
            spec.headers.len(),
        );
        for (v, f) in self.values.iter_mut().zip(&spec.fields) {
            *v = f.init;
        }
        for (b, h) in self.valid.iter_mut().zip(&spec.headers) {
            *b = h.is_metadata;
        }
        self.dropped = false;
        self.payload_len = 0;
    }

    /// Reset only the metadata headers' fields to their init values,
    /// leaving wire headers (values and validity) and the payload intact.
    /// This is the state a wire transfer between *identical* specs
    /// produces: [`TransferMap::apply`] into a fresh PHV copies the wire
    /// headers and nothing else, so moving the buffer and wiping the
    /// metadata is byte-equivalent — without the copy.
    pub fn reset_metadata(&mut self, spec: &DataPlaneSpec) {
        for h in spec.headers.iter().filter(|h| h.is_metadata) {
            for f in &h.fields {
                self.values[f.0 as usize] = spec.fields[f.0 as usize].init;
            }
        }
        self.dropped = false;
    }

    /// Heap bytes held by this PHV's buffers (arena accounting).
    pub fn heap_bytes(&self) -> u64 {
        (self.values.capacity() * std::mem::size_of::<Value>() + self.valid.capacity()) as u64
    }

    /// Total frame length in bytes: parsed+valid headers plus payload.
    pub fn frame_len(&self, spec: &DataPlaneSpec) -> u32 {
        let mut bits = 0u32;
        for (i, &hb) in spec.wire_bits().iter().enumerate() {
            if hb != 0 && self.valid[i] {
                bits += hb;
            }
        }
        bits / 8 + self.payload_len
    }

    /// [`frame_len`](Phv::frame_len) at its historical cost: walk every
    /// header's field list and sum the widths, instead of reading the
    /// spec's precomputed per-header totals. Same answer, per-packet
    /// price — the legacy-compat benchmark baseline uses it to keep the
    /// pre-refactor engine's cost shape.
    pub fn frame_len_walk(&self, spec: &DataPlaneSpec) -> u32 {
        let mut bits = 0u32;
        for (i, h) in spec.headers.iter().enumerate() {
            if !h.is_metadata && self.valid[i] {
                for f in &h.fields {
                    bits += u32::from(spec.field_width(*f));
                }
            }
        }
        bits / 8 + self.payload_len
    }
}

/// A builder for injecting packets without going through byte parsing.
///
/// Network-simulator components construct packets directly as field
/// assignments; the byte-level parser path ([`crate::parse`]) exists for
/// raw-frame examples and tests.
#[derive(Clone, Debug, Default)]
pub struct PacketDesc {
    pub port: PortId,
    /// `(instance, field, value)` assignments; the named headers become
    /// valid.
    pub fields: Vec<(String, String, u128)>,
    pub payload_len: u32,
}

impl PacketDesc {
    pub fn new(port: PortId) -> Self {
        PacketDesc {
            port,
            ..Default::default()
        }
    }

    pub fn field(mut self, instance: &str, field: &str, value: u128) -> Self {
        self.fields
            .push((instance.to_string(), field.to_string(), value));
        self
    }

    pub fn payload(mut self, len: u32) -> Self {
        self.payload_len = len;
        self
    }

    /// Materialize a PHV for this packet.
    pub fn build(&self, spec: &DataPlaneSpec) -> Phv {
        self.materialize(spec, false)
    }

    /// Like [`build`](PacketDesc::build), but fields the spec does not
    /// know are silently skipped instead of panicking. A fabric link uses
    /// this to deliver a packet described against the sender's program
    /// into a receiver running a *different* program: the shared headers
    /// transfer, the rest is payload the receiver's parser cannot see.
    pub fn build_lossy(&self, spec: &DataPlaneSpec) -> Phv {
        self.materialize(spec, true)
    }

    fn materialize(&self, spec: &DataPlaneSpec, lossy: bool) -> Phv {
        let mut phv = Phv::new(spec);
        phv.payload_len = self.payload_len;
        for (inst, field, value) in &self.fields {
            let Some(id) = spec.field_id(inst, field) else {
                if lossy {
                    continue;
                }
                panic!("unknown field {inst}.{field}");
            };
            phv.set(id, Value::new(*value, 128));
            if let Some(h) = spec.header_idx(inst) {
                phv.set_valid(h, true);
            }
        }
        phv.set_intr(spec, "ingress_port", u64::from(self.port));
        let len = phv.frame_len(spec);
        phv.set_intr(spec, "pkt_len", u64::from(len));
        phv
    }
}

/// A bounded freelist of PHVs shaped for one spec.
///
/// Every switch keeps one so steady-state packet churn reuses buffers
/// instead of allocating: `take` pops and [`Phv::reset`]s a recycled PHV
/// (allocating only while the pool warms up), `put` returns one after the
/// packet leaves the switch or is dropped. The capacity bound keeps a
/// traffic burst from pinning unbounded memory.
#[derive(Debug, Default)]
pub struct PhvPool {
    free: Vec<Phv>,
    cap: usize,
}

impl PhvPool {
    pub fn new(cap: usize) -> Self {
        PhvPool {
            free: Vec::new(),
            cap,
        }
    }

    /// A fresh PHV for `spec`, recycled when possible.
    pub fn take(&mut self, spec: &DataPlaneSpec) -> Phv {
        match self.free.pop() {
            Some(mut phv) => {
                phv.reset(spec);
                phv
            }
            None => Phv::new(spec),
        }
    }

    /// Return a PHV to the freelist (dropped if the pool is full).
    pub fn put(&mut self, phv: Phv) {
        if self.free.len() < self.cap {
            self.free.push(phv);
        }
    }

    /// Pull a parked PHV out without reshaping it — for rebalancing
    /// buffers between pools of identically shaped specs.
    pub fn steal(&mut self) -> Option<Phv> {
        self.free.pop()
    }

    pub fn len(&self) -> usize {
        self.free.len()
    }

    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Heap bytes parked in the freelist (the "arena bytes" gauge).
    pub fn arena_bytes(&self) -> u64 {
        self.free.iter().map(Phv::heap_bytes).sum()
    }
}

/// A [`PacketDesc`] pre-resolved against one spec: `(FieldId, value)`
/// pairs plus the header-validity set. Compiled once per flow at spawn,
/// then written into pooled PHVs per packet with zero name lookups and
/// zero heap allocation.
#[derive(Clone, Debug)]
pub struct PacketTemplate {
    port: PortId,
    fields: Vec<(FieldId, u128)>,
    valid_headers: Vec<usize>,
    payload_len: u32,
}

impl PacketTemplate {
    /// Resolve every field of `desc` against `spec`, in order.
    pub fn compile(desc: &PacketDesc, spec: &DataPlaneSpec) -> Result<Self, String> {
        let mut fields = Vec::with_capacity(desc.fields.len());
        let mut valid_headers = Vec::new();
        for (inst, field, value) in &desc.fields {
            let Some(id) = spec.field_id(inst, field) else {
                return Err(format!("unknown field {inst}.{field}"));
            };
            fields.push((id, *value));
            if let Some(h) = spec.header_idx(inst) {
                if !valid_headers.contains(&h) {
                    valid_headers.push(h);
                }
            }
        }
        Ok(PacketTemplate {
            port: desc.port,
            fields,
            valid_headers,
            payload_len: desc.payload_len,
        })
    }

    pub fn port(&self) -> PortId {
        self.port
    }

    pub fn set_port(&mut self, port: PortId) {
        self.port = port;
    }

    pub fn set_payload(&mut self, len: u32) {
        self.payload_len = len;
    }

    /// Overwrite the value of the `slot`-th compiled field (slots follow
    /// the order fields were added to the source [`PacketDesc`]).
    pub fn set_value(&mut self, slot: usize, value: u128) {
        self.fields[slot].1 = value;
    }

    /// Write this template into a fresh PHV, mirroring
    /// [`PacketDesc::build`] exactly.
    pub fn write_into(&self, phv: &mut Phv, spec: &DataPlaneSpec) {
        phv.payload_len = self.payload_len;
        for (id, value) in &self.fields {
            phv.set(*id, Value::new(*value, 128));
        }
        for h in &self.valid_headers {
            phv.set_valid(*h, true);
        }
        let intr = spec.intr_ids().expect("intrinsic field");
        phv.set(intr.ingress_port, Value::new(u128::from(self.port), 64));
        let len = phv.frame_len(spec);
        phv.set(intr.pkt_len, Value::new(u128::from(len), 64));
    }
}

/// Pre-compiled cross-spec wire transfer.
///
/// Semantically identical to `describe(src_spec)` →
/// `build_lossy(dst_spec)` — every field of every valid non-metadata
/// sender header that the receiver's program also declares carries over,
/// and those receiver headers become valid — but resolved to id pairs once
/// per (sender spec, receiver spec) so per-hop delivery does no String
/// work at all.
#[derive(Clone, Debug, Default)]
pub struct TransferMap {
    headers: Vec<HeaderXfer>,
    /// True when the two specs are structurally identical, so a transfer
    /// is the identity: the receiving side may *move* the source PHV
    /// (after [`Phv::reset_metadata`]) instead of copying it field by
    /// field into a fresh buffer.
    identity: bool,
}

#[derive(Clone, Debug)]
struct HeaderXfer {
    src_header: usize,
    dst_header: usize,
    fields: Vec<(FieldId, FieldId)>,
}

/// Structural equality of two specs' PHV layouts: same headers (name,
/// metadata flag, field list) and same fields (names, widths, inits) at
/// the same indices. When this holds, a PHV shaped for one spec is
/// directly usable under the other.
fn specs_identical(a: &DataPlaneSpec, b: &DataPlaneSpec) -> bool {
    if std::ptr::eq(a, b) {
        return true;
    }
    a.fields.len() == b.fields.len()
        && a.headers.len() == b.headers.len()
        && a.fields.iter().zip(&b.fields).all(|(x, y)| {
            x.instance == y.instance
                && x.field == y.field
                && x.width == y.width
                && x.is_metadata == y.is_metadata
                && x.init == y.init
        })
        && a.headers.iter().zip(&b.headers).all(|(x, y)| {
            x.name == y.name && x.is_metadata == y.is_metadata && x.fields == y.fields
        })
}

impl TransferMap {
    pub fn build(src: &DataPlaneSpec, dst: &DataPlaneSpec) -> Self {
        let mut headers = Vec::new();
        for (i, h) in src.headers.iter().enumerate() {
            if h.is_metadata {
                continue;
            }
            let mut fields = Vec::new();
            for f in &h.fields {
                let info = &src.fields[f.0 as usize];
                if let Some(d) = dst.field_id(&info.instance, &info.field) {
                    fields.push((*f, d));
                }
            }
            if !fields.is_empty() {
                let dst_header = dst
                    .header_idx(&h.name)
                    .expect("resolved field implies instance");
                headers.push(HeaderXfer {
                    src_header: i,
                    dst_header,
                    fields,
                });
            }
        }
        TransferMap {
            headers,
            identity: specs_identical(src, dst),
        }
    }

    /// Whether this transfer is between structurally identical specs (see
    /// the `identity` field).
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Copy the transferable headers of `src` into the fresh PHV `dst`,
    /// then stamp the receiver-side intrinsics (`ingress_port`,
    /// `pkt_len`) exactly as [`PacketDesc::build_lossy`] would.
    pub fn apply(&self, src: &Phv, dst: &mut Phv, port: PortId, dst_spec: &DataPlaneSpec) {
        dst.payload_len = src.payload_len;
        for hx in &self.headers {
            if !src.is_valid(hx.src_header) {
                continue;
            }
            for (s, d) in &hx.fields {
                dst.set(*d, Value::new(src.get(*s).bits(), 128));
            }
            dst.set_valid(hx.dst_header, true);
        }
        let intr = dst_spec.intr_ids().expect("intrinsic field");
        dst.set(intr.ingress_port, Value::new(u128::from(port), 64));
        let len = dst.frame_len(dst_spec);
        dst.set(intr.pkt_len, Value::new(u128::from(len), 64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::load;
    use p4r_lang::parse_program;

    fn spec() -> DataPlaneSpec {
        let prog = parse_program(
            r#"
header_type eth_t { fields { dst : 48; src : 48; etype : 16; } }
header eth_t eth;
header_type m_t { fields { x : 8; } }
metadata m_t m { x : 5; }
"#,
        )
        .unwrap();
        load(&prog).unwrap()
    }

    #[test]
    fn metadata_initialized_headers_invalid() {
        let s = spec();
        let phv = Phv::new(&s);
        assert_eq!(phv.get(s.field_id("m", "x").unwrap()).bits(), 5);
        assert!(phv.is_valid(s.header_idx("m").unwrap()));
        assert!(!phv.is_valid(s.header_idx("eth").unwrap()));
    }

    #[test]
    fn set_truncates_to_width() {
        let s = spec();
        let mut phv = Phv::new(&s);
        let id = s.field_id("m", "x").unwrap();
        phv.set(id, Value::new(0x1ff, 16));
        assert_eq!(phv.get(id).bits(), 0xff);
        assert_eq!(phv.get(id).width(), 8);
    }

    #[test]
    fn packet_desc_builds_phv() {
        let s = spec();
        let phv = PacketDesc::new(3)
            .field("eth", "dst", 0xaabb)
            .payload(100)
            .build(&s);
        assert!(phv.is_valid(s.header_idx("eth").unwrap()));
        assert_eq!(phv.get(s.field_id("eth", "dst").unwrap()).bits(), 0xaabb);
        assert_eq!(phv.ingress_port(&s), 3);
        // eth = 14 bytes + 100 payload
        assert_eq!(phv.frame_len(&s), 114);
        assert_eq!(phv.intr(&s, "pkt_len").as_u64(), 114);
    }

    #[test]
    #[should_panic(expected = "unknown field")]
    fn packet_desc_unknown_field_panics() {
        let s = spec();
        let _ = PacketDesc::new(0).field("nope", "f", 1).build(&s);
    }

    #[test]
    fn build_lossy_skips_unknown_fields() {
        let s = spec();
        let phv = PacketDesc::new(2)
            .field("nope", "f", 1)
            .field("eth", "dst", 0xaabb)
            .payload(10)
            .build_lossy(&s);
        assert!(phv.is_valid(s.header_idx("eth").unwrap()));
        assert_eq!(phv.get(s.field_id("eth", "dst").unwrap()).bits(), 0xaabb);
        assert_eq!(phv.ingress_port(&s), 2);
    }

    #[test]
    fn describe_round_trips_valid_headers() {
        let s = spec();
        let phv = PacketDesc::new(3)
            .field("eth", "dst", 0xaabb)
            .field("eth", "etype", 0x0800)
            .payload(100)
            .build(&s);
        let mut desc = phv.describe(&s);
        desc.port = 5;
        // Metadata never crosses the wire.
        assert!(desc.fields.iter().all(|(i, _, _)| i == "eth"));
        let back = desc.build_lossy(&s);
        assert_eq!(back.get(s.field_id("eth", "dst").unwrap()).bits(), 0xaabb);
        assert_eq!(back.get(s.field_id("eth", "etype").unwrap()).bits(), 0x0800);
        assert_eq!(back.ingress_port(&s), 5);
        assert_eq!(back.frame_len(&s), phv.frame_len(&s));
    }

    fn phv_eq(a: &Phv, b: &Phv) -> bool {
        a.values
            .iter()
            .map(|v| (v.bits(), v.width()))
            .eq(b.values.iter().map(|v| (v.bits(), v.width())))
            && a.valid == b.valid
            && a.dropped == b.dropped
            && a.payload_len == b.payload_len
    }

    #[test]
    fn reset_restores_fresh_state() {
        let s = spec();
        let mut phv = PacketDesc::new(3)
            .field("eth", "dst", 0xaabb)
            .payload(77)
            .build(&s);
        phv.dropped = true;
        phv.reset(&s);
        assert!(phv_eq(&phv, &Phv::new(&s)));
    }

    #[test]
    #[should_panic(expected = "phv-pool/spec-shape")]
    fn reset_rejects_mismatched_spec() {
        let s = spec();
        let other =
            load(&parse_program("header_type a_t { fields { x : 8; } } header a_t a;").unwrap())
                .unwrap();
        let mut phv = Phv::new(&other);
        phv.reset(&s);
    }

    #[test]
    fn pool_recycles_up_to_cap() {
        let s = spec();
        let mut pool = PhvPool::new(1);
        pool.put(Phv::new(&s));
        pool.put(Phv::new(&s));
        assert_eq!(pool.len(), 1);
        assert!(pool.arena_bytes() > 0);
        let phv = pool.take(&s);
        assert!(phv_eq(&phv, &Phv::new(&s)));
        assert!(pool.is_empty());
    }

    #[test]
    fn template_matches_desc_build() {
        let s = spec();
        let desc = PacketDesc::new(3)
            .field("eth", "dst", 0xaabb)
            .field("eth", "etype", 0x0800)
            .payload(64);
        let tmpl = PacketTemplate::compile(&desc, &s).unwrap();
        let mut got = Phv::new(&s);
        tmpl.write_into(&mut got, &s);
        assert!(phv_eq(&got, &desc.build(&s)));
    }

    #[test]
    fn template_set_value_rewrites_slot() {
        let s = spec();
        let desc = PacketDesc::new(1)
            .field("eth", "dst", 1)
            .field("eth", "src", 2);
        let mut tmpl = PacketTemplate::compile(&desc, &s).unwrap();
        tmpl.set_value(1, 99);
        tmpl.set_port(7);
        let mut got = Phv::new(&s);
        tmpl.write_into(&mut got, &s);
        assert_eq!(got.get(s.field_id("eth", "src").unwrap()).bits(), 99);
        assert_eq!(got.ingress_port(&s), 7);
    }

    #[test]
    fn template_unknown_field_errors() {
        let s = spec();
        let desc = PacketDesc::new(0).field("nope", "f", 1);
        assert!(PacketTemplate::compile(&desc, &s).is_err());
    }

    #[test]
    fn transfer_map_matches_describe_build_lossy() {
        let src = spec();
        let dst = load(
            &parse_program(
                r#"
header_type eth_t { fields { dst : 48; etype : 16; } }
header eth_t eth;
header_type v_t { fields { q : 4; } }
header v_t v;
"#,
            )
            .unwrap(),
        )
        .unwrap();
        let phv = PacketDesc::new(3)
            .field("eth", "dst", 0xaabb)
            .field("eth", "src", 0xcc)
            .field("eth", "etype", 0x0800)
            .payload(42)
            .build(&src);
        let mut desc = phv.describe(&src);
        desc.port = 5;
        let want = desc.build_lossy(&dst);
        let map = TransferMap::build(&src, &dst);
        let mut got = Phv::new(&dst);
        map.apply(&phv, &mut got, 5, &dst);
        assert!(phv_eq(&got, &want));
        // Invalid sender headers must not transfer.
        let empty = Phv::new(&src);
        let mut got2 = Phv::new(&dst);
        map.apply(&empty, &mut got2, 1, &dst);
        assert!(!got2.is_valid(dst.header_idx("eth").unwrap()));
    }
}
