//! Packet Header Vector: the per-packet field containers the pipeline
//! operates on.

use crate::spec::{DataPlaneSpec, FieldId, PortId, INTR};
use p4_ast::Value;

/// A packet's header vector plus per-packet flags.
#[derive(Clone, Debug)]
pub struct Phv {
    values: Vec<Value>,
    /// Validity of each header instance (metadata is always valid).
    valid: Vec<bool>,
    /// Set by the `drop()` primitive.
    pub dropped: bool,
    /// Bytes of payload beyond the parsed headers (used for queueing byte
    /// counts).
    pub payload_len: u32,
}

impl Phv {
    /// A fresh PHV with metadata initialized and headers invalid.
    pub fn new(spec: &DataPlaneSpec) -> Self {
        let values = spec.fields.iter().map(|f| f.init).collect();
        let valid = spec.headers.iter().map(|h| h.is_metadata).collect();
        Phv {
            values,
            valid,
            dropped: false,
            payload_len: 0,
        }
    }

    pub fn get(&self, id: FieldId) -> Value {
        self.values[id.0 as usize]
    }

    /// Store `v`, truncating/extending to the container width.
    pub fn set(&mut self, id: FieldId, v: Value) {
        let w = self.values[id.0 as usize].width();
        self.values[id.0 as usize] = v.resize(w);
    }

    pub fn is_valid(&self, header_idx: usize) -> bool {
        self.valid[header_idx]
    }

    pub fn set_valid(&mut self, header_idx: usize, valid: bool) {
        self.valid[header_idx] = valid;
    }

    /// Convenience: read an intrinsic field by name.
    pub fn intr(&self, spec: &DataPlaneSpec, name: &str) -> Value {
        self.get(spec.field_id(INTR, name).expect("intrinsic field"))
    }

    /// Convenience: write an intrinsic field by name.
    pub fn set_intr(&mut self, spec: &DataPlaneSpec, name: &str, v: u64) {
        let id = spec.field_id(INTR, name).expect("intrinsic field");
        self.set(id, Value::new(u128::from(v), 64));
    }

    pub fn ingress_port(&self, spec: &DataPlaneSpec) -> PortId {
        self.intr(spec, "ingress_port").as_u64() as PortId
    }

    pub fn egress_spec(&self, spec: &DataPlaneSpec) -> PortId {
        self.intr(spec, "egress_spec").as_u64() as PortId
    }

    /// Describe this PHV spec-independently: every field of every valid
    /// non-metadata header as `(instance, field, value)` assignments, plus
    /// the payload length. The result can be re-materialized against a
    /// *different* spec with [`PacketDesc::build_lossy`] — this is how a
    /// fabric carries a packet from one switch's program to its peer's.
    /// Intrinsic metadata (ports, timestamps) deliberately does not
    /// survive the wire; the caller sets the new ingress port.
    pub fn describe(&self, spec: &DataPlaneSpec) -> PacketDesc {
        let mut desc = PacketDesc::new(0).payload(self.payload_len);
        for (i, h) in spec.headers.iter().enumerate() {
            if h.is_metadata || !self.valid[i] {
                continue;
            }
            for f in &h.fields {
                let info = &spec.fields[f.0 as usize];
                desc = desc.field(&info.instance, &info.field, self.get(*f).bits());
            }
        }
        desc
    }

    /// Total frame length in bytes: parsed+valid headers plus payload.
    pub fn frame_len(&self, spec: &DataPlaneSpec) -> u32 {
        let mut bits = 0u32;
        for (i, h) in spec.headers.iter().enumerate() {
            if !h.is_metadata && self.valid[i] {
                for f in &h.fields {
                    bits += u32::from(spec.field_width(*f));
                }
            }
        }
        bits / 8 + self.payload_len
    }
}

/// A builder for injecting packets without going through byte parsing.
///
/// Network-simulator components construct packets directly as field
/// assignments; the byte-level parser path ([`crate::parse`]) exists for
/// raw-frame examples and tests.
#[derive(Clone, Debug, Default)]
pub struct PacketDesc {
    pub port: PortId,
    /// `(instance, field, value)` assignments; the named headers become
    /// valid.
    pub fields: Vec<(String, String, u128)>,
    pub payload_len: u32,
}

impl PacketDesc {
    pub fn new(port: PortId) -> Self {
        PacketDesc {
            port,
            ..Default::default()
        }
    }

    pub fn field(mut self, instance: &str, field: &str, value: u128) -> Self {
        self.fields
            .push((instance.to_string(), field.to_string(), value));
        self
    }

    pub fn payload(mut self, len: u32) -> Self {
        self.payload_len = len;
        self
    }

    /// Materialize a PHV for this packet.
    pub fn build(&self, spec: &DataPlaneSpec) -> Phv {
        self.materialize(spec, false)
    }

    /// Like [`build`](PacketDesc::build), but fields the spec does not
    /// know are silently skipped instead of panicking. A fabric link uses
    /// this to deliver a packet described against the sender's program
    /// into a receiver running a *different* program: the shared headers
    /// transfer, the rest is payload the receiver's parser cannot see.
    pub fn build_lossy(&self, spec: &DataPlaneSpec) -> Phv {
        self.materialize(spec, true)
    }

    fn materialize(&self, spec: &DataPlaneSpec, lossy: bool) -> Phv {
        let mut phv = Phv::new(spec);
        phv.payload_len = self.payload_len;
        for (inst, field, value) in &self.fields {
            let Some(id) = spec.field_id(inst, field) else {
                if lossy {
                    continue;
                }
                panic!("unknown field {inst}.{field}");
            };
            phv.set(id, Value::new(*value, 128));
            if let Some(h) = spec.header_idx(inst) {
                phv.set_valid(h, true);
            }
        }
        phv.set_intr(spec, "ingress_port", u64::from(self.port));
        let len = phv.frame_len(spec);
        phv.set_intr(spec, "pkt_len", u64::from(len));
        phv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::load;
    use p4r_lang::parse_program;

    fn spec() -> DataPlaneSpec {
        let prog = parse_program(
            r#"
header_type eth_t { fields { dst : 48; src : 48; etype : 16; } }
header eth_t eth;
header_type m_t { fields { x : 8; } }
metadata m_t m { x : 5; }
"#,
        )
        .unwrap();
        load(&prog).unwrap()
    }

    #[test]
    fn metadata_initialized_headers_invalid() {
        let s = spec();
        let phv = Phv::new(&s);
        assert_eq!(phv.get(s.field_id("m", "x").unwrap()).bits(), 5);
        assert!(phv.is_valid(s.header_idx("m").unwrap()));
        assert!(!phv.is_valid(s.header_idx("eth").unwrap()));
    }

    #[test]
    fn set_truncates_to_width() {
        let s = spec();
        let mut phv = Phv::new(&s);
        let id = s.field_id("m", "x").unwrap();
        phv.set(id, Value::new(0x1ff, 16));
        assert_eq!(phv.get(id).bits(), 0xff);
        assert_eq!(phv.get(id).width(), 8);
    }

    #[test]
    fn packet_desc_builds_phv() {
        let s = spec();
        let phv = PacketDesc::new(3)
            .field("eth", "dst", 0xaabb)
            .payload(100)
            .build(&s);
        assert!(phv.is_valid(s.header_idx("eth").unwrap()));
        assert_eq!(phv.get(s.field_id("eth", "dst").unwrap()).bits(), 0xaabb);
        assert_eq!(phv.ingress_port(&s), 3);
        // eth = 14 bytes + 100 payload
        assert_eq!(phv.frame_len(&s), 114);
        assert_eq!(phv.intr(&s, "pkt_len").as_u64(), 114);
    }

    #[test]
    #[should_panic(expected = "unknown field")]
    fn packet_desc_unknown_field_panics() {
        let s = spec();
        let _ = PacketDesc::new(0).field("nope", "f", 1).build(&s);
    }

    #[test]
    fn build_lossy_skips_unknown_fields() {
        let s = spec();
        let phv = PacketDesc::new(2)
            .field("nope", "f", 1)
            .field("eth", "dst", 0xaabb)
            .payload(10)
            .build_lossy(&s);
        assert!(phv.is_valid(s.header_idx("eth").unwrap()));
        assert_eq!(phv.get(s.field_id("eth", "dst").unwrap()).bits(), 0xaabb);
        assert_eq!(phv.ingress_port(&s), 2);
    }

    #[test]
    fn describe_round_trips_valid_headers() {
        let s = spec();
        let phv = PacketDesc::new(3)
            .field("eth", "dst", 0xaabb)
            .field("eth", "etype", 0x0800)
            .payload(100)
            .build(&s);
        let mut desc = phv.describe(&s);
        desc.port = 5;
        // Metadata never crosses the wire.
        assert!(desc.fields.iter().all(|(i, _, _)| i == "eth"));
        let back = desc.build_lossy(&s);
        assert_eq!(back.get(s.field_id("eth", "dst").unwrap()).bits(), 0xaabb);
        assert_eq!(back.get(s.field_id("eth", "etype").unwrap()).bits(), 0x0800);
        assert_eq!(back.ingress_port(&s), 5);
        assert_eq!(back.frame_len(&s), phv.frame_len(&s));
    }
}
