//! Hash units for `field_list_calculation`s (ECMP et al.).

use p4_ast::{HashAlgorithm, Value};

/// Serialize field values to the byte string a hardware hash unit would see
/// (each field big-endian, padded to whole bytes).
pub fn field_bytes(inputs: &[Value]) -> Vec<u8> {
    let mut out = Vec::new();
    for v in inputs {
        let n = v.byte_width();
        let bytes = v.bits().to_be_bytes();
        out.extend_from_slice(&bytes[16 - n..]);
    }
    out
}

/// CRC-16/ARC (poly 0x8005 reflected = 0xA001), the P4-14 `crc16` default.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0;
    for &b in data {
        crc ^= u16::from(b);
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0xA001;
            } else {
                crc >>= 1;
            }
        }
    }
    crc
}

/// CRC-32 (IEEE 802.3, reflected poly 0xEDB88320).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0xEDB8_8320;
            } else {
                crc >>= 1;
            }
        }
    }
    !crc
}

/// A xorshift-style mixer — models an alternative, differently-polarizing
/// hash strategy for the ECMP use case.
pub fn xor_mix(data: &[u8]) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for &b in data {
        h ^= u64::from(b);
        h ^= h << 13;
        h ^= h >> 7;
        h ^= h << 17;
    }
    h
}

/// Identity: concatenates the low bits of the inputs.
pub fn identity(inputs: &[Value]) -> u128 {
    let mut acc: u128 = 0;
    for v in inputs {
        acc = (acc << v.width().min(64)) | (v.bits() & Value::mask_for(v.width().min(64)));
    }
    acc
}

/// Evaluate a hash over field values, truncated to `output_width` bits.
pub fn compute(alg: HashAlgorithm, inputs: &[Value], output_width: u16) -> Value {
    let raw: u128 = match alg {
        HashAlgorithm::Crc16 => u128::from(crc16(&field_bytes(inputs))),
        HashAlgorithm::Crc32 => u128::from(crc32(&field_bytes(inputs))),
        HashAlgorithm::XorMix => u128::from(xor_mix(&field_bytes(inputs))),
        HashAlgorithm::Identity => identity(inputs),
    };
    Value::new(raw, output_width.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_known_vector() {
        // CRC-16/ARC("123456789") = 0xBB3D
        assert_eq!(crc16(b"123456789"), 0xBB3D);
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xCBF43926
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn field_bytes_big_endian_padded() {
        let v = vec![Value::new(0x0102, 16), Value::new(0x3, 4)];
        assert_eq!(field_bytes(&v), vec![0x01, 0x02, 0x03]);
    }

    #[test]
    fn compute_truncates_to_width() {
        let v = vec![Value::new(12345, 32)];
        let h = compute(HashAlgorithm::Crc32, &v, 8);
        assert_eq!(h.width(), 8);
        assert!(h.bits() < 256);
    }

    #[test]
    fn identity_concatenates() {
        let v = vec![Value::new(0xA, 4), Value::new(0xB, 4)];
        assert_eq!(identity(&v), 0xAB);
    }

    #[test]
    fn different_algorithms_differ() {
        let v = vec![Value::new(0xDEADBEEF, 32)];
        let a = compute(HashAlgorithm::Crc16, &v, 16).bits();
        let b = compute(HashAlgorithm::XorMix, &v, 16).bits();
        let c = compute(HashAlgorithm::Crc32, &v, 16).bits();
        // Not a strong property, but these specific constants do differ.
        assert!(a != b || b != c);
    }

    #[test]
    fn xor_mix_is_deterministic() {
        assert_eq!(xor_mix(b"abc"), xor_mix(b"abc"));
        assert_ne!(xor_mix(b"abc"), xor_mix(b"abd"));
    }
}
