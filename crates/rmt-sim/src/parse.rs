//! Byte-level packet parsing and deparsing through the program's parser
//! states.
//!
//! Most simulation traffic is injected as [`crate::PacketDesc`] field
//! assignments, but raw-frame parsing exists for examples and to keep the
//! parser states of loaded programs meaningful.

use crate::phv::Phv;
use crate::spec::{DataPlaneSpec, PortId, RParserNext};
use p4_ast::Value;

/// Errors from byte parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParsePktError {
    NoStartState,
    Truncated {
        header: String,
        need: usize,
        have: usize,
    },
    /// Cycle guard tripped (malformed parser graph).
    TooManyStates,
}

impl std::fmt::Display for ParsePktError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParsePktError::NoStartState => write!(f, "program has no `start` parser state"),
            ParsePktError::Truncated { header, need, have } => write!(
                f,
                "packet truncated while extracting `{header}`: need {need} bytes, have {have}"
            ),
            ParsePktError::TooManyStates => write!(f, "parser state limit exceeded"),
        }
    }
}

impl std::error::Error for ParsePktError {}

/// Parse raw bytes into a PHV, starting from the `start` state.
pub fn parse_packet(
    spec: &DataPlaneSpec,
    bytes: &[u8],
    port: PortId,
) -> Result<Phv, ParsePktError> {
    let mut phv = Phv::new(spec);
    let Some(start) = spec.parser_start else {
        return Err(ParsePktError::NoStartState);
    };
    let mut offset_bits = 0usize;
    let mut state = start;
    let mut steps = 0;
    loop {
        steps += 1;
        if steps > 64 {
            return Err(ParsePktError::TooManyStates);
        }
        let st = &spec.parser_states[state];
        for &h in &st.extracts {
            let hdr = &spec.headers[h];
            for &fid in &hdr.fields {
                let w = usize::from(spec.field_width(fid));
                let v =
                    read_bits(bytes, offset_bits, w).ok_or_else(|| ParsePktError::Truncated {
                        header: hdr.name.clone(),
                        need: (offset_bits + w).div_ceil(8),
                        have: bytes.len(),
                    })?;
                phv.set(fid, Value::new(v, w as u16));
                offset_bits += w;
            }
            phv.set_valid(h, true);
        }
        match &st.next {
            RParserNext::Ingress => break,
            RParserNext::State(n) => state = *n,
            RParserNext::Select {
                field,
                cases,
                default,
            } => {
                let v = phv.get(*field).bits();
                match cases.iter().find(|(c, _)| *c == v) {
                    Some((_, n)) => state = *n,
                    None => match default {
                        Some(n) => state = *n,
                        None => break,
                    },
                }
            }
        }
    }
    phv.payload_len = (bytes.len() - offset_bits / 8) as u32;
    phv.set_intr(spec, "ingress_port", u64::from(port));
    let len = phv.frame_len(spec);
    phv.set_intr(spec, "pkt_len", u64::from(len));
    Ok(phv)
}

/// Deparse the valid headers of a PHV back into bytes (headers in
/// declaration order; payload rendered as zeros).
pub fn deparse_packet(spec: &DataPlaneSpec, phv: &Phv) -> Vec<u8> {
    let mut bits: Vec<bool> = Vec::new();
    for (i, hdr) in spec.headers.iter().enumerate() {
        if hdr.is_metadata || !phv.is_valid(i) {
            continue;
        }
        for &fid in &hdr.fields {
            let w = usize::from(spec.field_width(fid));
            let v = phv.get(fid).bits();
            for b in (0..w).rev() {
                bits.push((v >> b) & 1 == 1);
            }
        }
    }
    let mut out = Vec::with_capacity(bits.len() / 8 + phv.payload_len as usize);
    for chunk in bits.chunks(8) {
        let mut byte = 0u8;
        for (i, &b) in chunk.iter().enumerate() {
            if b {
                byte |= 1 << (7 - i);
            }
        }
        out.push(byte);
    }
    out.extend(std::iter::repeat_n(0u8, phv.payload_len as usize));
    out
}

/// Read `width` bits starting at bit `offset` (big-endian bit order).
fn read_bits(bytes: &[u8], offset: usize, width: usize) -> Option<u128> {
    if offset + width > bytes.len() * 8 {
        return None;
    }
    let mut v: u128 = 0;
    for i in 0..width {
        let bit_index = offset + i;
        let byte = bytes[bit_index / 8];
        let bit = (byte >> (7 - (bit_index % 8))) & 1;
        v = (v << 1) | u128::from(bit);
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::load;
    use p4r_lang::parse_program;

    const ETH_IP: &str = r#"
header_type eth_t { fields { dst : 48; src : 48; etype : 16; } }
header_type ipv4_t { fields { ver_ihl : 8; tos : 8; len : 16; id : 16; flags : 16; ttl : 8; proto : 8; csum : 16; src : 32; dst : 32; } }
header eth_t eth;
header_type m_t { fields { x : 8; } }
metadata m_t m;
header ipv4_t ipv4;
parser start {
    extract(eth);
    return select(eth.etype) {
        0x0800 : parse_ipv4;
        default : done;
    };
}
parser parse_ipv4 { extract(ipv4); return ingress; }
parser done { return ingress; }
"#;

    fn mk_frame() -> Vec<u8> {
        let mut f = Vec::new();
        f.extend_from_slice(&[0xAA; 6]); // dst
        f.extend_from_slice(&[0xBB; 6]); // src
        f.extend_from_slice(&[0x08, 0x00]); // IPv4
                                            // minimal ipv4: 20 bytes
        f.extend_from_slice(&[0x45, 0x00, 0x00, 0x28]);
        f.extend_from_slice(&[0x00, 0x01, 0x00, 0x00]);
        f.extend_from_slice(&[64, 6, 0x00, 0x00]); // ttl=64 proto=6
        f.extend_from_slice(&[10, 0, 0, 1]); // src
        f.extend_from_slice(&[10, 0, 0, 2]); // dst
        f.extend_from_slice(&[0u8; 26]); // payload
        f
    }

    #[test]
    fn parses_eth_ipv4() {
        let spec = load(&parse_program(ETH_IP).unwrap()).unwrap();
        let frame = mk_frame();
        let phv = parse_packet(&spec, &frame, 7).unwrap();
        assert!(phv.is_valid(spec.header_idx("eth").unwrap()));
        assert!(phv.is_valid(spec.header_idx("ipv4").unwrap()));
        assert_eq!(
            phv.get(spec.field_id("eth", "etype").unwrap()).bits(),
            0x0800
        );
        assert_eq!(phv.get(spec.field_id("ipv4", "ttl").unwrap()).bits(), 64);
        assert_eq!(
            phv.get(spec.field_id("ipv4", "src").unwrap()).bits(),
            0x0a000001
        );
        assert_eq!(phv.ingress_port(&spec), 7);
        assert_eq!(phv.payload_len, 26);
        assert_eq!(phv.frame_len(&spec), frame.len() as u32);
    }

    #[test]
    fn select_default_skips_ipv4() {
        let spec = load(&parse_program(ETH_IP).unwrap()).unwrap();
        let mut frame = mk_frame();
        frame[12] = 0x86; // not IPv4
        frame[13] = 0xDD;
        let phv = parse_packet(&spec, &frame, 0).unwrap();
        assert!(!phv.is_valid(spec.header_idx("ipv4").unwrap()));
        assert_eq!(phv.payload_len as usize, frame.len() - 14);
    }

    #[test]
    fn truncated_packet_errors() {
        let spec = load(&parse_program(ETH_IP).unwrap()).unwrap();
        let err = parse_packet(&spec, &[0u8; 10], 0).unwrap_err();
        assert!(matches!(err, ParsePktError::Truncated { .. }));
    }

    #[test]
    fn roundtrip_parse_deparse() {
        let spec = load(&parse_program(ETH_IP).unwrap()).unwrap();
        let frame = mk_frame();
        let phv = parse_packet(&spec, &frame, 0).unwrap();
        let out = deparse_packet(&spec, &phv);
        assert_eq!(out.len(), frame.len());
        // Headers match exactly; payload is zeroed (ours was zeros anyway).
        assert_eq!(&out[..34], &frame[..34]);
    }

    #[test]
    fn no_start_state_errors() {
        let spec = load(&parse_program("header_type h { fields { a : 8; } }").unwrap()).unwrap();
        assert_eq!(
            parse_packet(&spec, &[0u8; 8], 0).unwrap_err(),
            ParsePktError::NoStartState
        );
    }

    #[test]
    fn read_bits_crosses_bytes() {
        // 0b1010_1010, 0b1100_0011 — read 4 bits at offset 6 = 0b1011
        let bytes = [0b1010_1010, 0b1100_0011];
        assert_eq!(read_bits(&bytes, 6, 4), Some(0b1011));
        assert_eq!(read_bits(&bytes, 0, 16), Some(0xAAC3));
        assert_eq!(read_bits(&bytes, 12, 8), None);
    }
}
