//! Shared virtual clock.
//!
//! The whole reproduction is deterministic: the data plane, the Mantis agent
//! and the network simulator all advance one nanosecond-resolution virtual
//! clock. Control-plane driver operations advance it by their modelled cost;
//! the event-driven network simulator advances it to the next event time.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Virtual time in nanoseconds since simulation start.
pub type Nanos = u64;

/// A cheaply clonable handle to a shared virtual clock.
///
/// Cloning shares the underlying time cell, so a `Clock` can be handed to
/// the switch, the agent, and the simulator and they all see the same time.
///
/// The cell is an atomic so a `Clock` is `Send + Sync`: the parallel
/// fabric executor hands clones to its worker pool. Virtual time only
/// *advances on the coordinator thread between epochs* — workers read it
/// while pumping their shards but never move it — so relaxed ordering is
/// sufficient (the epoch barrier's channel handoff establishes the
/// happens-before edge).
#[derive(Clone, Default)]
pub struct Clock {
    now: Arc<AtomicU64>,
}

impl Clock {
    pub fn new() -> Self {
        Clock::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now.load(Ordering::Relaxed)
    }

    /// Advance time by `delta` nanoseconds, returning the new time.
    /// Saturating: virtual time pins at the u64 horizon rather than
    /// wrapping back to zero (which would break clock monotonicity).
    pub fn advance(&self, delta: Nanos) -> Nanos {
        let t = self.now.load(Ordering::Relaxed).saturating_add(delta);
        self.now.store(t, Ordering::Relaxed);
        t
    }

    /// Move time forward to `t`. Ignored if `t` is in the past — the clock
    /// is monotonic.
    pub fn advance_to(&self, t: Nanos) {
        if t > self.now.load(Ordering::Relaxed) {
            self.now.store(t, Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Clock({} ns)", self.now())
    }
}

/// Convenience conversions for readable test and cost-model code.
pub const fn us(v: u64) -> Nanos {
    v * 1_000
}

pub const fn ms(v: u64) -> Nanos {
    v * 1_000_000
}

pub const fn secs(v: u64) -> Nanos {
    v * 1_000_000_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_time() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(10);
        assert_eq!(b.now(), 10);
        b.advance(5);
        assert_eq!(a.now(), 15);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = Clock::new();
        c.advance_to(100);
        assert_eq!(c.now(), 100);
        c.advance_to(50);
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn advance_saturates_at_horizon() {
        let c = Clock::new();
        c.advance_to(Nanos::MAX - 5);
        assert_eq!(c.advance(10), Nanos::MAX);
        assert_eq!(c.now(), Nanos::MAX);
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(us(3), 3_000);
        assert_eq!(ms(2), 2_000_000);
        assert_eq!(secs(1), 1_000_000_000);
    }
}
