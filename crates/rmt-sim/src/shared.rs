//! Shared ownership of a [`Switch`] — the one alias every crate uses.
//!
//! Historically the workspace passed `Rc<RefCell<Switch>>` around (63 sites
//! across 18 files). The deterministic parallel runtime (DESIGN.md §12)
//! needs switch state to cross thread boundaries, so the cell is now
//! `Arc<Mutex<Switch>>` behind this newtype. Call sites keep the familiar
//! `borrow()` / `borrow_mut()` spelling — and, crucially, the familiar
//! *semantics*: the lock is taken with `try_lock`, so a conflicting access
//! panics loudly like `RefCell` would instead of deadlocking silently.
//!
//! That is not a concession, it is the design: the epoch-barrier executor
//! guarantees no two threads ever contend for one switch (workers own
//! disjoint shards during a pump; the coordinator only touches switches
//! between pumps), so any blocked lock is a scheduling bug we want to crash
//! on, not wait out.

use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};

use crate::switch::Switch;

/// Cheaply clonable, `Send + Sync` handle to a switch.
///
/// The single spelling for shared switch state across the workspace — no
/// crate names the underlying cell type directly.
#[derive(Clone)]
pub struct SharedSwitch {
    inner: Arc<Mutex<Switch>>,
}

impl SharedSwitch {
    pub fn new(switch: Switch) -> Self {
        SharedSwitch {
            inner: Arc::new(Mutex::new(switch)),
        }
    }

    /// Immutable access to the switch.
    ///
    /// Panics if another handle currently holds the lock (mirrors the old
    /// `RefCell::borrow` failure mode; see module docs for why blocking
    /// would be wrong here). `Mutex` has no shared/exclusive distinction,
    /// so this takes the same lock as [`SharedSwitch::borrow_mut`] — the
    /// name records intent at the call site.
    pub fn borrow(&self) -> MutexGuard<'_, Switch> {
        self.lock("borrow")
    }

    /// Mutable access to the switch. Panics on contention (see
    /// [`SharedSwitch::borrow`]).
    pub fn borrow_mut(&self) -> MutexGuard<'_, Switch> {
        self.lock("borrow_mut")
    }

    fn lock(&self, op: &str) -> MutexGuard<'_, Switch> {
        match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(poisoned)) => {
                // A worker panicked while holding this switch. Surfacing
                // the recovered guard would let the run limp on over
                // half-mutated state and fail somewhere unrelated —
                // crash loudly here, naming the switch, so chaos-test
                // failures point at the shard that died.
                let guard = poisoned.into_inner();
                let who = match guard.fabric_index() {
                    Some(i) => format!("fabric switch {i}"),
                    None => "single-switch testbed".to_string(),
                };
                panic!(
                    "SharedSwitch::{op}: lock poisoned ({who}) — a worker \
                     panicked mid-mutation; state is suspect, aborting"
                );
            }
            Err(TryLockError::WouldBlock) => panic!(
                "SharedSwitch::{op}: switch already locked — \
                 two shards touched one switch in the same epoch"
            ),
        }
    }

    /// Two handles to the same underlying switch?
    pub fn ptr_eq(&self, other: &SharedSwitch) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for SharedSwitch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedSwitch").finish_non_exhaustive()
    }
}

// The whole point: switch state may ride the worker pool.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedSwitch>();
    fn assert_send<T: Send>() {}
    assert_send::<Switch>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::{switch_from_source, SwitchConfig};
    use crate::Clock;

    const PROG: &str = "register r { width : 32; instance_count : 4; }";

    fn mk() -> SharedSwitch {
        let sw = switch_from_source(PROG, SwitchConfig::default(), Clock::new()).expect("compile");
        SharedSwitch::new(sw)
    }

    #[test]
    fn clones_alias_one_switch() {
        let a = mk();
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        b.borrow_mut().port_set_up(0, false).unwrap();
        assert!(!a.borrow().port(0).unwrap().up);
    }

    #[test]
    fn crosses_threads() {
        let a = mk();
        let b = a.clone();
        std::thread::spawn(move || {
            b.borrow_mut().port_set_up(1, false).unwrap();
        })
        .join()
        .unwrap();
        assert!(!a.borrow().port(1).unwrap().up);
    }

    #[test]
    #[should_panic(expected = "already locked")]
    fn contention_panics_like_refcell() {
        let a = mk();
        let _held = a.borrow_mut();
        drop(a.borrow());
    }

    #[test]
    #[should_panic(expected = "lock poisoned")]
    fn poisoned_lock_panics_loudly_instead_of_recovering() {
        let a = mk();
        let b = a.clone();
        // Poison the mutex: panic while holding the guard on another thread.
        let _ = std::thread::spawn(move || {
            let _guard = b.borrow_mut();
            panic!("chaos worker dies mid-mutation");
        })
        .join();
        drop(a.borrow()); // must panic with the loud invariant message
    }
}
