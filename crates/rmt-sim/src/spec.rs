//! Loader: resolves a validated, *plain-P4* [`p4_ast::Program`] into an
//! executable [`DataPlaneSpec`] with numeric ids instead of names.
//!
//! The loader refuses programs that still contain P4R constructs — the
//! Mantis compiler must lower them first. Intrinsic metadata (`intr.*`) is
//! injected automatically so that programs can route packets.

use crate::clock::Nanos;
use p4_ast::{
    ActionDecl, BoolExpr, CmpOp, ControlStmt, FieldOrMbl, FieldRef, HashAlgorithm, MatchKind,
    Operand, ParserNext, Pipeline, PrimitiveCall, Program, Value,
};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a PHV field container.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u32);

/// Identifier of a table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Identifier of an action.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionId(pub u32);

/// Identifier of a register array.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegisterId(pub u32);

/// Identifier of a hash calculation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CalcId(pub u32);

/// Switch port number.
pub type PortId = u16;

macro_rules! impl_id_debug {
    ($($t:ident),*) => {$(
        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($t), "({})"), self.0)
            }
        }
    )*};
}
impl_id_debug!(FieldId, TableId, ActionId, RegisterId, CalcId);

pub use p4_ast::intrinsics::{INTR, INTR_FIELDS};

/// Information about one PHV field container.
#[derive(Clone, Debug)]
pub struct FieldInfo {
    pub instance: String,
    pub field: String,
    pub width: u16,
    pub is_metadata: bool,
    /// Initial value for metadata fields (headers start invalid).
    pub init: Value,
}

/// Information about one header/metadata instance.
#[derive(Clone, Debug)]
pub struct HeaderInfo {
    pub name: String,
    pub is_metadata: bool,
    /// Field ids in declaration order (used by the byte parser).
    pub fields: Vec<FieldId>,
}

/// A resolved operand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ROperand {
    Const(Value),
    Field(FieldId),
    /// Index into the action-data vector supplied by the matching entry.
    Param(usize),
}

/// A resolved primitive call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RPrimitive {
    ModifyField {
        dst: FieldId,
        src: ROperand,
    },
    Add {
        dst: FieldId,
        a: ROperand,
        b: ROperand,
    },
    Subtract {
        dst: FieldId,
        a: ROperand,
        b: ROperand,
    },
    BitAnd {
        dst: FieldId,
        a: ROperand,
        b: ROperand,
    },
    BitOr {
        dst: FieldId,
        a: ROperand,
        b: ROperand,
    },
    BitXor {
        dst: FieldId,
        a: ROperand,
        b: ROperand,
    },
    ShiftLeft {
        dst: FieldId,
        a: ROperand,
        amount: ROperand,
    },
    ShiftRight {
        dst: FieldId,
        a: ROperand,
        amount: ROperand,
    },
    Drop,
    NoOp,
    RegisterWrite {
        register: RegisterId,
        index: ROperand,
        value: ROperand,
    },
    RegisterRead {
        dst: FieldId,
        register: RegisterId,
        index: ROperand,
    },
    Count {
        counter: RegisterId,
        index: ROperand,
    },
    Hash {
        dst: FieldId,
        base: ROperand,
        calc: CalcId,
        size: ROperand,
    },
}

/// A resolved action.
#[derive(Clone, Debug)]
pub struct RAction {
    pub name: String,
    /// Widths of the action-data parameters (inferred from first use; 64 if
    /// unused).
    pub param_widths: Vec<u16>,
    pub body: Vec<RPrimitive>,
}

/// One component of a table's match key.
#[derive(Clone, Debug)]
pub struct KeySpec {
    pub field: FieldId,
    pub kind: MatchKind,
    pub width: u16,
    /// Static mask from `mask` annotations (applied before matching).
    pub static_mask: Option<Value>,
}

/// A resolved table specification.
#[derive(Clone, Debug)]
pub struct TableSpec {
    pub name: String,
    pub key: Vec<KeySpec>,
    pub actions: Vec<ActionId>,
    pub default_action: Option<(ActionId, Vec<Value>)>,
    pub size: u32,
    pub malleable: bool,
    /// Stage this table was placed into (0-based, per pipeline).
    pub stage: u32,
    pub pipeline: Pipeline,
}

/// A resolved register specification.
#[derive(Clone, Debug)]
pub struct RegisterSpec {
    pub name: String,
    pub width: u16,
    pub count: u32,
    pub pipeline: Pipeline,
}

/// A resolved hash calculation.
#[derive(Clone, Debug)]
pub struct RCalc {
    pub name: String,
    pub inputs: Vec<FieldId>,
    pub algorithm: HashAlgorithm,
    pub output_width: u16,
}

/// Resolved boolean expression for control flow.
#[derive(Clone, Debug)]
pub enum RBool {
    Valid(usize), // header index
    Cmp {
        lhs: ROperand,
        op: CmpOp,
        rhs: ROperand,
    },
    And(Box<RBool>, Box<RBool>),
    Or(Box<RBool>, Box<RBool>),
    Not(Box<RBool>),
}

/// Resolved control statement.
#[derive(Clone, Debug)]
pub enum RStmt {
    Apply(TableId),
    If {
        cond: RBool,
        then_: Vec<RStmt>,
        else_: Vec<RStmt>,
    },
}

/// Resolved parser state.
#[derive(Clone, Debug)]
pub struct RParserState {
    pub name: String,
    /// Header indexes to extract, in order.
    pub extracts: Vec<usize>,
    pub next: RParserNext,
}

#[derive(Clone, Debug)]
pub enum RParserNext {
    State(usize),
    Select {
        field: FieldId,
        cases: Vec<(u128, usize)>,
        default: Option<usize>,
    },
    Ingress,
}

/// Errors produced while loading a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadError {
    /// The program still contains malleables — run the Mantis compiler.
    P4rConstructsRemain,
    Validation(String),
    UnknownField(String),
    UnknownAction(String),
    UnknownRegister(String),
    UnknownCalc(String),
    UnknownHeader(String),
    /// An operand that must be a concrete field was something else.
    NotAField(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::P4rConstructsRemain => write!(
                f,
                "program still contains malleable declarations; run the Mantis compiler first"
            ),
            LoadError::Validation(e) => write!(f, "validation failed: {e}"),
            LoadError::UnknownField(s) => write!(f, "unknown field `{s}`"),
            LoadError::UnknownAction(s) => write!(f, "unknown action `{s}`"),
            LoadError::UnknownRegister(s) => write!(f, "unknown register `{s}`"),
            LoadError::UnknownCalc(s) => write!(f, "unknown calculation `{s}`"),
            LoadError::UnknownHeader(s) => write!(f, "unknown header `{s}`"),
            LoadError::NotAField(s) => write!(f, "expected a concrete field, found `{s}`"),
        }
    }
}

impl std::error::Error for LoadError {}

/// The fully resolved, executable data-plane specification.
#[derive(Clone, Debug, Default)]
pub struct DataPlaneSpec {
    pub fields: Vec<FieldInfo>,
    pub headers: Vec<HeaderInfo>,
    pub actions: Vec<RAction>,
    pub tables: Vec<TableSpec>,
    pub registers: Vec<RegisterSpec>,
    pub calcs: Vec<RCalc>,
    pub ingress: Vec<RStmt>,
    pub egress: Vec<RStmt>,
    pub parser_states: Vec<RParserState>,
    /// Index of the `start` parser state, if any.
    pub parser_start: Option<usize>,
    /// Number of ingress/egress stages after placement.
    pub ingress_stages: u32,
    pub egress_stages: u32,

    /// `(instance, field) → id`, sorted so lookups run on borrowed keys
    /// (no per-lookup String allocation on the packet hot path).
    field_index: Vec<(String, String, FieldId)>,
    /// Pre-resolved intrinsic ids; `None` only when the spec lacks the
    /// `intr` instance (never for `load`ed programs).
    intr: Option<IntrIds>,
    header_index: HashMap<String, usize>,
    /// Per-header wire bit widths (0 for metadata headers), precomputed
    /// so [`crate::Phv::frame_len`] avoids walking field lists per packet.
    wire_bits: Vec<u32>,
    table_index: HashMap<String, TableId>,
    action_index: HashMap<String, ActionId>,
    register_index: HashMap<String, RegisterId>,
}

/// Per-pipeline latency model of the simulated ASIC.
#[derive(Clone, Copy, Debug)]
pub struct PipelineTiming {
    /// Latency contributed by each stage a packet traverses.
    pub per_stage: Nanos,
    /// Fixed parse/deparse/TM overhead.
    pub fixed: Nanos,
}

impl Default for PipelineTiming {
    fn default() -> Self {
        // A Tofino-class pipeline is a few hundred nanoseconds end to end.
        PipelineTiming {
            per_stage: 25,
            fixed: 150,
        }
    }
}

/// The intrinsic metadata fields every loaded spec carries, resolved to
/// [`FieldId`]s once at load time so per-packet paths never look names up.
#[derive(Clone, Copy, Debug)]
pub struct IntrIds {
    pub ingress_port: FieldId,
    pub egress_spec: FieldId,
    pub egress_port: FieldId,
    pub pkt_len: FieldId,
    pub ts_ns: FieldId,
    pub recirc_count: FieldId,
    pub deq_qdepth: FieldId,
}

impl IntrIds {
    fn resolve(spec: &DataPlaneSpec) -> Option<IntrIds> {
        Some(IntrIds {
            ingress_port: spec.field_id(INTR, "ingress_port")?,
            egress_spec: spec.field_id(INTR, "egress_spec")?,
            egress_port: spec.field_id(INTR, "egress_port")?,
            pkt_len: spec.field_id(INTR, "pkt_len")?,
            ts_ns: spec.field_id(INTR, "ts_ns")?,
            recirc_count: spec.field_id(INTR, "recirc_count")?,
            deq_qdepth: spec.field_id(INTR, "deq_qdepth")?,
        })
    }
}

impl DataPlaneSpec {
    pub fn field_id(&self, instance: &str, field: &str) -> Option<FieldId> {
        self.field_index
            .binary_search_by(|(i, f, _)| (i.as_str(), f.as_str()).cmp(&(instance, field)))
            .ok()
            .map(|pos| self.field_index[pos].2)
    }

    pub fn intr_ids(&self) -> Option<IntrIds> {
        self.intr
    }

    pub fn field_id_of(&self, fr: &FieldRef) -> Option<FieldId> {
        self.field_id(&fr.instance, &fr.field)
    }

    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.table_index.get(name).copied()
    }

    pub fn action_id(&self, name: &str) -> Option<ActionId> {
        self.action_index.get(name).copied()
    }

    pub fn register_id(&self, name: &str) -> Option<RegisterId> {
        self.register_index.get(name).copied()
    }

    pub fn header_idx(&self, name: &str) -> Option<usize> {
        self.header_index.get(name).copied()
    }

    pub fn field_width(&self, id: FieldId) -> u16 {
        self.fields[id.0 as usize].width
    }

    /// Wire bit width of each header (0 for metadata headers).
    pub fn wire_bits(&self) -> &[u32] {
        &self.wire_bits
    }

    pub fn table(&self, id: TableId) -> &TableSpec {
        &self.tables[id.0 as usize]
    }

    pub fn register(&self, id: RegisterId) -> &RegisterSpec {
        &self.registers[id.0 as usize]
    }
}

/// Resolve a plain-P4 program into an executable spec.
///
/// The intrinsic metadata instance (`intr`) is injected automatically if the
/// program does not declare it.
pub fn load(prog: &Program) -> Result<DataPlaneSpec, LoadError> {
    if prog.has_p4r_constructs() {
        return Err(LoadError::P4rConstructsRemain);
    }
    let mut prog = prog.clone();
    p4_ast::intrinsics::inject(&mut prog);
    let prog = &prog;
    let errs = p4_ast::validate::validate(prog);
    if !errs.is_empty() {
        let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        return Err(LoadError::Validation(msgs.join("; ")));
    }

    let mut spec = DataPlaneSpec::default();

    // Instances (intrinsics first — `inject` prepends them).
    for inst in &prog.instances {
        let ht = prog
            .header_type(&inst.header_type)
            .ok_or_else(|| LoadError::UnknownHeader(inst.header_type.clone()))?;
        let mut ids = Vec::new();
        for (fname, width) in &ht.fields {
            let id = FieldId(spec.fields.len() as u32);
            let init = inst
                .initializers
                .iter()
                .find(|(n, _)| n == fname)
                .map(|(_, v)| v.resize(*width))
                .unwrap_or_else(|| Value::zero(*width));
            spec.fields.push(FieldInfo {
                instance: inst.name.clone(),
                field: fname.clone(),
                width: *width,
                is_metadata: inst.is_metadata,
                init,
            });
            spec.field_index
                .push((inst.name.clone(), fname.clone(), id));
            ids.push(id);
        }
        spec.header_index
            .insert(inst.name.clone(), spec.headers.len());
        spec.headers.push(HeaderInfo {
            name: inst.name.clone(),
            is_metadata: inst.is_metadata,
            fields: ids,
        });
    }
    // All names are registered; sort once so `field_id` can binary-search
    // with borrowed keys, then pin the intrinsic ids for the hot paths.
    spec.field_index
        .sort_by(|a, b| (a.0.as_str(), a.1.as_str()).cmp(&(b.0.as_str(), b.1.as_str())));
    spec.intr = IntrIds::resolve(&spec);
    spec.wire_bits = spec
        .headers
        .iter()
        .map(|h| {
            if h.is_metadata {
                0
            } else {
                h.fields
                    .iter()
                    .map(|f| u32::from(spec.fields[f.0 as usize].width))
                    .sum()
            }
        })
        .collect();

    // Registers.
    for r in &prog.registers {
        let id = RegisterId(spec.registers.len() as u32);
        spec.register_index.insert(r.name.clone(), id);
        spec.registers.push(RegisterSpec {
            name: r.name.clone(),
            width: r.width,
            count: r.instance_count,
            pipeline: r.pipeline,
        });
    }

    // Calculations.
    for c in &prog.calculations {
        let fl = prog
            .field_list(&c.input)
            .ok_or_else(|| LoadError::UnknownCalc(c.input.clone()))?;
        let mut inputs = Vec::new();
        for e in &fl.entries {
            let fr = e
                .as_field()
                .ok_or_else(|| LoadError::NotAField(e.to_string()))?;
            inputs.push(
                spec.field_id_of(fr)
                    .ok_or_else(|| LoadError::UnknownField(fr.to_string()))?,
            );
        }
        spec.calcs.push(RCalc {
            name: c.name.clone(),
            inputs,
            algorithm: c.algorithm,
            output_width: c.output_width,
        });
    }

    // Actions.
    for a in &prog.actions {
        let id = ActionId(spec.actions.len() as u32);
        spec.action_index.insert(a.name.clone(), id);
        let ra = resolve_action(&spec, prog, a)?;
        spec.actions.push(ra);
    }

    // Tables (stage assignment happens per control block below).
    for t in &prog.tables {
        let id = TableId(spec.tables.len() as u32);
        spec.table_index.insert(t.name.clone(), id);
        let mut key = Vec::new();
        for r in &t.reads {
            let fr = r
                .target
                .as_field()
                .ok_or_else(|| LoadError::NotAField(r.target.to_string()))?;
            let fid = spec
                .field_id_of(fr)
                .ok_or_else(|| LoadError::UnknownField(fr.to_string()))?;
            let width = spec.field_width(fid);
            key.push(KeySpec {
                field: fid,
                kind: r.kind,
                width,
                static_mask: r.mask.map(|m| m.resize(width)),
            });
        }
        let mut actions = Vec::new();
        for an in &t.actions {
            actions.push(
                spec.action_id(an)
                    .ok_or_else(|| LoadError::UnknownAction(an.clone()))?,
            );
        }
        let default_action = match &t.default_action {
            None => None,
            Some((an, args)) => {
                let aid = spec
                    .action_id(an)
                    .ok_or_else(|| LoadError::UnknownAction(an.clone()))?;
                let widths = &spec.actions[aid.0 as usize].param_widths;
                let args = args
                    .iter()
                    .zip(widths.iter())
                    .map(|(v, w)| v.resize(*w))
                    .collect();
                Some((aid, args))
            }
        };
        spec.tables.push(TableSpec {
            name: t.name.clone(),
            key,
            actions,
            default_action,
            size: t.size.unwrap_or(1024),
            malleable: t.malleable,
            stage: 0,
            pipeline: Pipeline::Ingress, // fixed up below
        });
    }

    // Control blocks.
    spec.ingress = resolve_control(&spec, &prog.ingress)?;
    spec.egress = resolve_control(&spec, &prog.egress)?;

    // Stage assignment: sequential applies occupy consecutive stages; the
    // two arms of an `if` share stages.
    let ing = spec.ingress.clone();
    let eg = spec.egress.clone();
    spec.ingress_stages = assign_stages(&mut spec, &ing, 0, Pipeline::Ingress);
    spec.egress_stages = assign_stages(&mut spec, &eg, 0, Pipeline::Egress);

    // Parser states.
    let name_to_idx: HashMap<&str, usize> = prog
        .parser_states
        .iter()
        .enumerate()
        .map(|(i, s)| (s.name.as_str(), i))
        .collect();
    for st in &prog.parser_states {
        let extracts = st
            .extracts
            .iter()
            .map(|e| {
                spec.header_idx(e)
                    .ok_or_else(|| LoadError::UnknownHeader(e.clone()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let next = match &st.next {
            ParserNext::State(n) => RParserNext::State(name_to_idx[n.as_str()]),
            ParserNext::Ingress => RParserNext::Ingress,
            ParserNext::Select {
                field,
                cases,
                default,
            } => RParserNext::Select {
                field: spec
                    .field_id_of(field)
                    .ok_or_else(|| LoadError::UnknownField(field.to_string()))?,
                cases: cases
                    .iter()
                    .map(|(v, n)| (v.bits(), name_to_idx[n.as_str()]))
                    .collect(),
                default: default.as_ref().map(|n| name_to_idx[n.as_str()]),
            },
        };
        spec.parser_states.push(RParserState {
            name: st.name.clone(),
            extracts,
            next,
        });
    }
    spec.parser_start = spec.parser_states.iter().position(|s| s.name == "start");

    Ok(spec)
}

fn resolve_operand(
    spec: &DataPlaneSpec,
    params: &[String],
    op: &Operand,
) -> Result<ROperand, LoadError> {
    match op {
        Operand::Const(v) => Ok(ROperand::Const(*v)),
        Operand::Field(fr) => spec
            .field_id_of(fr)
            .map(ROperand::Field)
            .ok_or_else(|| LoadError::UnknownField(fr.to_string())),
        Operand::Param(p) => params
            .iter()
            .position(|q| q == p)
            .map(ROperand::Param)
            .ok_or_else(|| LoadError::UnknownField(p.clone())),
        Operand::Mbl(m) => Err(LoadError::NotAField(format!("${{{m}}}"))),
    }
}

fn resolve_dst(spec: &DataPlaneSpec, dst: &FieldOrMbl) -> Result<FieldId, LoadError> {
    let fr = dst
        .as_field()
        .ok_or_else(|| LoadError::NotAField(dst.to_string()))?;
    spec.field_id_of(fr)
        .ok_or_else(|| LoadError::UnknownField(fr.to_string()))
}

fn resolve_action(
    spec: &DataPlaneSpec,
    _prog: &Program,
    a: &ActionDecl,
) -> Result<RAction, LoadError> {
    let mut param_widths = vec![64u16; a.params.len()];
    let mut body = Vec::new();
    for call in &a.body {
        use PrimitiveCall as P;
        use RPrimitive as R;
        let r = match call {
            P::ModifyField { dst, src } => {
                let dst = resolve_dst(spec, dst)?;
                let src = resolve_operand(spec, &a.params, src)?;
                infer_param_width(&mut param_widths, &src, spec.field_width(dst));
                R::ModifyField { dst, src }
            }
            P::Add { dst, a: x, b } => {
                bin(spec, &a.params, &mut param_widths, dst, x, b, |d, a, b| {
                    R::Add { dst: d, a, b }
                })?
            }
            P::Subtract { dst, a: x, b } => {
                bin(spec, &a.params, &mut param_widths, dst, x, b, |d, a, b| {
                    R::Subtract { dst: d, a, b }
                })?
            }
            P::BitAnd { dst, a: x, b } => {
                bin(spec, &a.params, &mut param_widths, dst, x, b, |d, a, b| {
                    R::BitAnd { dst: d, a, b }
                })?
            }
            P::BitOr { dst, a: x, b } => {
                bin(spec, &a.params, &mut param_widths, dst, x, b, |d, a, b| {
                    R::BitOr { dst: d, a, b }
                })?
            }
            P::BitXor { dst, a: x, b } => {
                bin(spec, &a.params, &mut param_widths, dst, x, b, |d, a, b| {
                    R::BitXor { dst: d, a, b }
                })?
            }
            P::ShiftLeft { dst, a: x, amount } => bin(
                spec,
                &a.params,
                &mut param_widths,
                dst,
                x,
                amount,
                |d, a, b| R::ShiftLeft {
                    dst: d,
                    a,
                    amount: b,
                },
            )?,
            P::ShiftRight { dst, a: x, amount } => bin(
                spec,
                &a.params,
                &mut param_widths,
                dst,
                x,
                amount,
                |d, a, b| R::ShiftRight {
                    dst: d,
                    a,
                    amount: b,
                },
            )?,
            P::AddToField { dst, v } => {
                let d = resolve_dst(spec, dst)?;
                let v = resolve_operand(spec, &a.params, v)?;
                infer_param_width(&mut param_widths, &v, spec.field_width(d));
                R::Add {
                    dst: d,
                    a: ROperand::Field(d),
                    b: v,
                }
            }
            P::SubtractFromField { dst, v } => {
                let d = resolve_dst(spec, dst)?;
                let v = resolve_operand(spec, &a.params, v)?;
                infer_param_width(&mut param_widths, &v, spec.field_width(d));
                R::Subtract {
                    dst: d,
                    a: ROperand::Field(d),
                    b: v,
                }
            }
            P::Drop => R::Drop,
            P::NoOp => R::NoOp,
            P::RegisterWrite {
                register,
                index,
                value,
            } => {
                let rid = spec
                    .register_id(register)
                    .ok_or_else(|| LoadError::UnknownRegister(register.clone()))?;
                let index = resolve_operand(spec, &a.params, index)?;
                let value = resolve_operand(spec, &a.params, value)?;
                infer_param_width(&mut param_widths, &value, spec.register(rid).width);
                R::RegisterWrite {
                    register: rid,
                    index,
                    value,
                }
            }
            P::RegisterRead {
                dst,
                register,
                index,
            } => {
                let d = resolve_dst(spec, dst)?;
                let rid = spec
                    .register_id(register)
                    .ok_or_else(|| LoadError::UnknownRegister(register.clone()))?;
                let index = resolve_operand(spec, &a.params, index)?;
                R::RegisterRead {
                    dst: d,
                    register: rid,
                    index,
                }
            }
            P::Count { counter, index } => {
                let rid = spec
                    .register_id(counter)
                    .ok_or_else(|| LoadError::UnknownRegister(counter.clone()))?;
                let index = resolve_operand(spec, &a.params, index)?;
                R::Count {
                    counter: rid,
                    index,
                }
            }
            P::ModifyFieldWithHash {
                dst,
                base,
                calculation,
                size,
            } => {
                let d = resolve_dst(spec, dst)?;
                let base = resolve_operand(spec, &a.params, base)?;
                let size = resolve_operand(spec, &a.params, size)?;
                let calc = spec
                    .calcs
                    .iter()
                    .position(|c| &c.name == calculation)
                    .map(|i| CalcId(i as u32))
                    .ok_or_else(|| LoadError::UnknownCalc(calculation.clone()))?;
                R::Hash {
                    dst: d,
                    base,
                    calc,
                    size,
                }
            }
        };
        body.push(r);
    }
    Ok(RAction {
        name: a.name.clone(),
        param_widths,
        body,
    })
}

fn bin(
    spec: &DataPlaneSpec,
    params: &[String],
    widths: &mut [u16],
    dst: &FieldOrMbl,
    a: &Operand,
    b: &Operand,
    build: impl FnOnce(FieldId, ROperand, ROperand) -> RPrimitive,
) -> Result<RPrimitive, LoadError> {
    let d = resolve_dst(spec, dst)?;
    let ra = resolve_operand(spec, params, a)?;
    let rb = resolve_operand(spec, params, b)?;
    infer_param_width(widths, &ra, spec.field_width(d));
    infer_param_width(widths, &rb, spec.field_width(d));
    Ok(build(d, ra, rb))
}

fn infer_param_width(widths: &mut [u16], op: &ROperand, width: u16) {
    if let ROperand::Param(i) = op {
        widths[*i] = width;
    }
}

fn resolve_control(spec: &DataPlaneSpec, stmts: &[ControlStmt]) -> Result<Vec<RStmt>, LoadError> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            ControlStmt::Apply(t) => {
                out.push(RStmt::Apply(
                    spec.table_id(t)
                        .ok_or_else(|| LoadError::UnknownAction(t.clone()))?,
                ));
            }
            ControlStmt::If { cond, then_, else_ } => {
                out.push(RStmt::If {
                    cond: resolve_bool(spec, cond)?,
                    then_: resolve_control(spec, then_)?,
                    else_: resolve_control(spec, else_)?,
                });
            }
        }
    }
    Ok(out)
}

fn resolve_bool(spec: &DataPlaneSpec, e: &BoolExpr) -> Result<RBool, LoadError> {
    Ok(match e {
        BoolExpr::Valid(h) => RBool::Valid(
            spec.header_idx(h)
                .ok_or_else(|| LoadError::UnknownHeader(h.clone()))?,
        ),
        BoolExpr::Cmp { lhs, op, rhs } => RBool::Cmp {
            lhs: resolve_operand(spec, &[], lhs)?,
            op: *op,
            rhs: resolve_operand(spec, &[], rhs)?,
        },
        BoolExpr::And(a, b) => RBool::And(
            Box::new(resolve_bool(spec, a)?),
            Box::new(resolve_bool(spec, b)?),
        ),
        BoolExpr::Or(a, b) => RBool::Or(
            Box::new(resolve_bool(spec, a)?),
            Box::new(resolve_bool(spec, b)?),
        ),
        BoolExpr::Not(a) => RBool::Not(Box::new(resolve_bool(spec, a)?)),
    })
}

/// Assign stages: each `apply` in sequence takes the next stage; both arms
/// of an `if` start from the same stage and the sequel continues after the
/// deeper arm. Returns the number of stages used starting from `base`.
fn assign_stages(spec: &mut DataPlaneSpec, stmts: &[RStmt], base: u32, pipeline: Pipeline) -> u32 {
    let mut stage = base;
    for s in stmts {
        match s {
            RStmt::Apply(tid) => {
                let t = &mut spec.tables[tid.0 as usize];
                t.stage = stage;
                t.pipeline = pipeline;
                stage += 1;
            }
            RStmt::If { then_, else_, .. } => {
                let a = assign_stages(spec, then_, stage, pipeline);
                let b = assign_stages(spec, else_, stage, pipeline);
                stage = a.max(b);
            }
        }
    }
    stage
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4r_lang::parse_program;

    const PLAIN: &str = r#"
header_type eth_t { fields { dst : 48; src : 48; etype : 16; } }
header eth_t eth;
header_type meta_t { fields { idx : 16; } }
metadata meta_t meta;
register counts { width : 64; instance_count : 64; }
action fwd(port) { modify_field(intr.egress_spec, port); }
action bump() { count(counts, meta.idx); }
action nop() { no_op(); }
table l2 {
    reads { eth.dst : exact; }
    actions { fwd; nop; }
    default_action : nop();
    size : 128;
}
table stats { actions { bump; } default_action : bump(); }
control ingress {
    apply(l2);
    if (valid(eth)) {
        apply(stats);
    }
}
"#;

    #[test]
    fn loads_plain_program() {
        let prog = parse_program(PLAIN).unwrap();
        let spec = load(&prog).unwrap();
        assert!(spec.field_id("intr", "egress_spec").is_some());
        assert!(spec.field_id("eth", "dst").is_some());
        let l2 = spec.table_id("l2").unwrap();
        assert_eq!(spec.table(l2).key.len(), 1);
        assert_eq!(spec.table(l2).stage, 0);
        let stats = spec.table_id("stats").unwrap();
        assert_eq!(spec.table(stats).stage, 1);
        assert_eq!(spec.ingress_stages, 2);
        // fwd's param width was inferred from egress_spec (9 bits).
        let fwd = spec.action_id("fwd").unwrap();
        assert_eq!(spec.actions[fwd.0 as usize].param_widths, vec![9]);
    }

    #[test]
    fn rejects_remaining_malleables() {
        let prog = parse_program("malleable value v { width : 8; init : 0; }").unwrap();
        assert_eq!(load(&prog).unwrap_err(), LoadError::P4rConstructsRemain);
    }

    #[test]
    fn rejects_invalid_program() {
        let prog = parse_program("control ingress { apply(ghost); }").unwrap();
        assert!(matches!(load(&prog).unwrap_err(), LoadError::Validation(_)));
    }

    #[test]
    fn if_arms_share_stages() {
        let src = r#"
header_type h_t { fields { a : 8; } }
header h_t h;
action nop() { no_op(); }
table t1 { actions { nop; } }
table t2 { actions { nop; } }
table t3 { actions { nop; } }
control ingress {
    if (valid(h)) { apply(t1); } else { apply(t2); }
    apply(t3);
}
"#;
        let prog = parse_program(src).unwrap();
        let spec = load(&prog).unwrap();
        assert_eq!(spec.table(spec.table_id("t1").unwrap()).stage, 0);
        assert_eq!(spec.table(spec.table_id("t2").unwrap()).stage, 0);
        assert_eq!(spec.table(spec.table_id("t3").unwrap()).stage, 1);
        assert_eq!(spec.ingress_stages, 2);
    }

    #[test]
    fn metadata_initializers_become_field_inits() {
        let src = r#"
header_type m_t { fields { f : 8; } }
metadata m_t m { f : 7; }
"#;
        let prog = parse_program(src).unwrap();
        let spec = load(&prog).unwrap();
        let id = spec.field_id("m", "f").unwrap();
        assert_eq!(spec.fields[id.0 as usize].init, Value::new(7, 8));
    }

    #[test]
    fn parser_states_resolve() {
        let src = r#"
header_type eth_t { fields { dst : 48; src : 48; etype : 16; } }
header eth_t eth;
parser start {
    extract(eth);
    return ingress;
}
"#;
        let prog = parse_program(src).unwrap();
        let spec = load(&prog).unwrap();
        assert_eq!(spec.parser_start, Some(0));
        assert_eq!(spec.parser_states[0].extracts.len(), 1);
    }
}
